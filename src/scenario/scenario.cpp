#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/hash.h"

namespace tipsy::scenario {

ScenarioConfig TinyScenarioConfig() {
  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.topology.seed = 42;
  cfg.topology.metro_count = 12;
  cfg.topology.tier1_count = 3;
  cfg.topology.regionals_per_continent = 2;
  cfg.topology.access_isp_count = 10;
  cfg.topology.cdn_count = 2;
  cfg.topology.enterprise_count = 15;
  cfg.topology.exchange_count = 2;
  cfg.topology.wan_metro_count = 8;
  cfg.topology.wan_transit_provider_count = 1;
  cfg.traffic.seed = 42;
  cfg.traffic.flow_target = 600;
  cfg.prefix_count = 8;
  cfg.outages.seed = 42;
  cfg.horizon = util::HourRange{0, 5 * util::kHoursPerDay};
  return cfg;
}

ScenarioConfig DefaultScenarioConfig() {
  ScenarioConfig cfg;
  cfg.seed = 20211110;  // the paper's main window starts 10 Nov 2021
  cfg.topology.seed = cfg.seed;
  cfg.traffic.seed = cfg.seed + 1;
  cfg.outages.seed = cfg.seed + 2;
  cfg.ipfix.seed = cfg.seed + 3;
  cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  return cfg;
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      topology_(topo::GenerateTopology(config.topology)),
      outages_(OutageSchedule::None(0)),
      state_(1, 1),  // placeholder; rebuilt below once links are known
      sampler_(config.ipfix) {
  // The WAN's regions are its presence metros.
  wan_ = std::make_unique<wan::Wan>(
      topology_.peering_links,
      topology_.graph.node(topology_.wan).presence, config_.prefix_count,
      config_.seed ^ 0xabcdef);
  workload_ = std::make_unique<traffic::Workload>(traffic::Workload::Generate(
      topology_, *wan_, config_.traffic, &geoip_));
  if (config_.geoip_error_rate > 0.0) {
    geoip_ = geoip_.WithNoise(topology_.metros, config_.geoip_error_rate,
                              util::Rng(config_.seed ^ 0x9e0));
  }
  engine_ = std::make_unique<bgp::RoutingEngine>(
      &topology_.graph, &topology_.metros, &topology_.peering_links,
      config_.prefix_count, config_.resolve);
  outages_ = OutageSchedule::Generate(topology_.peering_links.size(),
                                      config_.horizon, config_.outages);
  state_ = bgp::AdvertisementState(topology_.peering_links.size(),
                                   config_.prefix_count);
  aggregator_ =
      std::make_unique<pipeline::HourlyAggregator>(wan_.get(), &geoip_);
  resolve_cache_.assign(workload_->flows().size(), ResolveCache{});
  last_down_mask_.assign(topology_.peering_links.size(), false);
  Calibrate();
}

core::FlowFeatures Scenario::FlowFeaturesOf(std::size_t flow_idx) const {
  const auto& flow = workload_->flows()[flow_idx];
  const auto& endpoint = workload_->endpoints()[flow.endpoint];
  const auto& destination = wan_->destination(flow.destination);
  core::FlowFeatures features;
  features.src_asn = topology_.graph.node(endpoint.node).asn;
  features.src_prefix24 = endpoint.prefix24;
  features.src_metro =
      geoip_.Lookup(endpoint.prefix24).value_or(util::MetroId{});
  features.dest_region = destination.region;
  features.dest_service = destination.service;
  return features;
}

std::vector<bgp::LinkShare> Scenario::ResolveFlow(std::size_t flow_idx,
                                                  util::HourIndex hour) {
  const auto& flow = workload_->flows()[flow_idx];
  const auto& endpoint = workload_->endpoints()[flow.endpoint];
  const auto prefix = wan_->destination(flow.destination).prefix;
  const int day = static_cast<int>(util::DayIndex(hour));
  const std::uint64_t version = state_.PrefixVersion(prefix);
  ResolveCache& cache = resolve_cache_[flow_idx];
  if (cache.day != day || cache.version != version) {
    cache.shares = engine_->ResolveIngress(endpoint.node, endpoint.metro,
                                           prefix, flow.hash, day, state_);
    cache.day = day;
    cache.version = version;
  }
  return cache.shares;
}

void Scenario::SimulateHours(util::HourRange range, const RowSink& rows,
                             const LoadSink& loads) {
  std::vector<telemetry::IpfixRecord> records;
  std::vector<double> true_loads(wan_->link_count(), 0.0);
  for (util::HourIndex h = range.begin; h < range.end; ++h) {
    outages_.ApplyTo(state_, h);
    // BMP session events on outage transitions.
    for (std::uint32_t l = 0; l < wan_->link_count(); ++l) {
      const bool down = outages_.IsDown(util::LinkId{l}, h);
      if (down != last_down_mask_[l]) {
        bmp_.Record(telemetry::BmpMessage{
            h, util::LinkId{l}, util::PrefixId{},
            down ? telemetry::BmpEventType::kSessionDown
                 : telemetry::BmpEventType::kSessionUp});
        last_down_mask_[l] = down;
      }
    }

    records.clear();
    std::fill(true_loads.begin(), true_loads.end(), 0.0);
    const auto& flows = workload_->flows();
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      const double bytes = workload_->BytesAt(fi, h);
      if (bytes <= 0.0) continue;
      const auto shares = ResolveFlow(fi, h);
      if (shares.empty()) continue;
      const auto& endpoint = workload_->endpoints()[flows[fi].endpoint];
      for (const auto& share : shares) {
        const double link_bytes = bytes * share.fraction;
        true_loads[share.link.value()] += link_bytes;
        const std::uint64_t record_key =
            util::HashAll(flows[fi].hash, static_cast<std::uint64_t>(h),
                          share.link.value());
        const auto sampled = sampler_.SampleBytes(link_bytes, record_key);
        if (!sampled.has_value()) continue;
        if (config_.collector_loss_rate > 0.0) {
          const double u =
              static_cast<double>(util::Mix64(record_key ^ 0x10cc) >> 11) *
              0x1.0p-53;
          if (u < config_.collector_loss_rate) continue;  // record lost
        }
        telemetry::IpfixRecord record;
        record.hour = h;
        record.link = share.link;
        record.src_prefix24 = endpoint.prefix24;
        record.src_asn = topology_.graph.node(endpoint.node).asn;
        record.dest_addr =
            wan_->destination(flows[fi].destination).address;
        record.scaled_bytes = *sampled;
        records.push_back(record);
      }
    }
    if (rows) {
      const auto aggregated = aggregator_->Aggregate(records);
      ++aggregated_hours_;
      rows(h, aggregated);
    }
    if (loads) loads(h, true_loads);
  }
}

std::size_t Scenario::EstimatedRows(util::HourRange range) const {
  if (aggregated_hours_ == 0 || range.end <= range.begin) return 0;
  const std::size_t per_hour =
      aggregator_->stats().aggregated_rows / aggregated_hours_;
  return per_hour * static_cast<std::size_t>(range.end - range.begin);
}

void Scenario::ResetAdvertisements() {
  for (std::uint32_t l = 0; l < wan_->link_count(); ++l) {
    for (std::uint32_t p = 0; p < config_.prefix_count; ++p) {
      state_.Announce(util::PrefixId{p}, util::LinkId{l});
    }
  }
}

void Scenario::Calibrate() {
  // Resolve all flows under full advertisement and measure utilization at
  // a few representative hours of day 0, then scale volumes so the p99
  // busiest link sits at the target.
  const bgp::AdvertisementState full(wan_->link_count(),
                                     config_.prefix_count);
  std::vector<double> loads(wan_->link_count(), 0.0);
  const util::HourIndex probe_hours[] = {4, 10, 14, 20};
  const auto& flows = workload_->flows();
  for (std::size_t fi = 0; fi < flows.size(); ++fi) {
    const auto& endpoint = workload_->endpoints()[flows[fi].endpoint];
    const auto prefix = wan_->destination(flows[fi].destination).prefix;
    const auto shares = engine_->ResolveIngress(
        endpoint.node, endpoint.metro, prefix, flows[fi].hash, /*day=*/0,
        full);
    if (shares.empty()) continue;
    double peak_bytes = 0.0;
    for (util::HourIndex h : probe_hours) {
      peak_bytes = std::max(peak_bytes, workload_->BytesAt(fi, h));
    }
    for (const auto& share : shares) {
      loads[share.link.value()] += peak_bytes * share.fraction;
    }
  }
  std::vector<double> utilization;
  utilization.reserve(loads.size());
  for (std::uint32_t l = 0; l < loads.size(); ++l) {
    const double cap = wan_->link(util::LinkId{l}).CapacityBytesPerHour();
    if (cap > 0.0 && loads[l] > 0.0) utilization.push_back(loads[l] / cap);
  }
  if (utilization.empty()) return;
  std::sort(utilization.begin(), utilization.end());
  const double p99 = utilization[static_cast<std::size_t>(
      0.99 * static_cast<double>(utilization.size() - 1))];
  if (p99 > 0.0) {
    workload_->ScaleVolumes(config_.target_p99_utilization / p99);
  }
}

}  // namespace tipsy::scenario
