#include "scenario/fault_injection.h"

#include <optional>
#include <sstream>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"

namespace tipsy::scenario {
namespace {

// Per-fault-class stream labels so one hour's fates are independent.
enum class FaultStream : std::uint64_t {
  kRowLoss = 1,
  kDuplicate = 2,
  kReorder = 3,
};

bool Chance(std::uint64_t seed, FaultStream stream, util::HourIndex hour,
            double probability) {
  if (probability <= 0.0) return false;
  util::Rng rng(util::HashAll(seed, static_cast<std::uint64_t>(stream),
                              static_cast<std::uint64_t>(hour)));
  return rng.NextBool(probability);
}

}  // namespace

FaultInjectingRowSource::FaultInjectingRowSource(RowSource& inner,
                                                 FaultScheduleConfig config)
    : inner_(&inner), config_(std::move(config)) {}

bool FaultInjectingRowSource::InWindow(
    const std::vector<util::HourRange>& windows, util::HourIndex hour) const {
  for (const auto& window : windows) {
    if (window.Contains(hour)) return true;
  }
  return false;
}

void FaultInjectingRowSource::Deliver(util::HourIndex hour,
                                      std::span<const pipeline::AggRow> rows,
                                      const RowSink& sink) {
  sink(hour, rows);
  if (Chance(config_.seed, FaultStream::kDuplicate, hour,
             config_.duplicate_hour_rate)) {
    ++hours_duplicated_;
    sink(hour, rows);
  }
}

void FaultInjectingRowSource::StreamHours(util::HourRange range,
                                          const RowSink& sink) {
  // At most one hour is held back for a pairwise swap; if the stream ends
  // (or the partner is dropped) it is flushed late - which downstream
  // consumers see as the out-of-order delivery it is.
  std::optional<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      held;
  inner_->StreamHours(range, [&](util::HourIndex hour,
                                 std::span<const pipeline::AggRow> rows) {
    if (InWindow(config_.collector_down, hour)) {
      ++hours_dropped_;
      return;
    }
    std::vector<pipeline::AggRow> thinned;
    std::span<const pipeline::AggRow> surviving = rows;
    if (config_.row_loss_rate > 0.0 && InWindow(config_.degraded, hour)) {
      util::Rng rng(util::HashAll(
          config_.seed, static_cast<std::uint64_t>(FaultStream::kRowLoss),
          static_cast<std::uint64_t>(hour)));
      thinned.reserve(rows.size());
      for (const auto& row : rows) {
        if (!rng.NextBool(config_.row_loss_rate)) thinned.push_back(row);
      }
      rows_dropped_ += rows.size() - thinned.size();
      surviving = thinned;
    }
    if (held.has_value()) {
      // Deliver the partner first, then the held hour: a pairwise swap.
      ++hours_reordered_;
      Deliver(hour, surviving, sink);
      Deliver(held->first, held->second, sink);
      held.reset();
      return;
    }
    if (Chance(config_.seed, FaultStream::kReorder, hour,
               config_.reorder_rate)) {
      held.emplace(hour, std::vector<pipeline::AggRow>(surviving.begin(),
                                                       surviving.end()));
      return;
    }
    Deliver(hour, surviving, sink);
  });
  if (held.has_value()) {
    ++hours_reordered_;
    Deliver(held->first, held->second, sink);
  }
}

RecoveredRows ReadRowFileBytes(const std::string& bytes) {
  RecoveredRows recovered;
  std::istringstream in(bytes);
  pipeline::RowFileReader reader(in);
  while (auto block = reader.ReadHour()) {
    recovered.total_rows += block->rows.size();
    recovered.blocks.push_back(std::move(*block));
  }
  recovered.status = reader.status();
  return recovered;
}

std::string FlipBit(std::string bytes, std::size_t byte_index,
                    int bit_index) {
  if (byte_index < bytes.size()) {
    bytes[byte_index] = static_cast<char>(
        static_cast<unsigned char>(bytes[byte_index]) ^
        (1u << (bit_index & 7)));
  }
  return bytes;
}

}  // namespace tipsy::scenario
