#include "scenario/fault_injection.h"

#include <optional>
#include <sstream>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"

namespace tipsy::scenario {
namespace {

// Per-fault-class stream labels so one hour's fates are independent.
enum class FaultStream : std::uint64_t {
  kRowLoss = 1,
  kDuplicate = 2,
  kReorder = 3,
  kHeartbeatDrop = 4,
  kHeartbeatDelay = 5,
};

bool Chance(std::uint64_t seed, FaultStream stream, util::HourIndex hour,
            double probability) {
  if (probability <= 0.0) return false;
  util::Rng rng(util::HashAll(seed, static_cast<std::uint64_t>(stream),
                              static_cast<std::uint64_t>(hour)));
  return rng.NextBool(probability);
}

// Per-role variant for the heartbeat channel (primary and standby fates
// must be independent).
bool RoleChance(std::uint64_t seed, FaultStream stream, std::uint64_t role,
                util::HourIndex hour, double probability) {
  if (probability <= 0.0) return false;
  util::Rng rng(util::HashAll(seed, static_cast<std::uint64_t>(stream),
                              role, static_cast<std::uint64_t>(hour)));
  return rng.NextBool(probability);
}

bool InAnyWindow(const std::vector<util::HourRange>& windows,
                 util::HourIndex hour) {
  for (const auto& window : windows) {
    if (window.Contains(hour)) return true;
  }
  return false;
}

}  // namespace

FaultInjectingRowSource::FaultInjectingRowSource(RowSource& inner,
                                                 FaultScheduleConfig config)
    : inner_(&inner), config_(std::move(config)) {}

bool FaultInjectingRowSource::InWindow(
    const std::vector<util::HourRange>& windows, util::HourIndex hour) const {
  for (const auto& window : windows) {
    if (window.Contains(hour)) return true;
  }
  return false;
}

void FaultInjectingRowSource::Deliver(util::HourIndex hour,
                                      std::span<const pipeline::AggRow> rows,
                                      const RowSink& sink) {
  sink(hour, rows);
  if (Chance(config_.seed, FaultStream::kDuplicate, hour,
             config_.duplicate_hour_rate)) {
    ++hours_duplicated_;
    sink(hour, rows);
  }
}

void FaultInjectingRowSource::StreamHours(util::HourRange range,
                                          const RowSink& sink) {
  // At most one hour is held back for a pairwise swap; if the stream ends
  // (or the partner is dropped) it is flushed late - which downstream
  // consumers see as the out-of-order delivery it is.
  std::optional<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      held;
  inner_->StreamHours(range, [&](util::HourIndex hour,
                                 std::span<const pipeline::AggRow> rows) {
    if (InWindow(config_.collector_down, hour)) {
      ++hours_dropped_;
      return;
    }
    std::vector<pipeline::AggRow> thinned;
    std::span<const pipeline::AggRow> surviving = rows;
    if (config_.row_loss_rate > 0.0 && InWindow(config_.degraded, hour)) {
      util::Rng rng(util::HashAll(
          config_.seed, static_cast<std::uint64_t>(FaultStream::kRowLoss),
          static_cast<std::uint64_t>(hour)));
      thinned.reserve(rows.size());
      for (const auto& row : rows) {
        if (!rng.NextBool(config_.row_loss_rate)) thinned.push_back(row);
      }
      rows_dropped_ += rows.size() - thinned.size();
      surviving = thinned;
    }
    if (held.has_value()) {
      // Deliver the partner first, then the held hour: a pairwise swap.
      ++hours_reordered_;
      Deliver(hour, surviving, sink);
      Deliver(held->first, held->second, sink);
      held.reset();
      return;
    }
    if (Chance(config_.seed, FaultStream::kReorder, hour,
               config_.reorder_rate)) {
      held.emplace(hour, std::vector<pipeline::AggRow>(surviving.begin(),
                                                       surviving.end()));
      return;
    }
    Deliver(hour, surviving, sink);
  });
  if (held.has_value()) {
    ++hours_reordered_;
    Deliver(held->first, held->second, sink);
  }
}

std::size_t FaultInjectingRowSource::EstimatedRows(
    util::HourRange range) const {
  const std::size_t base = inner_->EstimatedRows(range);
  if (base == 0 || range.length() <= 0) return base;
  // Expected surviving fraction, hour by hour: collector-down hours
  // deliver nothing; degraded hours are thinned; duplicated hours are
  // delivered again. Reordering moves rows, it does not change counts.
  double expected_hours = 0.0;
  for (util::HourIndex hour = range.begin; hour < range.end; ++hour) {
    if (InWindow(config_.collector_down, hour)) continue;
    double weight = 1.0;
    if (config_.row_loss_rate > 0.0 && InWindow(config_.degraded, hour)) {
      weight *= 1.0 - config_.row_loss_rate;
    }
    weight *= 1.0 + config_.duplicate_hour_rate;
    expected_hours += weight;
  }
  return static_cast<std::size_t>(
      static_cast<double>(base) * expected_hours /
      static_cast<double>(range.length()));
}

RecoveredRows ReadRowFileBytes(const std::string& bytes) {
  RecoveredRows recovered;
  std::istringstream in(bytes);
  pipeline::RowFileReader reader(in);
  while (auto block = reader.ReadHour()) {
    recovered.total_rows += block->rows.size();
    recovered.blocks.push_back(std::move(*block));
  }
  recovered.status = reader.status();
  return recovered;
}

std::string FlipBit(std::string bytes, std::size_t byte_index,
                    int bit_index) {
  if (byte_index < bytes.size()) {
    bytes[byte_index] = static_cast<char>(
        static_cast<unsigned char>(bytes[byte_index]) ^
        (1u << (bit_index & 7)));
  }
  return bytes;
}

std::string TruncateTail(std::string bytes, std::size_t drop_bytes) {
  bytes.resize(bytes.size() - std::min(bytes.size(), drop_bytes));
  return bytes;
}

FaultyHeartbeatChannel::FaultyHeartbeatChannel(ha::Supervisor& supervisor,
                                               HeartbeatFaultConfig config)
    : supervisor_(&supervisor), config_(std::move(config)) {}

void FaultyHeartbeatChannel::Send(ha::ReplicaRole role,
                                  util::HourIndex hour) {
  DeliverDueBy(hour);
  const auto role_bits = static_cast<std::uint64_t>(role);
  if (InAnyWindow(config_.partitioned, hour) ||
      RoleChance(config_.seed, FaultStream::kHeartbeatDrop, role_bits, hour,
                 config_.drop_rate)) {
    ++dropped_;
    return;
  }
  if (config_.max_delay_hours > 0 &&
      RoleChance(config_.seed, FaultStream::kHeartbeatDelay, role_bits, hour,
                 config_.delay_rate)) {
    util::Rng rng(util::HashAll(
        config_.seed, static_cast<std::uint64_t>(FaultStream::kHeartbeatDelay),
        role_bits, static_cast<std::uint64_t>(hour), std::uint64_t{1}));
    const auto delay = rng.NextInRange(1, config_.max_delay_hours);
    ++delayed_;
    pending_.push_back(Pending{hour + delay, role, hour});
    return;
  }
  ++delivered_;
  supervisor_->ObserveHeartbeat(role, hour);
}

void FaultyHeartbeatChannel::DeliverDueBy(util::HourIndex hour) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].due <= hour) {
      ++delivered_;
      supervisor_->ObserveHeartbeat(pending_[i].role, pending_[i].hour);
      pending_[i] = pending_.back();
      pending_.pop_back();
    } else {
      ++i;
    }
  }
}

}  // namespace tipsy::scenario
