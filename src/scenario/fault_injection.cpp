#include "scenario/fault_injection.h"

#include <optional>
#include <sstream>
#include <utility>

#include "util/hash.h"
#include "util/rng.h"

namespace tipsy::scenario {
namespace {

// Per-fault-class stream labels so one hour's fates are independent.
enum class FaultStream : std::uint64_t {
  kRowLoss = 1,
  kDuplicate = 2,
  kReorder = 3,
  kHeartbeatDrop = 4,
  kHeartbeatDelay = 5,
};

bool Chance(std::uint64_t seed, FaultStream stream, util::HourIndex hour,
            double probability) {
  if (probability <= 0.0) return false;
  util::Rng rng(util::HashAll(seed, static_cast<std::uint64_t>(stream),
                              static_cast<std::uint64_t>(hour)));
  return rng.NextBool(probability);
}

// Per-role variant for the heartbeat channel (primary and standby fates
// must be independent).
bool RoleChance(std::uint64_t seed, FaultStream stream, std::uint64_t role,
                util::HourIndex hour, double probability) {
  if (probability <= 0.0) return false;
  util::Rng rng(util::HashAll(seed, static_cast<std::uint64_t>(stream),
                              role, static_cast<std::uint64_t>(hour)));
  return rng.NextBool(probability);
}

bool InAnyWindow(const std::vector<util::HourRange>& windows,
                 util::HourIndex hour) {
  for (const auto& window : windows) {
    if (window.Contains(hour)) return true;
  }
  return false;
}

}  // namespace

FaultInjectingRowSource::FaultInjectingRowSource(RowSource& inner,
                                                 FaultScheduleConfig config)
    : inner_(&inner), config_(std::move(config)) {}

bool FaultInjectingRowSource::InWindow(
    const std::vector<util::HourRange>& windows, util::HourIndex hour) const {
  for (const auto& window : windows) {
    if (window.Contains(hour)) return true;
  }
  return false;
}

void FaultInjectingRowSource::Deliver(util::HourIndex hour,
                                      std::span<const pipeline::AggRow> rows,
                                      const RowSink& sink) {
  sink(hour, rows);
  if (Chance(config_.seed, FaultStream::kDuplicate, hour,
             config_.duplicate_hour_rate)) {
    ++hours_duplicated_;
    sink(hour, rows);
  }
}

void FaultInjectingRowSource::StreamHours(util::HourRange range,
                                          const RowSink& sink) {
  // At most one hour is held back for a pairwise swap; if the stream ends
  // (or the partner is dropped) it is flushed late - which downstream
  // consumers see as the out-of-order delivery it is.
  std::optional<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      held;
  inner_->StreamHours(range, [&](util::HourIndex hour,
                                 std::span<const pipeline::AggRow> rows) {
    if (InWindow(config_.collector_down, hour)) {
      ++hours_dropped_;
      return;
    }
    std::vector<pipeline::AggRow> thinned;
    std::span<const pipeline::AggRow> surviving = rows;
    if (config_.row_loss_rate > 0.0 && InWindow(config_.degraded, hour)) {
      util::Rng rng(util::HashAll(
          config_.seed, static_cast<std::uint64_t>(FaultStream::kRowLoss),
          static_cast<std::uint64_t>(hour)));
      thinned.reserve(rows.size());
      for (const auto& row : rows) {
        if (!rng.NextBool(config_.row_loss_rate)) thinned.push_back(row);
      }
      rows_dropped_ += rows.size() - thinned.size();
      surviving = thinned;
    }
    if (held.has_value()) {
      // Deliver the partner first, then the held hour: a pairwise swap.
      ++hours_reordered_;
      Deliver(hour, surviving, sink);
      Deliver(held->first, held->second, sink);
      held.reset();
      return;
    }
    if (Chance(config_.seed, FaultStream::kReorder, hour,
               config_.reorder_rate)) {
      held.emplace(hour, std::vector<pipeline::AggRow>(surviving.begin(),
                                                       surviving.end()));
      return;
    }
    Deliver(hour, surviving, sink);
  });
  if (held.has_value()) {
    ++hours_reordered_;
    Deliver(held->first, held->second, sink);
  }
}

std::size_t FaultInjectingRowSource::EstimatedRows(
    util::HourRange range) const {
  const std::size_t base = inner_->EstimatedRows(range);
  if (base == 0 || range.length() <= 0) return base;
  // Expected surviving fraction, hour by hour: collector-down hours
  // deliver nothing; degraded hours are thinned; duplicated hours are
  // delivered again. Reordering moves rows, it does not change counts.
  double expected_hours = 0.0;
  for (util::HourIndex hour = range.begin; hour < range.end; ++hour) {
    if (InWindow(config_.collector_down, hour)) continue;
    double weight = 1.0;
    if (config_.row_loss_rate > 0.0 && InWindow(config_.degraded, hour)) {
      weight *= 1.0 - config_.row_loss_rate;
    }
    weight *= 1.0 + config_.duplicate_hour_rate;
    expected_hours += weight;
  }
  return static_cast<std::size_t>(
      static_cast<double>(base) * expected_hours /
      static_cast<double>(range.length()));
}

RecoveredRows ReadRowFileBytes(const std::string& bytes) {
  RecoveredRows recovered;
  std::istringstream in(bytes);
  pipeline::RowFileReader reader(in);
  while (auto block = reader.ReadHour()) {
    recovered.total_rows += block->rows.size();
    recovered.blocks.push_back(std::move(*block));
  }
  recovered.status = reader.status();
  return recovered;
}

std::string FlipBit(std::string bytes, std::size_t byte_index,
                    int bit_index) {
  if (byte_index < bytes.size()) {
    bytes[byte_index] = static_cast<char>(
        static_cast<unsigned char>(bytes[byte_index]) ^
        (1u << (bit_index & 7)));
  }
  return bytes;
}

std::string TruncateTail(std::string bytes, std::size_t drop_bytes) {
  bytes.resize(bytes.size() - std::min(bytes.size(), drop_bytes));
  return bytes;
}

FaultyHeartbeatChannel::FaultyHeartbeatChannel(ha::Supervisor& supervisor,
                                               HeartbeatFaultConfig config)
    : supervisor_(&supervisor), config_(std::move(config)) {}

void FaultyHeartbeatChannel::Send(ha::ReplicaRole role,
                                  util::HourIndex hour) {
  DeliverDueBy(hour);
  const auto role_bits = static_cast<std::uint64_t>(role);
  if (InAnyWindow(config_.partitioned, hour) ||
      RoleChance(config_.seed, FaultStream::kHeartbeatDrop, role_bits, hour,
                 config_.drop_rate)) {
    ++dropped_;
    return;
  }
  if (config_.max_delay_hours > 0 &&
      RoleChance(config_.seed, FaultStream::kHeartbeatDelay, role_bits, hour,
                 config_.delay_rate)) {
    util::Rng rng(util::HashAll(
        config_.seed, static_cast<std::uint64_t>(FaultStream::kHeartbeatDelay),
        role_bits, static_cast<std::uint64_t>(hour), std::uint64_t{1}));
    const auto delay = rng.NextInRange(1, config_.max_delay_hours);
    ++delayed_;
    pending_.push_back(Pending{hour + delay, role, hour});
    return;
  }
  ++delivered_;
  supervisor_->ObserveHeartbeat(role, hour);
}

void FaultyHeartbeatChannel::DeliverDueBy(util::HourIndex hour) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].due <= hour) {
      ++delivered_;
      supervisor_->ObserveHeartbeat(pending_[i].role, pending_[i].hour);
      pending_[i] = pending_.back();
      pending_.pop_back();
    } else {
      ++i;
    }
  }
}

// --- SocketFaultProxy.

struct SocketFaultProxy::Link {
  net::Socket client;
  net::Socket upstream;
  // Shared kill switch: either pump dying (EOF, error, injected reset)
  // cuts both directions, like a real connection teardown.
  std::atomic<bool> dead{false};
  // kResetMidFrame budget, client->upstream direction.
  std::atomic<std::size_t> reset_budget{0};
  std::thread to_upstream;
  std::thread to_client;
};

SocketFaultProxy::SocketFaultProxy(SocketFaultProxyConfig config)
    : config_(std::move(config)) {}

SocketFaultProxy::~SocketFaultProxy() { Stop(); }

util::Status SocketFaultProxy::Start() {
  if (running_) return util::Status::Ok();
  auto listener = net::Listener::Open(config_.listen_port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  stop_.store(false, std::memory_order_release);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return util::Status::Ok();
}

void SocketFaultProxy::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& link : links) {
    link->dead.store(true, std::memory_order_release);
    link->client.Shutdown();
    link->upstream.Shutdown();
    if (link->to_upstream.joinable()) link->to_upstream.join();
    if (link->to_client.joinable()) link->to_client.join();
  }
  running_ = false;
}

void SocketFaultProxy::DropConnections() {
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto& link : links_) {
    link->dead.store(true, std::memory_order_release);
    link->client.Shutdown();
    link->upstream.Shutdown();
  }
}

void SocketFaultProxy::ReapFinishedLinks() {
  std::lock_guard<std::mutex> lock(links_mu_);
  for (std::size_t i = 0; i < links_.size();) {
    if (links_[i]->dead.load(std::memory_order_acquire)) {
      if (links_[i]->to_upstream.joinable()) links_[i]->to_upstream.join();
      if (links_[i]->to_client.joinable()) links_[i]->to_client.join();
      links_[i] = std::move(links_.back());
      links_.pop_back();
    } else {
      ++i;
    }
  }
}

void SocketFaultProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(config_.poll_ms);
    if (!accepted.ok()) {
      if (accepted.status().code() == util::StatusCode::kUnavailable) {
        ReapFinishedLinks();
        continue;
      }
      return;  // listener closed
    }
    if (mode() == ProxyMode::kRefuse) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;  // Socket dtor closes: the client sees an immediate EOF
    }
    auto upstream = net::Connect(config_.upstream_host,
                                 config_.upstream_port,
                                 config_.connect_timeout_ms);
    if (!upstream.ok()) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    auto link = std::make_unique<Link>();
    link->client = std::move(*accepted);
    link->upstream = std::move(*upstream);
    link->reset_budget.store(config_.reset_after_bytes,
                             std::memory_order_relaxed);
    // Short per-call deadlines so the pumps poll stop/mode promptly.
    (void)link->client.SetReadDeadline(config_.poll_ms);
    (void)link->upstream.SetReadDeadline(config_.poll_ms);
    Link* raw = link.get();
    link->to_upstream = std::thread(
        [this, raw] { PumpLoop(raw, /*client_to_upstream=*/true); });
    link->to_client = std::thread(
        [this, raw] { PumpLoop(raw, /*client_to_upstream=*/false); });
    {
      std::lock_guard<std::mutex> lock(links_mu_);
      links_.push_back(std::move(link));
    }
  }
}

void SocketFaultProxy::PumpLoop(Link* link, bool client_to_upstream) {
  net::Socket& from = client_to_upstream ? link->client : link->upstream;
  net::Socket& to = client_to_upstream ? link->upstream : link->client;
  while (!stop_.load(std::memory_order_acquire) &&
         !link->dead.load(std::memory_order_acquire)) {
    ProxyMode mode = this->mode();
    if (mode == ProxyMode::kRefuse) break;  // daemon "went down"
    if (mode == ProxyMode::kPartition) {
      // Black hole: read nothing, forward nothing. Bytes the peers send
      // pile up in kernel buffers exactly as on a partitioned path.
      net::SleepInterruptible(config_.poll_ms, &stop_);
      continue;
    }
    auto chunk = from.RecvSome(4096);
    if (!chunk.ok()) {
      if (chunk.status().code() == util::StatusCode::kUnavailable) {
        continue;  // poll deadline: check stop/mode and wait again
      }
      break;  // peer closed or error: tear down both directions
    }
    // Re-sample: the fault that governs these bytes is the mode at their
    // *arrival*, not the one sampled before blocking in RecvSome — a
    // harness that flips the mode and then sends must see the new fault
    // hit that very send (the pre-recv sample can be a full poll
    // interval stale).
    mode = this->mode();
    if (mode == ProxyMode::kRefuse) break;
    if (mode == ProxyMode::kPartition) {
      continue;  // arrived as the partition hit: lost in flight
    }
    std::string_view bytes = *chunk;
    if (mode == ProxyMode::kDelay) {
      if (!net::SleepInterruptible(config_.delay_ms, &stop_)) break;
    }
    if (mode == ProxyMode::kResetMidFrame && client_to_upstream) {
      std::size_t budget = link->reset_budget.load(std::memory_order_acquire);
      if (bytes.size() >= budget) {
        // Forward exactly the budget, then cut the connection inside
        // whatever frame those bytes belong to.
        if (budget > 0) {
          (void)to.SendAll(bytes.substr(0, budget));
          bytes_forwarded_.fetch_add(budget, std::memory_order_relaxed);
        }
        resets_injected_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      link->reset_budget.store(budget - bytes.size(),
                               std::memory_order_release);
    }
    if (mode == ProxyMode::kSlowDrip) {
      bool sent = true;
      for (std::size_t i = 0; i < bytes.size() && sent; ++i) {
        if (!net::SleepInterruptible(config_.drip_interval_ms, &stop_)) {
          sent = false;
          break;
        }
        sent = to.SendAll(bytes.substr(i, 1)).ok();
        if (sent) bytes_forwarded_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!sent) break;
      continue;
    }
    if (!to.SendAll(bytes).ok()) break;
    bytes_forwarded_.fetch_add(bytes.size(), std::memory_order_relaxed);
  }
  // First pump out marks the link dead and wakes the other side.
  link->dead.store(true, std::memory_order_release);
  link->client.Shutdown();
  link->upstream.Shutdown();
}

}  // namespace tipsy::scenario
