// In-memory replay of a pre-simulated span of hours.
//
// The training-window and model-aging sweeps (Figures 9-11) train dozens of
// models over overlapping windows of the same simulated world. Simulating
// each window from scratch would repeat identical work; RowCache simulates
// the full span once and replays any sub-range.
#pragma once

#include <map>
#include <vector>

#include "scenario/scenario.h"

namespace tipsy::scenario {

class RowCache : public RowSource {
 public:
  // Simulates `span` on `live` (mutating its advertisement state as usual)
  // and stores every hour's rows. `live` must outlive the cache.
  RowCache(Scenario& live, util::HourRange span);

  // Replays the cached rows; safe to call concurrently from parallel
  // sweep jobs (pure reads of the immutable cache).
  void StreamHours(util::HourRange range, const RowSink& sink) override;

  // Exact row count of the cached sub-range.
  [[nodiscard]] std::size_t EstimatedRows(
      util::HourRange range) const override;

  [[nodiscard]] const wan::Wan& wan() const override { return live_->wan(); }
  [[nodiscard]] const geo::MetroCatalogue& metros() const override {
    return live_->metros();
  }
  [[nodiscard]] const OutageSchedule& outages() const override {
    return live_->outages();
  }

  [[nodiscard]] util::HourRange span() const { return span_; }
  [[nodiscard]] std::size_t total_rows() const { return total_rows_; }

 private:
  Scenario* live_;
  util::HourRange span_;
  std::map<util::HourIndex, std::vector<pipeline::AggRow>> by_hour_;
  std::size_t total_rows_ = 0;
};

}  // namespace tipsy::scenario
