#include "scenario/experiment.h"

#include <cassert>
#include <unordered_map>

namespace tipsy::scenario {

ExperimentConfig PaperWindows(util::HourIndex start_hour) {
  ExperimentConfig cfg;
  cfg.train = util::HourRange{start_hour,
                              start_hour + 21 * util::kHoursPerDay};
  cfg.test = util::HourRange{cfg.train.end,
                             cfg.train.end + 7 * util::kHoursPerDay};
  return cfg;
}

ExperimentResult RunExperiment(RowSource& source,
                               const ExperimentConfig& config) {
  ExperimentResult result;
  result.tipsy = std::make_unique<core::TipsyService>(
      &source.wan(), &source.metros(), config.tipsy);

  // Pre-size the model and evaluation hash tables when the source can
  // estimate its volume (RowCache knows exactly, Scenario from its
  // aggregation stats). Most flows recur hourly, so the per-hour row
  // count approximates the distinct-tuple count; 2x covers churn.
  const auto hours_of = [](util::HourRange r) {
    return r.end > r.begin ? static_cast<std::size_t>(r.end - r.begin)
                           : std::size_t{1};
  };
  const std::size_t train_rows = source.EstimatedRows(config.train);
  if (train_rows > 0) {
    result.tipsy->ReserveTuples(2 * train_rows / hours_of(config.train));
  }
  const std::size_t test_rows = source.EstimatedRows(config.test);
  if (test_rows > 0) {
    result.overall.Reserve(2 * test_rows / hours_of(config.test));
  }

  // --- Training pass: stream rows into the models and the link-hour
  // table used for outage inference.
  pipeline::LinkHourTable train_table(source.wan().link_count());
  source.StreamHours(
      config.train,
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        result.tipsy->Train(rows);
        for (const auto& row : rows) {
          train_table.AddBytes(row.link, hour,
                               static_cast<double>(row.bytes));
        }
      });
  result.tipsy->FinalizeTraining();
  result.train_outages =
      pipeline::InferOutages(train_table, config.train,
                             config.outage_inference);
  const auto seen_in_training = pipeline::LinksWithOutage(
      result.train_outages, source.wan().link_count(), config.train);

  // --- Reference for the "top-1 training link" criterion.
  const core::Model* reference = result.tipsy->Find("Hist_AP");
  assert(reference != nullptr);
  std::unordered_map<core::FlowFeatures, util::LinkId,
                     core::FlowFeaturesHash>
      top1_cache;
  auto top1_of = [&](const core::FlowFeatures& flow) {
    auto [it, inserted] = top1_cache.try_emplace(flow, util::LinkId{});
    if (inserted) {
      const auto predictions = reference->Predict(flow, 1, nullptr);
      if (!predictions.empty()) it->second = predictions.front().link;
    }
    return it->second;
  };

  // --- Test pass: route every observation to the right eval set(s).
  pipeline::LinkHourTable test_table(source.wan().link_count());
  std::unordered_map<util::HourIndex, std::uint32_t> hour_mask;
  source.StreamHours(
      config.test,
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        // Exclusion mask for this hour: the links currently down.
        auto mask_it = hour_mask.find(hour);
        if (mask_it == hour_mask.end()) {
          const auto down = source.outages().DownMask(hour);
          const std::uint32_t id = result.outage_all.InternMask(down);
          // Seen/unseen sets intern the same mask to keep ids aligned.
          result.outage_seen.InternMask(down);
          result.outage_unseen.InternMask(down);
          mask_it = hour_mask.emplace(hour, id).first;
        }
        for (const auto& row : rows) {
          test_table.AddBytes(row.link, hour,
                              static_cast<double>(row.bytes));
          const core::FlowFeatures flow{row.src_asn, row.src_prefix24,
                                        row.src_metro, row.dest_region,
                                        row.dest_service};
          const auto bytes = static_cast<double>(row.bytes);
          result.overall.AddObservation(flow, row.link, bytes, 0);
          const util::LinkId top1 = top1_of(flow);
          if (!top1.valid() ||
              !source.outages().IsDown(top1, hour)) {
            continue;
          }
          const std::uint32_t mask_id = mask_it->second;
          result.outage_all.AddObservation(flow, row.link, bytes, mask_id);
          if (seen_in_training[top1.value()]) {
            result.outage_seen.AddObservation(flow, row.link, bytes,
                                              mask_id);
            result.seen_outage_bytes += bytes;
          } else {
            result.outage_unseen.AddObservation(flow, row.link, bytes,
                                                mask_id);
            result.unseen_outage_bytes += bytes;
          }
        }
      });
  result.test_outages = pipeline::InferOutages(test_table, config.test,
                                               config.outage_inference);
  result.overall.Finalize();
  result.outage_all.Finalize();
  result.outage_seen.Finalize();
  result.outage_unseen.Finalize();
  return result;
}

std::vector<ModelAccuracy> EvaluateSuite(const core::TipsyService& tipsy,
                                         const core::EvalSet& eval) {
  std::vector<ModelAccuracy> out;
  const auto add_oracle = [&](core::FeatureSet fs) {
    const auto oracle = core::BuildOracle(fs, eval);
    out.push_back(ModelAccuracy{
        std::string("Oracle_") + core::ToString(fs),
        core::EvaluateModel(oracle, eval)});
  };
  const auto add_model = [&](const char* name) {
    const core::Model* model = tipsy.Find(name);
    if (model != nullptr) {
      out.push_back(
          ModelAccuracy{model->name(), core::EvaluateModel(*model, eval)});
    }
  };
  add_oracle(core::FeatureSet::kA);
  add_model("Hist_A");
  add_model("NB_A");
  add_oracle(core::FeatureSet::kAP);
  add_model("Hist_AP");
  add_oracle(core::FeatureSet::kAL);
  add_model("Hist_AL");
  add_model("NB_AL");
  add_model("Hist_AL/NB_AL");
  add_model("Hist_AL+G");
  add_model("Hist_AP/AL/A");
  add_model("Hist_AL/AP/A");
  return out;
}

}  // namespace tipsy::scenario
