#include "scenario/row_cache.h"

namespace tipsy::scenario {

RowCache::RowCache(Scenario& live, util::HourRange span)
    : live_(&live), span_(span) {
  live.SimulateHours(span, [&](util::HourIndex hour,
                               std::span<const pipeline::AggRow> rows) {
    auto& stored = by_hour_[hour];
    stored.assign(rows.begin(), rows.end());
    total_rows_ += stored.size();
  });
}

void RowCache::StreamHours(util::HourRange range, const RowSink& sink) {
  for (auto it = by_hour_.lower_bound(range.begin);
       it != by_hour_.end() && it->first < range.end; ++it) {
    sink(it->first, it->second);
  }
}

std::size_t RowCache::EstimatedRows(util::HourRange range) const {
  std::size_t rows = 0;
  for (auto it = by_hour_.lower_bound(range.begin);
       it != by_hour_.end() && it->first < range.end; ++it) {
    rows += it->second.size();
  }
  return rows;
}

}  // namespace tipsy::scenario
