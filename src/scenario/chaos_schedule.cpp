#include "scenario/chaos_schedule.h"

#include <random>

namespace tipsy::scenario {

std::vector<ChaosEvent> BuildChaosSchedule(
    const ChaosScheduleConfig& config) {
  std::mt19937_64 rng(config.seed);
  const auto pick = [&rng](std::uint64_t bound) -> int {
    // Modulo, not uniform_int_distribution: the tiny bias is irrelevant
    // for fault scheduling and the result is identical on every
    // platform, which uniform_int_distribution does not promise.
    return static_cast<int>(rng() % bound);
  };
  const int standbys = config.standbys > 0 ? config.standbys : 1;

  std::vector<ChaosEvent> schedule;
  schedule.push_back(
      {ChaosAction::kFeedHours, 0, config.warmup_hours});

  // Outstanding un-healed proxy faults; forces a heal before too many
  // rounds pass so a partitioned standby never rots for the whole run.
  int unhealed = 0;
  for (int round = 0; round < config.rounds; ++round) {
    if (unhealed > 0 && round % 3 == 2) {
      schedule.push_back({ChaosAction::kHealAll, 0, 0});
      unhealed = 0;
      continue;
    }
    const int roll = pick(100);
    ChaosEvent event;
    if (roll < 35) {
      event = {ChaosAction::kFeedHours, 0,
               1 + pick(static_cast<std::uint64_t>(
                       config.max_feed_hours > 0 ? config.max_feed_hours
                                                 : 1))};
    } else if (roll < 45) {
      event = {ChaosAction::kKillPrimary, 0, 0};
    } else if (roll < 52) {
      event = {ChaosAction::kRestartPrimary, 0, 0};
    } else if (roll < 62) {
      event = {ChaosAction::kKillStandby, pick(standbys), 0};
    } else if (roll < 69) {
      event = {ChaosAction::kRestartStandby, pick(standbys), 0};
    } else if (roll < 78) {
      event = {ChaosAction::kPartitionStandby, pick(standbys), 0};
      ++unhealed;
    } else if (roll < 84) {
      event = {ChaosAction::kSlowDripStandby, pick(standbys), 0};
      ++unhealed;
    } else if (roll < 89) {
      event = {ChaosAction::kDripIngest, 0, 0};
      ++unhealed;
    } else if (roll < 94) {
      event = {ChaosAction::kResetIngest, 0, 0};
    } else {
      event = {ChaosAction::kPromoteStandby, pick(standbys), 0};
    }
    schedule.push_back(event);
  }

  // Converging suffix: heal everything, then feed fresh traffic so the
  // survivors have something recent to agree on.
  schedule.push_back({ChaosAction::kHealAll, 0, 0});
  schedule.push_back({ChaosAction::kFeedHours, 0, 3});
  return schedule;
}

}  // namespace tipsy::scenario
