#include "scenario/chaos_schedule.h"

#include <random>

namespace tipsy::scenario {

std::vector<ChaosEvent> BuildChaosSchedule(
    const ChaosScheduleConfig& config) {
  std::mt19937_64 rng(config.seed);
  const auto pick = [&rng](std::uint64_t bound) -> int {
    // Modulo, not uniform_int_distribution: the tiny bias is irrelevant
    // for fault scheduling and the result is identical on every
    // platform, which uniform_int_distribution does not promise.
    return static_cast<int>(rng() % bound);
  };
  const int standbys = config.standbys > 0 ? config.standbys : 1;

  std::vector<ChaosEvent> schedule;
  schedule.push_back(
      {ChaosAction::kFeedHours, 0, config.warmup_hours});

  // Outstanding un-healed proxy faults; forces a heal before too many
  // rounds pass so a partitioned standby never rots for the whole run.
  int unhealed = 0;
  for (int round = 0; round < config.rounds; ++round) {
    if (unhealed > 0 && round % 3 == 2) {
      schedule.push_back({ChaosAction::kHealAll, 0, 0});
      unhealed = 0;
      continue;
    }
    const int roll = pick(100);
    ChaosEvent event;
    if (config.quorum) {
      // Quorum mode: the faults move to the supervisor plane. Standby
      // churn and heartbeat partitions replace the ship-path faults so
      // the pool always has a primary to read through, and the
      // deterministic drill suffix below owns the forced
      // failover/darkness transitions.
      if (roll < 30) {
        event = {ChaosAction::kFeedHours, 0,
                 1 + pick(static_cast<std::uint64_t>(
                         config.max_feed_hours > 0 ? config.max_feed_hours
                                                   : 1))};
      } else if (roll < 45) {
        event = {ChaosAction::kKillStandby, pick(standbys), 0};
      } else if (roll < 58) {
        event = {ChaosAction::kRestartStandby, pick(standbys), 0};
      } else if (roll < 80) {
        // Member index: 0 the primary, 1.. the standbys.
        event = {ChaosAction::kPartitionHeartbeat, pick(standbys + 1), 0};
        ++unhealed;
      } else if (roll < 90) {
        event = {ChaosAction::kResetIngest, 0, 0};
      } else {
        event = {ChaosAction::kFeedHours, 0, 1};
      }
      schedule.push_back(event);
      continue;
    }
    if (roll < 35) {
      event = {ChaosAction::kFeedHours, 0,
               1 + pick(static_cast<std::uint64_t>(
                       config.max_feed_hours > 0 ? config.max_feed_hours
                                                 : 1))};
    } else if (roll < 45) {
      event = {ChaosAction::kKillPrimary, 0, 0};
    } else if (roll < 52) {
      event = {ChaosAction::kRestartPrimary, 0, 0};
    } else if (roll < 62) {
      event = {ChaosAction::kKillStandby, pick(standbys), 0};
    } else if (roll < 69) {
      event = {ChaosAction::kRestartStandby, pick(standbys), 0};
    } else if (roll < 78) {
      event = {ChaosAction::kPartitionStandby, pick(standbys), 0};
      ++unhealed;
    } else if (roll < 84) {
      event = {ChaosAction::kSlowDripStandby, pick(standbys), 0};
      ++unhealed;
    } else if (roll < 89) {
      event = {ChaosAction::kDripIngest, 0, 0};
      ++unhealed;
    } else if (roll < 94) {
      event = {ChaosAction::kResetIngest, 0, 0};
    } else {
      event = {ChaosAction::kPromoteStandby, pick(standbys), 0};
    }
    schedule.push_back(event);
  }

  if (config.quorum) {
    // The quorum drill, identical on every seed: dark the primary's
    // heartbeats and feed past the liveness timeout — the supervisor
    // must rank-promote the best standby while a majority (both
    // standbys) is still alive. Then dark one standby's heartbeats too:
    // a lone-survivor view is a minority, so the quorum gate must hold
    // the routing plane dark instead of electing a head. Heal, and the
    // converging suffix below gives the failback fresh traffic.
    schedule.push_back({ChaosAction::kHealAll, 0, 0});
    schedule.push_back({ChaosAction::kFeedHours, 0, 2});
    schedule.push_back({ChaosAction::kPartitionHeartbeat, 0, 0});
    schedule.push_back({ChaosAction::kFeedHours, 0, 4});
    schedule.push_back({ChaosAction::kAwaitFailover, 0, 0});
    schedule.push_back({ChaosAction::kPartitionHeartbeat, 1 + pick(standbys), 0});
    schedule.push_back({ChaosAction::kFeedHours, 0, 4});
    schedule.push_back({ChaosAction::kAwaitDark, 0, 0});
  }

  // Converging suffix: heal everything, then feed fresh traffic so the
  // survivors have something recent to agree on.
  schedule.push_back({ChaosAction::kHealAll, 0, 0});
  schedule.push_back({ChaosAction::kFeedHours, 0, 3});
  return schedule;
}

}  // namespace tipsy::scenario
