// End-to-end simulation scenario: topology + WAN + workload + routing +
// outages + telemetry + aggregation, driven hour by hour.
//
// A Scenario owns every substrate and exposes a streaming interface: each
// simulated hour resolves ground-truth ingress for every flow under the
// current advertisement state (outage schedule applied, plus any CMS
// withdrawals the caller injected), runs the flows through the IPFIX
// sampler, aggregates + joins the records, and hands the hour's rows to a
// sink. Memory stays bounded no matter how many weeks are simulated.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "bgp/routing.h"
#include "core/features.h"
#include "geo/geoip.h"
#include "pipeline/aggregate.h"
#include "pipeline/link_hour.h"
#include "scenario/outage.h"
#include "telemetry/bmp.h"
#include "telemetry/ipfix.h"
#include "topo/generator.h"
#include "traffic/workload.h"
#include "wan/wan.h"

namespace tipsy::scenario {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  topo::GeneratorConfig topology;
  traffic::TrafficConfig traffic;
  telemetry::IpfixConfig ipfix;
  bgp::ResolveConfig resolve;
  OutageScheduleConfig outages;
  std::size_t prefix_count = 48;
  // The whole simulated timeline; the outage schedule covers it.
  util::HourRange horizon{0, 28 * util::kHoursPerDay};
  // Calibration: scale workload volumes so the 99th-percentile link
  // utilization at a busy hour lands here.
  double target_p99_utilization = 0.55;
  // Geo-IP imprecision knob (fraction of /24s mapped to a wrong metro).
  double geoip_error_rate = 0.0;
  // Failure injection: fraction of IPFIX records lost between exporter
  // and data lake (collector crashes, export drops). The paper's
  // collectors "use automatic mechanisms to recover from failures"; this
  // knob measures how much residual loss the models tolerate.
  double collector_loss_rate = 0.0;
};

// A scenario sized for unit tests: tiny topology, few flows, fast.
[[nodiscard]] ScenarioConfig TinyScenarioConfig();
// The default evaluation scenario ("the Azure-like world").
[[nodiscard]] ScenarioConfig DefaultScenarioConfig();

// Anything that can stream hourly aggregated rows to an experiment: a live
// Scenario, or a RowCache replaying a pre-simulated span (used by the
// sweep benches that train dozens of models over overlapping windows).
class RowSource {
 public:
  using RowSink =
      std::function<void(util::HourIndex, std::span<const pipeline::AggRow>)>;

  virtual ~RowSource() = default;
  virtual void StreamHours(util::HourRange range, const RowSink& sink) = 0;
  [[nodiscard]] virtual const wan::Wan& wan() const = 0;
  [[nodiscard]] virtual const geo::MetroCatalogue& metros() const = 0;
  [[nodiscard]] virtual const OutageSchedule& outages() const = 0;
  // Rough number of aggregated rows `range` will stream (0 = unknown);
  // used to pre-size training and evaluation hash tables.
  [[nodiscard]] virtual std::size_t EstimatedRows(util::HourRange) const {
    return 0;
  }
};

class Scenario : public RowSource {
 public:
  explicit Scenario(const ScenarioConfig& config);

  // --- Substrate access.
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] const topo::GeneratedTopology& topology() const {
    return topology_;
  }
  [[nodiscard]] const geo::MetroCatalogue& metros() const override {
    return topology_.metros;
  }
  [[nodiscard]] const wan::Wan& wan() const override { return *wan_; }
  [[nodiscard]] const traffic::Workload& workload() const {
    return *workload_;
  }
  // For scripted incident experiments (inflating specific flows).
  [[nodiscard]] traffic::Workload& mutable_workload() { return *workload_; }
  [[nodiscard]] const geo::GeoIpDb& geoip() const { return geoip_; }
  [[nodiscard]] bgp::RoutingEngine& engine() { return *engine_; }
  [[nodiscard]] const OutageSchedule& outages() const override {
    return outages_;
  }
  [[nodiscard]] bgp::AdvertisementState& advertisement() { return state_; }
  [[nodiscard]] const telemetry::BmpFeed& bmp() const { return bmp_; }
  // The CMS records its withdrawal/announce messages here too.
  [[nodiscard]] telemetry::BmpFeed& mutable_bmp() { return bmp_; }
  [[nodiscard]] pipeline::AggregateStats aggregate_stats() const {
    return aggregator_->stats();
  }

  // --- Simulation.
  // Ground-truth (unsampled) ingress bytes per link for the hour, indexed
  // by LinkId; used by the CMS, which watches real interface counters.
  using LoadSink =
      std::function<void(util::HourIndex, std::span<const double>)>;

  // Simulates [range.begin, range.end): applies the outage schedule to the
  // advertisement state at each hour (preserving caller withdrawals),
  // resolves, samples, aggregates. Either sink may be null.
  void SimulateHours(util::HourRange range, const RowSink& rows,
                     const LoadSink& loads = nullptr);

  void StreamHours(util::HourRange range, const RowSink& sink) override {
    SimulateHours(range, sink);
  }

  // Estimate from the cumulative aggregation statistics (0 until at least
  // one hour has been simulated with a row sink).
  [[nodiscard]] std::size_t EstimatedRows(
      util::HourRange range) const override;

  // Re-announces every withdrawn (prefix, link) pair, restoring the
  // default full-anycast advertisement (link outage state untouched).
  // Used to replay the same hours under different CMS policies.
  void ResetAdvertisements();

  // The features of a flow as TIPSY sees them (post Geo-IP join).
  [[nodiscard]] core::FlowFeatures FlowFeaturesOf(std::size_t flow_idx) const;
  // Ground-truth ingress distribution of a flow at `hour` under the
  // current advertisement state.
  [[nodiscard]] std::vector<bgp::LinkShare> ResolveFlow(
      std::size_t flow_idx, util::HourIndex hour);

 private:
  void Calibrate();

  ScenarioConfig config_;
  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
  geo::GeoIpDb geoip_;
  std::unique_ptr<traffic::Workload> workload_;
  std::unique_ptr<bgp::RoutingEngine> engine_;
  OutageSchedule outages_;
  bgp::AdvertisementState state_;
  telemetry::IpfixSampler sampler_;
  telemetry::BmpFeed bmp_;
  std::unique_ptr<pipeline::HourlyAggregator> aggregator_;

  // Per-flow resolution cache: valid while (day, prefix version) match.
  struct ResolveCache {
    int day = -1;
    std::uint64_t version = ~0ULL;
    std::vector<bgp::LinkShare> shares;
  };
  std::vector<ResolveCache> resolve_cache_;
  std::vector<bool> last_down_mask_;  // for BMP session events
  std::size_t aggregated_hours_ = 0;  // hours simulated with a row sink
};

}  // namespace tipsy::scenario
