#include "telemetry/ipfix.h"

#include <cassert>

#include "util/hash.h"
#include "util/rng.h"

namespace tipsy::telemetry {

std::optional<std::uint64_t> IpfixSampler::SampleBytes(
    double true_bytes, std::uint64_t flow_key) const {
  assert(true_bytes >= 0.0);
  if (true_bytes <= 0.0) return std::nullopt;
  const double true_packets = true_bytes / cfg_.mean_packet_bytes;
  const double mean_sampled =
      true_packets / static_cast<double>(cfg_.sampling_rate);
  util::Rng rng(util::HashCombine(cfg_.seed, flow_key));
  const std::uint64_t sampled = rng.NextPoisson(mean_sampled);
  if (sampled == 0) return std::nullopt;
  const double estimate = static_cast<double>(sampled) *
                          static_cast<double>(cfg_.sampling_rate) *
                          cfg_.mean_packet_bytes;
  return static_cast<std::uint64_t>(estimate);
}

}  // namespace tipsy::telemetry
