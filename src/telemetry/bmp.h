// BGP Monitoring Protocol (BMP) feed simulation.
//
// BMP exports every announcement and withdrawal a WAN edge router receives
// or, in our use, emits (§4.1). As in the paper, this feed is NOT used to
// train models; it backs debugging and the topology analyses of Figures 2
// and 3. We record the WAN-side advertisement changes plus link up/down
// session events.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

namespace tipsy::telemetry {

enum class BmpEventType : std::uint8_t {
  kAnnounce,
  kWithdraw,
  kSessionUp,
  kSessionDown,
};

struct BmpMessage {
  util::HourIndex hour = 0;
  util::LinkId link;
  util::PrefixId prefix;  // invalid for session events
  BmpEventType type = BmpEventType::kAnnounce;
};

class BmpFeed {
 public:
  void Record(BmpMessage message) { messages_.push_back(message); }

  [[nodiscard]] const std::vector<BmpMessage>& messages() const {
    return messages_;
  }
  [[nodiscard]] std::size_t size() const { return messages_.size(); }

  // Messages within [range.begin, range.end).
  [[nodiscard]] std::vector<BmpMessage> InRange(util::HourRange range) const;

  // Count of events of a type (quick sanity statistics).
  [[nodiscard]] std::size_t CountOf(BmpEventType type) const;

 private:
  std::vector<BmpMessage> messages_;
};

}  // namespace tipsy::telemetry
