#include "telemetry/bmp.h"

namespace tipsy::telemetry {

std::vector<BmpMessage> BmpFeed::InRange(util::HourRange range) const {
  std::vector<BmpMessage> out;
  for (const auto& message : messages_) {
    if (range.Contains(message.hour)) out.push_back(message);
  }
  return out;
}

std::size_t BmpFeed::CountOf(BmpEventType type) const {
  std::size_t n = 0;
  for (const auto& message : messages_) {
    if (message.type == type) ++n;
  }
  return n;
}

}  // namespace tipsy::telemetry
