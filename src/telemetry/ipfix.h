// IPFIX flow export simulation.
//
// The Azure WAN samples 1 out of every 4096 packets at its peering routers
// and scales byte counts back up by the sampling rate (§4.1). We reproduce
// that estimator: the number of exported packets for a flow-hour is Poisson
// with mean true_packets/rate, and the exported byte count is the scaled
// estimate. Short or thin flows therefore frequently export nothing at all
// for an hour - the paper's stated limitation, which it accepts because
// TIPSY's use cases concern large traffic volumes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.h"
#include "util/ip.h"
#include "util/sim_time.h"

namespace tipsy::telemetry {

using util::HourIndex;
using util::LinkId;

// One exported record: bytes of one flow aggregate observed on one peering
// link during one hour, already scaled by the sampling rate.
struct IpfixRecord {
  HourIndex hour = 0;
  LinkId link;
  util::Ipv4Prefix src_prefix24;
  util::AsId src_asn;
  util::Ipv4Addr dest_addr;  // destination VIP inside the WAN
  std::uint64_t scaled_bytes = 0;
};

struct IpfixConfig {
  std::uint32_t sampling_rate = 4096;  // 1 out of N packets
  double mean_packet_bytes = 1000.0;
  std::uint64_t seed = 0x1bf1f00dULL;
};

class IpfixSampler {
 public:
  explicit IpfixSampler(IpfixConfig cfg) : cfg_(cfg) {}

  // Sampled, scaled byte estimate for `true_bytes` of traffic identified
  // by `flow_key` (deterministic). nullopt when no packet was sampled.
  [[nodiscard]] std::optional<std::uint64_t> SampleBytes(
      double true_bytes, std::uint64_t flow_key) const;

  [[nodiscard]] const IpfixConfig& config() const { return cfg_; }

 private:
  IpfixConfig cfg_;
};

}  // namespace tipsy::telemetry
