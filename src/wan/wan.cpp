#include "wan/wan.h"

#include <algorithm>
#include <cassert>

#include "util/rng.h"

namespace tipsy::wan {

const char* ToString(ServiceType s) {
  switch (s) {
    case ServiceType::kStorage: return "storage";
    case ServiceType::kWeb: return "web";
    case ServiceType::kEmail: return "email";
    case ServiceType::kVideoConferencing: return "videoconf";
    case ServiceType::kVpnGateway: return "vpn";
    case ServiceType::kAiMlPipeline: return "ai-ml";
    case ServiceType::kDatabase: return "database";
    case ServiceType::kCdnFill: return "cdn-fill";
  }
  return "?";
}

Wan::Wan(std::vector<PeeringLinkSpec> link_specs,
         std::vector<MetroId> region_metros, std::size_t prefix_count,
         std::uint64_t seed)
    : region_metros_(std::move(region_metros)),
      prefix_count_(prefix_count),
      destinations_by_prefix_(prefix_count) {
  assert(prefix_count > 0);
  links_.reserve(link_specs.size());
  for (auto& spec : link_specs) {
    assert(spec.id.value() == links_.size() &&
           "link specs must be dense and ordered");
    links_.push_back(PeeringLink{spec.id, spec.peer_node, spec.peer_asn,
                                 spec.peer_type, spec.metro,
                                 spec.capacity_gbps,
                                 std::move(spec.router)});
  }
  // Announced anycast blocks: variable-length, carved contiguously (with
  // alignment) out of 20.0.0.0/6-style WAN address space. The §2 incident
  // withdraws a /10, so lengths span /10../14.
  util::Rng rng(seed);
  announced_.reserve(prefix_count);
  std::uint32_t cursor = 0x14000000u;  // 20.0.0.0
  for (std::size_t p = 0; p < prefix_count; ++p) {
    const auto length =
        static_cast<std::uint8_t>(10 + rng.NextBelow(5));  // /10../14
    const std::uint32_t block = 1u << (32 - length);
    cursor = (cursor + block - 1) & ~(block - 1);  // align up
    const util::Ipv4Prefix prefix(util::Ipv4Addr(cursor), length);
    announced_.push_back(prefix);
    prefix_trie_.Insert(prefix, static_cast<std::uint32_t>(p));
    cursor += block;
  }

  // One destination per (region, service); each gets a VIP inside one of
  // the announced blocks. Blocks end up serving many (region, service)
  // pairs, so withdrawing a prefix shifts a whole bundle of flows -
  // matching how CMS operates on the advertised granularity (§4.4).
  destinations_.reserve(region_metros_.size() * kServiceTypeCount);
  for (std::size_t r = 0; r < region_metros_.size(); ++r) {
    for (std::size_t s = 0; s < kServiceTypeCount; ++s) {
      const PrefixId prefix{
          static_cast<std::uint32_t>(rng.NextBelow(prefix_count))};
      // Distinct VIP inside the block: one /24-step per destination.
      const util::Ipv4Addr vip(
          announced_[prefix.value()].address().bits() +
          (static_cast<std::uint32_t>(
               destinations_by_prefix_[prefix.value()].size() + 1)
           << 8) +
          10);
      assert(announced_[prefix.value()].Contains(vip));
      destinations_.push_back(Destination{
          RegionId{static_cast<std::uint32_t>(r)}, region_metros_[r],
          static_cast<ServiceType>(s), prefix, vip});
      destinations_by_prefix_[prefix.value()].push_back(
          destinations_.size() - 1);
      destination_by_address_[vip] = destinations_.size() - 1;
    }
  }
}

util::Ipv4Prefix Wan::AnnouncedPrefix(PrefixId prefix) const {
  assert(prefix.valid() && prefix.value() < announced_.size());
  return announced_[prefix.value()];
}

PrefixId Wan::PrefixOfAddress(util::Ipv4Addr address) const {
  const std::uint32_t* match = prefix_trie_.Lookup(address);
  return match == nullptr ? PrefixId{} : PrefixId{*match};
}

std::optional<std::size_t> Wan::DestinationOfAddress(
    util::Ipv4Addr address) const {
  const auto it = destination_by_address_.find(address);
  if (it == destination_by_address_.end()) return std::nullopt;
  return it->second;
}

const PeeringLink& Wan::link(LinkId id) const {
  assert(id.valid() && id.value() < links_.size());
  return links_[id.value()];
}

const std::vector<std::size_t>& Wan::DestinationsOfPrefix(
    PrefixId prefix) const {
  assert(prefix.valid() && prefix.value() < prefix_count_);
  return destinations_by_prefix_[prefix.value()];
}

std::vector<LinkId> Wan::LinksOfAsnByDistance(
    util::AsId asn, MetroId metro, const geo::MetroCatalogue& metros,
    LinkId exclude) const {
  std::vector<LinkId> out;
  for (const auto& link : links_) {
    if (link.peer_asn == asn && link.id != exclude) {
      out.push_back(link.id);
    }
  }
  std::sort(out.begin(), out.end(), [&](LinkId a, LinkId b) {
    const double da = metros.DistanceKmBetween(metro, links_[a.value()].metro);
    const double db = metros.DistanceKmBetween(metro, links_[b.value()].metro);
    if (da != db) return da < db;
    return a < b;
  });
  return out;
}

}  // namespace tipsy::wan
