// The cloud WAN under study: its peering links, internal destinations, and
// anycast prefix plan.
//
// A peering link is one eBGP session (§3.1) with a peer AS at a metro, with
// a capacity in Gbps. Destinations are (region, service-type) endpoints
// inside the WAN; each maps to one of the anycast destination prefixes that
// the WAN advertises everywhere and that the CMS withdraws selectively.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/geo.h"
#include "topo/as_graph.h"
#include "util/ids.h"
#include "util/ip.h"
#include "util/prefix_trie.h"

namespace tipsy::wan {

using topo::PeeringLinkSpec;
using util::LinkId;
using util::MetroId;
using util::PrefixId;
using util::RegionId;
using util::ServiceId;

// Cloud service classes hosted behind WAN destinations. The paper's
// intuition (§3.2): application-layer load balancing behaviour differs by
// service, so destination type is always a model feature.
enum class ServiceType : std::uint8_t {
  kStorage,
  kWeb,
  kEmail,
  kVideoConferencing,
  kVpnGateway,
  kAiMlPipeline,
  kDatabase,
  kCdnFill,
};
constexpr std::size_t kServiceTypeCount = 8;

[[nodiscard]] const char* ToString(ServiceType s);

struct PeeringLink {
  LinkId id;
  topo::NodeId peer_node;
  util::AsId peer_asn;
  topo::AsType peer_type;
  MetroId metro;
  double capacity_gbps = 0.0;
  std::string router;

  // Bytes the link can carry in one hour at 100% utilization.
  [[nodiscard]] double CapacityBytesPerHour() const {
    return capacity_gbps * 1e9 / 8.0 * 3600.0;
  }
};

// An internal endpoint: a (region, service) pair served at a concrete
// address inside one of the WAN's announced anycast blocks.
struct Destination {
  RegionId region;       // dense index over the WAN's region metros
  MetroId region_metro;  // geographic location of the region
  ServiceType service;
  PrefixId prefix;          // announced block containing `address`
  util::Ipv4Addr address;   // VIP the flows actually target
};

class Wan {
 public:
  // Builds the link registry and the destination/prefix plan.
  // `region_metros` are the WAN presence metros (each one hosts a region);
  // `prefix_count` anycast prefixes are spread over destinations.
  Wan(std::vector<PeeringLinkSpec> links,
      std::vector<MetroId> region_metros, std::size_t prefix_count,
      std::uint64_t seed);

  [[nodiscard]] const PeeringLink& link(LinkId id) const;
  [[nodiscard]] const std::vector<PeeringLink>& links() const {
    return links_;
  }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const std::vector<Destination>& destinations() const {
    return destinations_;
  }
  [[nodiscard]] const Destination& destination(std::size_t i) const {
    return destinations_[i];
  }
  [[nodiscard]] std::size_t destination_count() const {
    return destinations_.size();
  }

  [[nodiscard]] std::size_t prefix_count() const { return prefix_count_; }
  [[nodiscard]] std::size_t region_count() const {
    return region_metros_.size();
  }
  [[nodiscard]] MetroId region_metro(RegionId region) const {
    return region_metros_[region.value()];
  }

  // Destination indices served by a prefix (what shifts on withdrawal).
  [[nodiscard]] const std::vector<std::size_t>& DestinationsOfPrefix(
      PrefixId prefix) const;

  // The announced block behind a prefix id (variable length, /10../14 -
  // the §2 incident withdraws a /10).
  [[nodiscard]] util::Ipv4Prefix AnnouncedPrefix(PrefixId prefix) const;
  // Longest-prefix match of a destination address to its announced block;
  // invalid PrefixId when the address is not in WAN space.
  [[nodiscard]] PrefixId PrefixOfAddress(util::Ipv4Addr address) const;
  // Destination index serving the address (exact VIP match).
  [[nodiscard]] std::optional<std::size_t> DestinationOfAddress(
      util::Ipv4Addr address) const;

  // Links sorted for "other interfaces of peer AS by distance" queries:
  // all links of `asn` except `exclude`, closest to `metro` first. This is
  // exactly the ranking Hist_{AL+G} uses (§3.3.1), computed against the
  // WAN's precisely known link locations.
  [[nodiscard]] std::vector<LinkId> LinksOfAsnByDistance(
      util::AsId asn, MetroId metro, const geo::MetroCatalogue& metros,
      LinkId exclude) const;

 private:
  std::vector<PeeringLink> links_;
  std::vector<MetroId> region_metros_;
  std::size_t prefix_count_;
  std::vector<Destination> destinations_;
  std::vector<std::vector<std::size_t>> destinations_by_prefix_;
  std::vector<util::Ipv4Prefix> announced_;  // by PrefixId
  util::PrefixTrie<std::uint32_t> prefix_trie_;  // LPM addr -> PrefixId
  std::unordered_map<util::Ipv4Addr, std::size_t> destination_by_address_;
};

// Tracks per-link ingress bytes within one hour window.
class UtilizationTracker {
 public:
  explicit UtilizationTracker(std::size_t link_count)
      : bytes_(link_count, 0.0) {}

  void AddBytes(LinkId link, double bytes) {
    bytes_[link.value()] += bytes;
  }
  void Reset() { std::fill(bytes_.begin(), bytes_.end(), 0.0); }

  [[nodiscard]] double bytes(LinkId link) const {
    return bytes_[link.value()];
  }
  // Average utilization over the hour as a fraction of capacity.
  [[nodiscard]] double Utilization(LinkId link, const Wan& wan) const {
    const double cap = wan.link(link).CapacityBytesPerHour();
    return cap > 0.0 ? bytes_[link.value()] / cap : 0.0;
  }

  [[nodiscard]] std::size_t link_count() const { return bytes_.size(); }

 private:
  std::vector<double> bytes_;
};

}  // namespace tipsy::wan
