// Figure 7: looking back from the day after the year ends, how many days
// ago was each peering link last seen down. The paper sees a roughly even
// spread, with about a third of links having failed within the previous 50
// days.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "pipeline/link_hour.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("fig7_outage_last",
                     "Figure 7 - days since a peering link was last down");

  auto cfg = bench::FullScenario(options);
  cfg.traffic.flow_target = options.small ? 1200 : 4000;
  cfg.horizon = util::HourRange{0, 365 * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  pipeline::LinkHourTable table(world.wan().link_count());
  world.SimulateHours(
      cfg.horizon,
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          table.AddBytes(row.link, hour, static_cast<double>(row.bytes));
        }
      });
  const auto outages = pipeline::InferOutages(table, cfg.horizon);

  std::map<std::uint32_t, util::HourIndex> last_down;
  for (const auto& outage : outages) {
    auto [it, inserted] =
        last_down.try_emplace(outage.link.value(), outage.hours.end);
    if (!inserted) it->second = std::max(it->second, outage.hours.end);
  }

  // Histogram of "days ago" measured from the first day after the period.
  std::map<util::HourIndex, std::size_t> by_days_ago;
  for (const auto& [link, hour] : last_down) {
    by_days_ago[util::DayIndex(cfg.horizon.end - 1) -
                util::DayIndex(hour)]++;
  }
  const double total = static_cast<double>(last_down.size());

  util::TextTable out(
      {"Days since last outage <=", "Links", "Cumulative %"});
  std::vector<std::vector<std::string>> csv{
      {"days_ago", "links", "cumulative_pct"}};
  std::size_t cumulative = 0;
  util::HourIndex next_tick = 10;
  for (const auto& [days_ago, count] : by_days_ago) {
    cumulative += count;
    csv.push_back({std::to_string(days_ago), std::to_string(count),
                   util::TextTable::Percent(
                       static_cast<double>(cumulative) / total)});
    if (days_ago >= next_tick) {
      out.AddRow({std::to_string(days_ago), std::to_string(cumulative),
                  util::TextTable::Percent(
                      static_cast<double>(cumulative) / total)});
      next_tick += 50;
    }
  }
  out.Print(std::cout);
  bench::WriteCsv("fig7_outage_last", csv);
  std::cout << "(paper: roughly even spread; ~1/3 of links failed within "
               "the previous 50 days)\n";
  return 0;
}
