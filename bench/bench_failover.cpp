// HA failover bench: what a crash actually costs the serving plane.
//
// Not a paper table. The paper's serving-side posture (daily retraining,
// last-good model kept hot, conservative fallback past the validity
// horizon) implies an availability story this bench makes measurable,
// in two parts:
//
//   Part A - crash/restore matrix. One replica journals + snapshots while
//   serving a multi-day stream, is killed at a crash point, has its
//   on-disk state damaged (torn journal tail, snapshot bitflip, snapshot
//   deleted), and is warm-started. Reported per case: where restore got
//   its state (SNAPSHOT_AND_JOURNAL / JOURNAL_ONLY / COLD_START), how
//   many journal records were replayed vs already inside the snapshot,
//   wall-clock recovery time, and whether the recovered replica finishes
//   the stream *bit-identical* (serialized model bundle + ServiceHealth)
//   to an uninterrupted reference run.
//
//   Part B - supervised failover. A primary/standby pair ingests the same
//   stream; a ha::Supervisor routes queries on heartbeats carried by the
//   chaos channel. A network partition silences the primary mid-run:
//   the supervisor fails over to the standby, serves through the
//   partition, and fails back when heartbeats return. Reported: failover/
//   failback counts, hours routed to each source, the unavailability
//   window (should be 0 with a warm standby), and the standby's held-out
//   accuracy vs the primary's (should be *identical* - both replicas
//   applied the same journal records).
//
//   Part C - networked failover. The same story over real sockets: two
//   tipsyd daemons serve warm replicas, a supervisor knows them only
//   through heartbeats arriving on a net::HeartbeatListener, and the
//   primary's heartbeat AND predict paths run through a
//   scenario::SocketFaultProxy. The proxy partitions both mid-run;
//   reported: wall-clock failover-to-promotion latency, the tick budget
//   it fits in (heartbeat timeout + 1), and how many predict requests
//   went unavailable before routing moved to the standby.
//
//   Part D - pooled reads. A 1-primary/2-standby fleet serves the same
//   warm model; a net::PredictPool spreads batched reads across all
//   three with health-aware routing. The primary's predict path is
//   partitioned mid-run (the read-plane forced promotion: the pool must
//   move reads onto the standbys on its own, no supervisor in the
//   loop). Reported: the fraction of pooled requests served end to end
//   (the >= 95% acceptance gate), how many were served *inside* the
//   partition window, pool failovers/ejections, and a zero-duplicate
//   check over every replica's journal.
//
// Writes results/bench_failover.csv, results/bench_failover_net.csv,
// results/bench_failover_pool.csv and BENCH_ha.json in the working
// directory.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/online.h"
#include "core/serialize.h"
#include "ha/replica.h"
#include "ha/supervisor.h"
#include "net/client.h"
#include "net/daemon.h"
#include "obs/metrics.h"
#include "scenario/fault_injection.h"
#include "scenario/scenario.h"
#include "util/atomic_file.h"
#include "util/table.h"

using namespace tipsy;

namespace {

constexpr int kWarmupDays = 2;
constexpr int kLiveDays = 5;
constexpr int kWindowDays = 7;
constexpr const char* kEvalModel = "Hist_AP/AL/A";

util::HourIndex Hours(int days) { return days * util::kHoursPerDay; }

// The simulated world, buffered hour by hour so every replica (reference,
// crashed, primary, standby) applies the exact same telemetry.
struct HourStream {
  std::vector<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      hours;
};

ha::ReplicaConfig StateConfig(const std::filesystem::path& dir,
                              const std::string& name) {
  ha::ReplicaConfig config;
  config.journal_path = (dir / (name + ".journal")).string();
  config.snapshot_path = (dir / (name + ".snapshot")).string();
  // The bench measures recovery structure, not fsync latency.
  config.fsync_appends = false;
  return config;
}

util::StatusOr<ha::Replica> OpenReplica(const scenario::Scenario& world,
                                        const ha::ReplicaConfig& config) {
  return ha::Replica::Open(&world.wan(), &world.metros(), kWindowDays, {},
                           {}, config);
}

// Serialized model-bundle bytes, the bit-identity witness.
std::string ServiceBytes(const ha::Replica& replica) {
  if (replica.service() == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*replica.service(), out);
  return out.str();
}

struct CrashResult {
  std::string name;
  std::size_t crash_at_hour = 0;
  std::string restore_source;
  std::uint64_t replayed = 0;
  std::uint64_t skipped = 0;
  double recovery_ms = 0.0;
  bool bit_identical = false;
  bool health_identical = false;
};

enum class Damage { kClean, kTornJournalTail, kSnapshotBitFlip,
                    kSnapshotMissing };

CrashResult RunCrashCase(const std::string& name, Damage damage,
                         std::size_t crash_at, const HourStream& stream,
                         const scenario::Scenario& world,
                         const std::filesystem::path& dir,
                         const std::string& reference_bytes,
                         const core::ServiceHealth& reference_health) {
  CrashResult result;
  result.name = name;
  result.crash_at_hour = crash_at;
  const auto config = StateConfig(dir, name);

  // Serve until the crash point, then die (the object is dropped; only
  // the journal + snapshot survive).
  {
    auto replica = OpenReplica(world, config);
    if (!replica.ok()) return result;
    for (std::size_t i = 0; i < crash_at; ++i) {
      const auto& [hour, rows] = stream.hours[i];
      if (!replica->Ingest(hour, rows).ok()) return result;
    }
  }

  switch (damage) {
    case Damage::kClean:
      break;
    case Damage::kTornJournalTail: {
      // A crash mid-append: chop into the last frame. The torn record was
      // never acknowledged, so the stream resumes *including* that hour.
      auto bytes = util::ReadFileToString(config.journal_path);
      if (bytes.ok() && bytes->size() > 16) {
        (void)util::WriteFileAtomic(
            config.journal_path, scenario::TruncateTail(*bytes, 7));
      }
      break;
    }
    case Damage::kSnapshotBitFlip: {
      auto bytes = util::ReadFileToString(config.snapshot_path);
      if (bytes.ok() && !bytes->empty()) {
        (void)util::WriteFileAtomic(
            config.snapshot_path,
            scenario::FlipBit(*bytes, bytes->size() / 2, 3));
      }
      break;
    }
    case Damage::kSnapshotMissing:
      std::filesystem::remove(config.snapshot_path);
      break;
  }

  // Warm start (timed: this is the recovery window an operator waits
  // through), then finish the stream and compare against the
  // uninterrupted reference.
  const auto start = std::chrono::steady_clock::now();
  auto replica = OpenReplica(world, config);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (!replica.ok()) return result;
  result.recovery_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  result.restore_source = ha::RestoreSourceName(replica->recovery().source);
  result.replayed = replica->recovery().replayed_records;
  result.skipped = replica->recovery().skipped_records;
  for (std::size_t i = replica->journal().next_seq();
       i < stream.hours.size(); ++i) {
    const auto& [hour, rows] = stream.hours[i];
    if (!replica->Ingest(hour, rows).ok()) return result;
  }
  result.bit_identical = ServiceBytes(*replica) == reference_bytes;
  result.health_identical =
      replica->retrainer().health_snapshot() == reference_health;
  return result;
}

struct FailoverResult {
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t unavailable_hours = 0;
  // Unavailability *inside* the partition window - the HA claim. (Total
  // unavailable hours also count the warmup before the first retrain,
  // when neither replica has a model yet.)
  std::uint64_t partition_unavailable_hours = 0;
  std::uint64_t stale_served_hours = 0;
  std::uint64_t primary_hours = 0;
  std::uint64_t standby_hours = 0;
  std::size_t heartbeats_dropped = 0;
  util::HourIndex failover_hour = -1;
  util::HourIndex failback_hour = -1;
  double primary_top1 = 0.0;
  double standby_top1 = 0.0;
};

FailoverResult RunFailover(const HourStream& stream,
                           const scenario::Scenario& world,
                           const std::filesystem::path& dir,
                           util::HourRange partition,
                           const core::EvalSet& eval) {
  FailoverResult result;
  auto primary = OpenReplica(world, StateConfig(dir, "primary"));
  auto standby = OpenReplica(world, StateConfig(dir, "standby"));
  if (!primary.ok() || !standby.ok()) return result;

  ha::Supervisor supervisor(&*primary, &*standby);
  // An *asymmetric* partition: only the primary's liveness link is cut
  // (the channel's `partitioned` windows model a full channel cut, which
  // leaves nothing to fail over to - see ha_test for that case).
  scenario::FaultyHeartbeatChannel channel(supervisor, {});

  ha::ServingSource previous = ha::ServingSource::kNone;
  for (const auto& [hour, rows] : stream.hours) {
    // Both replicas apply the same record; only the primary's liveness
    // signal crosses the partitioned link.
    (void)primary->Ingest(hour, rows);
    (void)standby->Ingest(hour, rows);
    if (partition.Contains(hour)) {
      ++result.heartbeats_dropped;
    } else {
      channel.Send(ha::ReplicaRole::kPrimary, hour);
    }
    channel.Send(ha::ReplicaRole::kStandby, hour);
    supervisor.Tick(hour);
    const auto source = supervisor.serving();
    if (source == ha::ServingSource::kPrimary) ++result.primary_hours;
    if (source == ha::ServingSource::kStandby) ++result.standby_hours;
    if (source == ha::ServingSource::kNone && partition.Contains(hour)) {
      ++result.partition_unavailable_hours;
    }
    if (source == ha::ServingSource::kStandby &&
        previous != ha::ServingSource::kStandby &&
        result.failover_hour < 0) {
      result.failover_hour = hour;
    }
    if (source == ha::ServingSource::kPrimary &&
        previous == ha::ServingSource::kStandby) {
      result.failback_hour = hour;
    }
    previous = source;
  }

  const auto stats = supervisor.stats();
  result.failovers = stats.failovers;
  result.failbacks = stats.failbacks;
  result.unavailable_hours = stats.unavailable_hours;
  result.stale_served_hours = stats.stale_served_hours;
  const auto top1 = [&](const ha::Replica& replica) {
    if (replica.service() == nullptr) return 0.0;
    const auto* model = replica.service()->Find(kEvalModel);
    return model ? core::EvaluateModel(*model, eval).top1() : 0.0;
  };
  result.primary_top1 = top1(*primary);
  result.standby_top1 = top1(*standby);
  return result;
}

// --- Part C: failover over real sockets.

struct NetFailoverResult {
  bool ran = false;
  int heartbeat_timeout_ticks = 0;
  int tick_ms = 0;  // the configured supervisor tick cadence
  // The operator-facing promotion SLO, derived from the tick cadence:
  // (heartbeat_timeout_ticks + 1 detection tick) * tick_ms. Faster ticks
  // tighten the budget; the bench proves the plane keeps up at whatever
  // cadence --tick-ms asks for.
  double promotion_budget_ms = 0.0;
  int partition_tick = -1;
  bool promoted = false;
  int promotion_ticks = -1;   // partition start -> routed to the standby
  double promotion_ms = 0.0;  // same, wall clock
  bool promoted_within_budget = false;  // tick latency <= budget
  bool failback = false;  // routing returned after the partition healed
  std::uint64_t requests_total = 0;
  std::uint64_t requests_ok = 0;
  // Ticks with nothing routable plus predict requests that failed into
  // the partitioned path before promotion caught up.
  std::uint64_t unavailable_requests = 0;
};

NetFailoverResult RunNetFailover(const HourStream& stream,
                                 const scenario::Scenario& world,
                                 const std::filesystem::path& dir,
                                 int tick_ms) {
  NetFailoverResult result;
  result.tick_ms = tick_ms;
  auto primary = OpenReplica(world, StateConfig(dir, "net_primary"));
  auto standby = OpenReplica(world, StateConfig(dir, "net_standby"));
  if (!primary.ok() || !standby.ok()) return result;
  for (const auto& [hour, rows] : stream.hours) {
    (void)primary->Ingest(hour, rows);
    (void)standby->Ingest(hour, rows);
  }

  obs::Registry registry;
  net::DaemonConfig daemon_config;
  daemon_config.io_deadline_ms = 500;
  daemon_config.idle_poll_ms = 10;
  daemon_config.metric_prefix = "net_primary";
  net::Daemon primary_daemon(&*primary, &registry, daemon_config);
  daemon_config.metric_prefix = "net_standby";
  net::Daemon standby_daemon(&*standby, &registry, daemon_config);
  if (!primary_daemon.Start().ok() || !standby_daemon.Start().ok()) {
    return result;
  }

  // The supervisor sees both daemons as *remote* members: everything it
  // knows arrives over the heartbeat socket.
  ha::SupervisorConfig sup_config;
  sup_config.heartbeat_timeout_hours = 2;
  result.heartbeat_timeout_ticks = sup_config.heartbeat_timeout_hours;
  result.promotion_budget_ms =
      static_cast<double>(result.heartbeat_timeout_ticks + 1) * tick_ms;
  ha::Supervisor supervisor(nullptr, nullptr, sup_config);
  const int member_primary = supervisor.AddStandby(nullptr, 0);
  const int member_standby = supervisor.AddStandby(nullptr, 1);

  net::HeartbeatListener listener([&](const net::HeartbeatReport& report) {
    supervisor.ObserveMemberHeartbeat(report.member_index, report.hour,
                                      report.applied_seq, report.health);
  });
  if (!listener.Start(0).ok()) return result;

  // The primary's heartbeat and predict paths share the injected fault;
  // the standby's paths are direct.
  scenario::SocketFaultProxyConfig proxy_config;
  proxy_config.upstream_port = listener.port();
  scenario::SocketFaultProxy heartbeat_proxy(proxy_config);
  proxy_config.upstream_port = primary_daemon.predict_port();
  scenario::SocketFaultProxy predict_proxy(proxy_config);
  if (!heartbeat_proxy.Start().ok() || !predict_proxy.Start().ok()) {
    return result;
  }

  std::atomic<util::HourIndex> clock{0};
  const auto client_config = [](std::uint16_t port) {
    net::ClientConfig config;
    config.port = port;
    config.connect_timeout_ms = 200;
    config.io_deadline_ms = 100;
    config.backoff.initial_ms = 5;
    config.backoff.max_ms = 50;
    return config;
  };
  const auto beat = [&clock](const ha::Replica& replica,
                             std::uint32_t member) {
    net::HeartbeatReport report;
    report.member_index = member;
    report.hour = clock.load(std::memory_order_acquire);
    report.applied_seq = replica.applied_seq();
    report.health = replica.health();
    return report;
  };
  net::HeartbeatSender primary_beats(
      client_config(heartbeat_proxy.port()), /*interval_ms=*/10,
      [&] { return beat(*primary, static_cast<std::uint32_t>(member_primary)); });
  net::HeartbeatSender standby_beats(
      client_config(listener.port()), /*interval_ms=*/10,
      [&] { return beat(*standby, static_cast<std::uint32_t>(member_standby)); });
  primary_beats.Start();
  standby_beats.Start();

  net::PredictClient to_primary(client_config(predict_proxy.port()),
                                /*max_attempts=*/1);
  net::PredictClient to_standby(
      client_config(standby_daemon.predict_port()), /*max_attempts=*/1);
  net::PredictRequest request;
  for (const auto& row : stream.hours.back().second) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }

  // Warm up: both members heartbeating, routing settled on the primary.
  for (int i = 0; i < 400 && supervisor.serving_member() != member_primary;
       ++i) {
    supervisor.Tick(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (supervisor.serving_member() != member_primary) return result;
  result.ran = true;

  constexpr int kTicks = 40;
  constexpr int kPartitionTick = 12;
  constexpr int kHealTick = 26;
  auto partition_started = std::chrono::steady_clock::now();
  for (int tick = 1; tick <= kTicks; ++tick) {
    if (tick == kPartitionTick) {
      heartbeat_proxy.set_mode(scenario::ProxyMode::kPartition);
      predict_proxy.set_mode(scenario::ProxyMode::kPartition);
      heartbeat_proxy.DropConnections();
      predict_proxy.DropConnections();
      partition_started = std::chrono::steady_clock::now();
      result.partition_tick = tick;
    }
    if (tick == kHealTick) {
      heartbeat_proxy.set_mode(scenario::ProxyMode::kPass);
      predict_proxy.set_mode(scenario::ProxyMode::kPass);
      heartbeat_proxy.DropConnections();
      predict_proxy.DropConnections();
    }
    clock.store(tick, std::memory_order_release);
    supervisor.Tick(tick);
    const int member = supervisor.serving_member();
    ++result.requests_total;
    if (member < 0) {
      ++result.unavailable_requests;
    } else {
      auto& client = member == member_primary ? to_primary : to_standby;
      auto response = client.Predict(request);
      if (response.ok()) {
        ++result.requests_ok;
      } else {
        ++result.unavailable_requests;
      }
    }
    if (!result.promoted && tick >= kPartitionTick &&
        member == member_standby) {
      result.promoted = true;
      result.promotion_ticks = tick - kPartitionTick;
      result.promotion_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                partition_started)
                                .count();
    }
    if (result.promoted && tick > kHealTick &&
        member == member_primary) {
      result.failback = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
  }
  // Judge against the tick-derived budget in tick time (promotion is
  // detected at tick granularity; wall-clock jitter from the in-loop
  // predict probes is reported via promotion_ms but not judged).
  result.promoted_within_budget =
      result.promoted && static_cast<double>(result.promotion_ticks) *
                                 tick_ms <=
                             result.promotion_budget_ms;

  primary_beats.Stop();
  standby_beats.Stop();
  to_primary.Disconnect();
  to_standby.Disconnect();
  heartbeat_proxy.Stop();
  predict_proxy.Stop();
  listener.Stop();
  primary_daemon.Stop();
  standby_daemon.Stop();
  return result;
}

// --- Part D: pooled reads across a partition-driven promotion.

struct PoolLaneResult {
  bool ran = false;
  int endpoints = 0;
  std::uint64_t requests_total = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_during_failover = 0;
  std::uint64_t served_during_failover = 0;
  std::uint64_t pool_failovers = 0;
  std::uint64_t ejections = 0;
  std::uint64_t exhausted = 0;
  double served_fraction = 0.0;
  bool zero_duplicates = false;
};

PoolLaneResult RunPoolLane(const HourStream& stream,
                           const scenario::Scenario& world,
                           const std::filesystem::path& dir) {
  PoolLaneResult result;
  auto primary = OpenReplica(world, StateConfig(dir, "pool_primary"));
  auto standby0 = OpenReplica(world, StateConfig(dir, "pool_standby0"));
  auto standby1 = OpenReplica(world, StateConfig(dir, "pool_standby1"));
  if (!primary.ok() || !standby0.ok() || !standby1.ok()) return result;
  for (const auto& [hour, rows] : stream.hours) {
    (void)primary->Ingest(hour, rows);
    (void)standby0->Ingest(hour, rows);
    (void)standby1->Ingest(hour, rows);
  }

  obs::Registry registry;
  net::DaemonConfig daemon_config;
  daemon_config.io_deadline_ms = 500;
  daemon_config.idle_poll_ms = 10;
  daemon_config.metric_prefix = "pool_primary";
  net::Daemon primary_daemon(&*primary, &registry, daemon_config);
  daemon_config.metric_prefix = "pool_standby0";
  net::Daemon standby0_daemon(&*standby0, &registry, daemon_config);
  daemon_config.metric_prefix = "pool_standby1";
  net::Daemon standby1_daemon(&*standby1, &registry, daemon_config);
  if (!primary_daemon.Start().ok() || !standby0_daemon.Start().ok() ||
      !standby1_daemon.Start().ok()) {
    return result;
  }

  // Only the primary's predict path runs through the fault proxy: the
  // partition IS the forced promotion, and the pool has to notice (a
  // stalled read, an ejection) and re-route with no supervisor in the
  // loop.
  scenario::SocketFaultProxyConfig proxy_config;
  proxy_config.upstream_port = primary_daemon.predict_port();
  scenario::SocketFaultProxy predict_proxy(proxy_config);
  if (!predict_proxy.Start().ok()) return result;

  const auto endpoint = [](std::uint16_t port) {
    net::ClientConfig config;
    config.port = port;
    config.connect_timeout_ms = 200;
    config.io_deadline_ms = 150;
    config.backoff.initial_ms = 5;
    config.backoff.max_ms = 50;
    return config;
  };
  net::PredictPoolConfig pool_config;
  pool_config.endpoints = {endpoint(predict_proxy.port()),
                           endpoint(standby0_daemon.predict_port()),
                           endpoint(standby1_daemon.predict_port())};
  pool_config.eject_ms = 100;
  pool_config.probe_interval_ms = 300;
  net::PredictPool pool(pool_config);
  result.endpoints = static_cast<int>(pool.size());

  net::PredictRequest request;
  for (const auto& row : stream.hours.back().second) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }
  result.ran = true;

  constexpr int kRequests = 200;
  constexpr int kPartitionAt = 60;
  constexpr int kHealAt = 140;
  for (int i = 0; i < kRequests; ++i) {
    if (i == kPartitionAt) {
      predict_proxy.set_mode(scenario::ProxyMode::kPartition);
      predict_proxy.DropConnections();
    }
    if (i == kHealAt) {
      predict_proxy.set_mode(scenario::ProxyMode::kPass);
      predict_proxy.DropConnections();
    }
    const bool in_window = i >= kPartitionAt && i < kHealAt;
    ++result.requests_total;
    if (in_window) ++result.requests_during_failover;
    auto response = pool.Predict(request);
    if (response.ok()) {
      ++result.requests_ok;
      if (in_window) ++result.served_during_failover;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  result.pool_failovers = pool.failovers();
  result.ejections = pool.ejections();
  result.exhausted = pool.exhausted();
  result.served_fraction =
      result.requests_total == 0
          ? 0.0
          : static_cast<double>(result.requests_ok) /
                static_cast<double>(result.requests_total);
  // Zero duplicate journal applies: each replica applied each record of
  // the shared stream exactly once, and the read-plane churn above never
  // touched the write plane.
  const auto expected = static_cast<std::uint64_t>(stream.hours.size());
  result.zero_duplicates = primary->applied_seq() == expected &&
                           standby0->applied_seq() == expected &&
                           standby1->applied_seq() == expected &&
                           primary->duplicate_records_skipped() == 0 &&
                           standby0->duplicate_records_skipped() == 0 &&
                           standby1->duplicate_records_skipped() == 0;

  pool.Disconnect();
  predict_proxy.Stop();
  primary_daemon.Stop();
  standby0_daemon.Stop();
  standby1_daemon.Stop();
  return result;
}

std::string Fraction(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  return buffer;
}

std::string Percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", fraction * 100.0);
  return buffer;
}

std::string Millis(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", ms);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  // Part C's supervisor tick cadence; the promotion budget is derived
  // from it ((timeout + 1 detection tick) * tick_ms), so the flag IS the
  // promotion SLO knob. BenchOptions ignores flags it doesn't know, so
  // parse it here.
  int tick_ms = 20;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--tick-ms") {
      tick_ms = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 400 : 1200;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  const int total_days = kWarmupDays + kLiveDays + 1;  // +1 held-out day
  cfg.horizon = util::HourRange{0, Hours(total_days)};

  bench::PrintHeader("bench_failover",
                     "HA serving plane; no paper table - availability "
                     "posture of the daily-retraining design");

  // Simulate once; every replica sees the identical stream.
  scenario::Scenario world(cfg);
  HourStream stream;
  core::EvalSet eval;
  world.SimulateHours(
      {0, Hours(kWarmupDays + kLiveDays)},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        stream.hours.emplace_back(
            hour, std::vector<pipeline::AggRow>(rows.begin(), rows.end()));
      });
  world.SimulateHours(
      {Hours(kWarmupDays + kLiveDays), Hours(total_days)},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          eval.AddObservation(
              core::FlowFeatures{row.src_asn, row.src_prefix24,
                                 row.src_metro, row.dest_region,
                                 row.dest_service},
              row.link, static_cast<double>(row.bytes));
        }
      });
  eval.Finalize();

  const auto state_dir =
      std::filesystem::temp_directory_path() /
      ("tipsy_bench_failover_" + std::to_string(::getpid()));
  std::filesystem::create_directories(state_dir);

  // Uninterrupted reference run: the bit-identity target.
  std::string reference_bytes;
  core::ServiceHealth reference_health;
  {
    auto reference = OpenReplica(world, StateConfig(state_dir, "reference"));
    if (!reference.ok()) {
      std::cerr << "reference open failed: "
                << reference.status().ToString() << "\n";
      return 1;
    }
    for (const auto& [hour, rows] : stream.hours) {
      if (auto status = reference->Ingest(hour, rows); !status.ok()) {
        std::cerr << "reference ingest failed: " << status.ToString()
                  << "\n";
        return 1;
      }
    }
    reference_bytes = ServiceBytes(*reference);
    reference_health = reference->retrainer().health_snapshot();
  }
  std::cout << "stream: " << stream.hours.size() << " hourly records, "
            << "eval cases: " << eval.cases().size()
            << ", reference bundle: " << reference_bytes.size()
            << " bytes\n\n";

  // Part A: crash points land mid-day (snapshot + journal suffix) and
  // just after a day boundary (fresh snapshot, near-empty suffix).
  const std::size_t mid_day = Hours(kWarmupDays + 2) + 9;
  const std::size_t post_boundary = Hours(kWarmupDays + 3) + 1;
  const struct { const char* name; Damage damage; std::size_t at; } cases[] =
      {{"clean_kill_mid_day", Damage::kClean, mid_day},
       {"clean_kill_post_snapshot", Damage::kClean, post_boundary},
       {"torn_journal_tail", Damage::kTornJournalTail, mid_day},
       {"snapshot_bitflip", Damage::kSnapshotBitFlip, mid_day},
       {"snapshot_missing", Damage::kSnapshotMissing, mid_day}};
  std::vector<CrashResult> crashes;
  for (const auto& c : cases) {
    crashes.push_back(RunCrashCase(c.name, c.damage, c.at, stream, world,
                                   state_dir, reference_bytes,
                                   reference_health));
  }

  util::TextTable crash_table({"Crash case", "Killed at h", "Restore from",
                               "Replayed", "Skipped", "Recovery ms",
                               "Bit-identical"});
  for (const auto& r : crashes) {
    crash_table.AddRow({r.name, std::to_string(r.crash_at_hour),
                        r.restore_source, std::to_string(r.replayed),
                        std::to_string(r.skipped), Millis(r.recovery_ms),
                        r.bit_identical && r.health_identical ? "yes"
                                                              : "NO"});
  }
  crash_table.Print(std::cout);

  // Part B: partition the primary's heartbeats for 30 hours mid-run.
  const util::HourRange partition{Hours(kWarmupDays + 1) + 6,
                                  Hours(kWarmupDays + 1) + 36};
  const auto failover =
      RunFailover(stream, world, state_dir, partition, eval);

  std::cout << "\nfailover: partition h" << partition.begin << "-h"
            << partition.end << " dropped " << failover.heartbeats_dropped
            << " heartbeats; failover at h" << failover.failover_hour
            << ", failback at h" << failover.failback_hour << "\n";
  util::TextTable fo_table({"Metric", "Value"});
  fo_table.AddRow({"failovers", std::to_string(failover.failovers)});
  fo_table.AddRow({"failbacks", std::to_string(failover.failbacks)});
  fo_table.AddRow(
      {"hours served by primary", std::to_string(failover.primary_hours)});
  fo_table.AddRow(
      {"hours served by standby", std::to_string(failover.standby_hours)});
  fo_table.AddRow({"unavailable hours (total)",
                   std::to_string(failover.unavailable_hours)});
  fo_table.AddRow({"unavailable hours (in partition)",
                   std::to_string(failover.partition_unavailable_hours)});
  fo_table.AddRow({"stale-served hours",
                   std::to_string(failover.stale_served_hours)});
  fo_table.AddRow({"primary top-1 %", Percent(failover.primary_top1)});
  fo_table.AddRow({"standby top-1 %", Percent(failover.standby_top1)});
  fo_table.AddRow(
      {"standby accuracy delta",
       Percent(failover.standby_top1 - failover.primary_top1)});
  fo_table.Print(std::cout);

  // Part C: the same failover story over real sockets and a fault proxy.
  const auto net = RunNetFailover(stream, world, state_dir, tick_ms);
  std::cout << "\nnetworked failover: partition injected at tick "
            << net.partition_tick << " (heartbeat timeout "
            << net.heartbeat_timeout_ticks << " ticks, " << net.tick_ms
            << " ms/tick -> promotion budget "
            << Millis(net.promotion_budget_ms) << " ms)\n";
  util::TextTable net_table({"Metric", "Value"});
  net_table.AddRow({"promoted to standby", net.promoted ? "yes" : "NO"});
  net_table.AddRow(
      {"promotion latency (ticks)", std::to_string(net.promotion_ticks)});
  net_table.AddRow({"promotion latency (ms)", Millis(net.promotion_ms)});
  net_table.AddRow(
      {"promotion budget (ms)", Millis(net.promotion_budget_ms)});
  net_table.AddRow({"within promotion budget",
                    net.promoted_within_budget ? "yes" : "NO"});
  net_table.AddRow({"failback after heal", net.failback ? "yes" : "NO"});
  net_table.AddRow(
      {"predict requests", std::to_string(net.requests_total)});
  net_table.AddRow({"requests ok", std::to_string(net.requests_ok)});
  net_table.AddRow({"unavailable requests",
                    std::to_string(net.unavailable_requests)});
  net_table.Print(std::cout);

  // Part D: pooled reads — the client-side answer to the same partition.
  const auto pool = RunPoolLane(stream, world, state_dir);
  std::cout << "\npooled reads: 1 primary + 2 standbys, primary predict "
               "path partitioned for requests 60..139 of 200\n";
  util::TextTable pool_table({"Metric", "Value"});
  pool_table.AddRow({"pool endpoints", std::to_string(pool.endpoints)});
  pool_table.AddRow(
      {"pooled requests", std::to_string(pool.requests_total)});
  pool_table.AddRow({"requests served", std::to_string(pool.requests_ok)});
  pool_table.AddRow({"served fraction (gate >= 0.95)",
                     Fraction(pool.served_fraction)});
  pool_table.AddRow({"requests during partition",
                     std::to_string(pool.requests_during_failover)});
  pool_table.AddRow({"served during partition",
                     std::to_string(pool.served_during_failover)});
  pool_table.AddRow(
      {"pool failovers (retried reads)",
       std::to_string(pool.pool_failovers)});
  pool_table.AddRow({"endpoint ejections", std::to_string(pool.ejections)});
  pool_table.AddRow({"exhausted requests", std::to_string(pool.exhausted)});
  pool_table.AddRow(
      {"zero duplicate applies", pool.zero_duplicates ? "yes" : "NO"});
  pool_table.Print(std::cout);

  bench::WriteCsv(
      "bench_failover_pool",
      {{"endpoints", "requests_total", "requests_ok", "served_fraction",
        "requests_during_failover", "served_during_failover",
        "pool_failovers", "ejections", "exhausted", "zero_duplicates"},
       {std::to_string(pool.endpoints), std::to_string(pool.requests_total),
        std::to_string(pool.requests_ok), Fraction(pool.served_fraction),
        std::to_string(pool.requests_during_failover),
        std::to_string(pool.served_during_failover),
        std::to_string(pool.pool_failovers), std::to_string(pool.ejections),
        std::to_string(pool.exhausted), pool.zero_duplicates ? "1" : "0"}});

  bench::WriteCsv(
      "bench_failover_net",
      {{"partition_tick", "heartbeat_timeout_ticks", "tick_ms",
        "promotion_budget_ms", "promoted", "promotion_ticks",
        "promotion_ms", "promoted_within_budget", "failback",
        "requests_total", "requests_ok", "unavailable_requests"},
       {std::to_string(net.partition_tick),
        std::to_string(net.heartbeat_timeout_ticks),
        std::to_string(net.tick_ms), Millis(net.promotion_budget_ms),
        net.promoted ? "1" : "0", std::to_string(net.promotion_ticks),
        Millis(net.promotion_ms), net.promoted_within_budget ? "1" : "0",
        net.failback ? "1" : "0", std::to_string(net.requests_total),
        std::to_string(net.requests_ok),
        std::to_string(net.unavailable_requests)}});

  std::vector<std::vector<std::string>> csv{
      {"kind", "case", "crash_at_hour", "restore_source",
       "replayed_records", "skipped_records", "recovery_ms",
       "bit_identical", "failovers", "failbacks", "unavailable_hours",
       "partition_unavailable_hours", "stale_served_hours", "primary_top1",
       "standby_top1", "standby_delta_top1"}};
  for (const auto& r : crashes) {
    csv.push_back({"crash", r.name, std::to_string(r.crash_at_hour),
                   r.restore_source, std::to_string(r.replayed),
                   std::to_string(r.skipped), Millis(r.recovery_ms),
                   r.bit_identical && r.health_identical ? "1" : "0", "-",
                   "-", "-", "-", "-", "-", "-", "-"});
  }
  csv.push_back({"failover", "partition_30h", "-", "-", "-", "-", "-", "-",
                 std::to_string(failover.failovers),
                 std::to_string(failover.failbacks),
                 std::to_string(failover.unavailable_hours),
                 std::to_string(failover.partition_unavailable_hours),
                 std::to_string(failover.stale_served_hours),
                 Percent(failover.primary_top1),
                 Percent(failover.standby_top1),
                 Percent(failover.standby_top1 - failover.primary_top1)});
  bench::WriteCsv("bench_failover", csv);

  std::ofstream json("BENCH_ha.json");
  if (json) {
    json << "{\n  \"bench\": \"ha_failover\",\n";
    json << "  \"hardware_concurrency\": " << bench::HardwareConcurrency()
         << ",\n";
    json << "  \"warmup_days\": " << kWarmupDays
         << ", \"live_days\": " << kLiveDays
         << ", \"window_days\": " << kWindowDays << ",\n";
    json << "  \"crash_cases\": [\n";
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      const auto& r = crashes[i];
      json << "    {\"name\": \"" << r.name << "\", \"crash_at_hour\": "
           << r.crash_at_hour << ", \"restore_source\": \""
           << r.restore_source << "\", \"replayed_records\": " << r.replayed
           << ", \"skipped_records\": " << r.skipped
           << ", \"recovery_ms\": " << Millis(r.recovery_ms)
           << ", \"bit_identical\": "
           << ((r.bit_identical && r.health_identical) ? "true" : "false")
           << "}" << (i + 1 < crashes.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"failover\": {\n";
    json << "    \"partition_hours\": " << partition.length()
         << ", \"heartbeats_dropped\": " << failover.heartbeats_dropped
         << ",\n    \"failovers\": " << failover.failovers
         << ", \"failbacks\": " << failover.failbacks
         << ", \"failover_hour\": " << failover.failover_hour
         << ", \"failback_hour\": " << failover.failback_hour
         << ",\n    \"unavailable_hours\": " << failover.unavailable_hours
         << ", \"partition_unavailable_hours\": "
         << failover.partition_unavailable_hours
         << ", \"stale_served_hours\": " << failover.stale_served_hours
         << ",\n    \"primary_top1\": " << Percent(failover.primary_top1)
         << ", \"standby_top1\": " << Percent(failover.standby_top1)
         << ", \"standby_delta_top1\": "
         << Percent(failover.standby_top1 - failover.primary_top1)
         << "\n  },\n  \"net\": {\n";
    json << "    \"ran\": " << (net.ran ? "true" : "false")
         << ", \"heartbeat_timeout_ticks\": " << net.heartbeat_timeout_ticks
         << ", \"tick_ms\": " << net.tick_ms
         << ", \"promotion_budget_ms\": " << Millis(net.promotion_budget_ms)
         << ", \"partition_tick\": " << net.partition_tick
         << ",\n    \"promoted\": " << (net.promoted ? "true" : "false")
         << ", \"promotion_ticks\": " << net.promotion_ticks
         << ", \"promotion_ms\": " << Millis(net.promotion_ms)
         << ", \"promoted_within_budget\": "
         << (net.promoted_within_budget ? "true" : "false")
         << ",\n    \"failback\": " << (net.failback ? "true" : "false")
         << ", \"requests_total\": " << net.requests_total
         << ", \"requests_ok\": " << net.requests_ok
         << ", \"unavailable_requests\": " << net.unavailable_requests
         << "\n  },\n  \"pool\": {\n";
    json << "    \"ran\": " << (pool.ran ? "true" : "false")
         << ", \"endpoints\": " << pool.endpoints
         << ", \"requests_total\": " << pool.requests_total
         << ", \"requests_ok\": " << pool.requests_ok
         << ", \"served_fraction\": " << Fraction(pool.served_fraction)
         << ",\n    \"requests_during_failover\": "
         << pool.requests_during_failover
         << ", \"served_during_failover\": " << pool.served_during_failover
         << ",\n    \"pool_failovers\": " << pool.pool_failovers
         << ", \"ejections\": " << pool.ejections
         << ", \"exhausted\": " << pool.exhausted
         << ", \"zero_duplicates\": "
         << (pool.zero_duplicates ? "true" : "false") << "\n  }\n}\n";
    std::cout << "\nwrote BENCH_ha.json\n";
  }

  std::filesystem::remove_all(state_dir);

  std::cout << "\nA crash costs a bounded replay, never the model: every "
               "restore path converges bit-identically, and a warm standby "
               "turns a 30-hour partition into zero unavailable hours with "
               "zero accuracy loss.\n";
  return 0;
}
