// Ablations of the design choices DESIGN.md calls out:
//
//  1. Byte-weighted vs unweighted training samples (§3.3 lists four
//     reasons to weight by volume).
//  2. /24 vs /16 source-prefix aggregation (§3.2's resolution vs feature
//     space trade-off).
//  3. Hot-potato geography in the substrate on vs off - does geography
//     carry the signal Hist_AL+G exploits?
//  4. IPFIX sampling rate 1/4096 vs 1/256 vs unsampled (§4.1).
#include <iostream>

#include "bench_common.h"
#include "core/evaluator.h"
#include "core/historical.h"
#include "scenario/row_cache.h"

using namespace tipsy;

namespace {

// Train a standalone Hist_AP-style model with a row transformation
// applied, and evaluate it on the experiment's eval sets.
template <typename Transform>
core::AccuracyResult TrainAndScore(scenario::RowSource& source,
                                   const scenario::ExperimentConfig& cfg,
                                   const core::EvalSet& eval,
                                   core::FeatureSet fs, bool weighted,
                                   Transform&& transform) {
  core::HistoricalModel model(fs, 16, weighted);
  source.StreamHours(cfg.train, [&](util::HourIndex,
                                    std::span<const pipeline::AggRow> rows) {
    for (pipeline::AggRow row : rows) {
      transform(row);
      model.Add(row);
    }
  });
  model.Finalize();
  return core::EvaluateModel(model, eval);
}

std::string Fmt(const core::AccuracyResult& a) {
  return util::TextTable::Percent(a.top1()) + " / " +
         util::TextTable::Percent(a.top2()) + " / " +
         util::TextTable::Percent(a.top3());
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("ablations", "design-choice ablations");
  std::vector<std::vector<std::string>> csv{
      {"ablation", "variant", "subset", "top1", "top2", "top3"}};

  const auto windows = scenario::PaperWindows();

  // --- Ablations 1 & 2 share one world.
  {
    auto cfg = bench::SweepScenario(options);
    scenario::Scenario world(cfg);
    scenario::RowCache cache(world, cfg.horizon);
    const auto experiment = scenario::RunExperiment(cache, windows);
    auto identity = [](pipeline::AggRow&) {};
    // Blur the /24 feature to /16 granularity (keep the nominal /24
    // length so the AP feature set still applies). Must be applied to
    // both training rows and query flows.
    auto blur16 = [](util::Ipv4Prefix p) {
      return util::Ipv4Prefix(
          util::Ipv4Addr(p.address().bits() & 0xffff0000u), 24);
    };
    auto to16 = [&](pipeline::AggRow& row) {
      row.src_prefix24 = blur16(row.src_prefix24);
    };
    // Adapter so a /16-trained model sees /16-blurred queries too.
    struct BlurredModel : core::Model {
      const core::Model* base;
      explicit BlurredModel(const core::Model* b) : base(b) {}
      std::vector<core::Prediction> Predict(
          const core::FlowFeatures& flow, std::size_t k,
          const core::ExclusionMask* excluded) const override {
        core::FlowFeatures blurred = flow;
        blurred.src_prefix24 = util::Ipv4Prefix(
            util::Ipv4Addr(flow.src_prefix24.address().bits() &
                           0xffff0000u),
            24);
        return base->Predict(blurred, k, excluded);
      }
      std::string name() const override { return base->name() + "/16"; }
      std::size_t MemoryFootprintBytes() const override {
        return base->MemoryFootprintBytes();
      }
    };

    util::TextTable table({"Ablation", "Variant",
                           "Overall top1/2/3 %", "Outage top1/2/3 %"});
    auto add = [&](const std::string& ablation, const std::string& variant,
                   const core::AccuracyResult& overall,
                   const core::AccuracyResult& outages) {
      table.AddRow({ablation, variant, Fmt(overall), Fmt(outages)});
      csv.push_back({ablation, variant, "overall",
                     util::TextTable::Percent(overall.top1()),
                     util::TextTable::Percent(overall.top2()),
                     util::TextTable::Percent(overall.top3())});
      csv.push_back({ablation, variant, "outages",
                     util::TextTable::Percent(outages.top1()),
                     util::TextTable::Percent(outages.top2()),
                     util::TextTable::Percent(outages.top3())});
    };

    add("sample weighting", "byte-weighted (paper)",
        TrainAndScore(cache, windows, experiment.overall,
                      core::FeatureSet::kAP, true, identity),
        TrainAndScore(cache, windows, experiment.outage_all,
                      core::FeatureSet::kAP, true, identity));
    add("sample weighting", "unweighted",
        TrainAndScore(cache, windows, experiment.overall,
                      core::FeatureSet::kAP, false, identity),
        TrainAndScore(cache, windows, experiment.outage_all,
                      core::FeatureSet::kAP, false, identity));
    add("prefix aggregation", "/24 (paper)",
        TrainAndScore(cache, windows, experiment.overall,
                      core::FeatureSet::kAP, true, identity),
        TrainAndScore(cache, windows, experiment.outage_all,
                      core::FeatureSet::kAP, true, identity));
    {
      core::HistoricalModel model16(core::FeatureSet::kAP, 16, true);
      cache.StreamHours(windows.train,
                        [&](util::HourIndex,
                            std::span<const pipeline::AggRow> rows) {
                          for (pipeline::AggRow row : rows) {
                            to16(row);
                            model16.Add(row);
                          }
                        });
      model16.Finalize();
      const BlurredModel blurred(&model16);
      add("prefix aggregation", "/16",
          core::EvaluateModel(blurred, experiment.overall),
          core::EvaluateModel(blurred, experiment.outage_all));
    }
    table.Print(std::cout);
  }

  // --- Ablation 3: hot-potato routing on/off; compare AL+G's edge over
  // AL on outage-affected traffic.
  {
    util::TextTable table({"Substrate", "Model", "Outage top1/2/3 %"});
    for (const bool hot_potato : {true, false}) {
      auto cfg = bench::SweepScenario(options);
      cfg.resolve.hot_potato = hot_potato;
      scenario::Scenario world(cfg);
      const auto experiment = scenario::RunExperiment(world, windows);
      for (const char* name : {"Hist_AL", "Hist_AL+G"}) {
        const auto* model = experiment.tipsy->Find(name);
        const auto accuracy =
            experiment.outage_all.empty()
                ? core::AccuracyResult{}
                : core::EvaluateModel(*model, experiment.outage_all);
        table.AddRow({hot_potato ? "hot-potato (real)" : "random egress",
                      name, Fmt(accuracy)});
        csv.push_back({"hot-potato",
                       std::string(hot_potato ? "on" : "off") + ":" + name,
                       "outages", util::TextTable::Percent(accuracy.top1()),
                       util::TextTable::Percent(accuracy.top2()),
                       util::TextTable::Percent(accuracy.top3())});
      }
    }
    table.Print(std::cout);
    std::cout << "(expected: under hot-potato, +G ranks the same-peer "
                 "alternates in the right geographic order; under random "
                 "egress the ordering carries no signal beyond the "
                 "same-peer prior)\n";
  }

  // --- Ablation 4: IPFIX sampling rate.
  {
    // Our flow aggregates are ~1000x larger than real per-/24 flows (20k
    // aggregates stand in for millions), so the sampling rates are
    // rescaled by that factor to put the detectability threshold in the
    // same place relative to the flow size distribution.
    util::TextTable table(
        {"Sampling (rescaled)", "Hist_AP overall top1/2/3 %", "rows/hour"});
    for (const std::uint32_t rate : {4096u, 1u << 22, 1u << 26}) {
      auto cfg = bench::SweepScenario(options);
      cfg.ipfix.sampling_rate = rate;
      scenario::Scenario world(cfg);
      const auto experiment = scenario::RunExperiment(world, windows);
      const auto* model = experiment.tipsy->Find("Hist_AP");
      const auto accuracy =
          core::EvaluateModel(*model, experiment.overall);
      const auto stats = world.aggregate_stats();
      const auto hours =
          static_cast<double>(windows.train.length() +
                              windows.test.length());
      table.AddRow({"1/" + std::to_string(rate), Fmt(accuracy),
                    util::TextTable::Fixed(
                        static_cast<double>(stats.aggregated_rows) / hours,
                        0)});
      csv.push_back({"sampling", "1/" + std::to_string(rate), "overall",
                     util::TextTable::Percent(accuracy.top1()),
                     util::TextTable::Percent(accuracy.top2()),
                     util::TextTable::Percent(accuracy.top3())});
    }
    table.Print(std::cout);
    std::cout << "(expected: finer sampling mostly recovers small flows; "
                 "top-3 accuracy changes modestly)\n";
  }

  // --- Ablation 5: Geo-IP imprecision (Poese et al. [31]): how much does
  // a noisy geolocation database hurt the AL models?
  {
    util::TextTable table({"Geo-IP error rate",
                           "Hist_AL overall top1/2/3 %",
                           "Hist_AL+G outage top1/2/3 %"});
    for (const double error : {0.0, 0.1, 0.3}) {
      auto cfg = bench::SweepScenario(options);
      cfg.geoip_error_rate = error;
      scenario::Scenario world(cfg);
      const auto experiment = scenario::RunExperiment(world, windows);
      const auto overall = core::EvaluateModel(
          *experiment.tipsy->Find("Hist_AL"), experiment.overall);
      const auto outage =
          experiment.outage_all.empty()
              ? core::AccuracyResult{}
              : core::EvaluateModel(*experiment.tipsy->Find("Hist_AL+G"),
                                    experiment.outage_all);
      table.AddRow({util::TextTable::Percent(error, 0) + "%", Fmt(overall),
                    Fmt(outage)});
      csv.push_back({"geoip-noise", util::TextTable::Percent(error, 0),
                     "overall", util::TextTable::Percent(overall.top1()),
                     util::TextTable::Percent(overall.top2()),
                     util::TextTable::Percent(overall.top3())});
    }
    table.Print(std::cout);
    std::cout << "(paper §5.3.1: metro-level precision suffices; moderate "
                 "imprecision should degrade AL only mildly)\n";
  }

  // --- Ablation 6: residual collector loss (telemetry robustness).
  {
    util::TextTable table(
        {"Collector loss", "Hist_AP overall top1/2/3 %"});
    for (const double loss : {0.0, 0.25, 0.5}) {
      auto cfg = bench::SweepScenario(options);
      cfg.collector_loss_rate = loss;
      scenario::Scenario world(cfg);
      const auto experiment = scenario::RunExperiment(world, windows);
      const auto overall = core::EvaluateModel(
          *experiment.tipsy->Find("Hist_AP"), experiment.overall);
      table.AddRow(
          {util::TextTable::Percent(loss, 0) + "%", Fmt(overall)});
      csv.push_back({"collector-loss", util::TextTable::Percent(loss, 0),
                     "overall", util::TextTable::Percent(overall.top1()),
                     util::TextTable::Percent(overall.top2()),
                     util::TextTable::Percent(overall.top3())});
    }
    table.Print(std::cout);
    std::cout << "(byte-weighted training is dominated by big flows, so "
                 "uniform record loss barely moves accuracy)\n";
  }

  bench::WriteCsv("ablations", csv);
  return 0;
}
