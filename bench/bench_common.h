// Shared scaffolding for the table/figure reproduction benches.
//
// Every bench binary accepts:
//   --small       run on a reduced scenario (CI-friendly, same shapes)
//   --seed N      override the scenario seed
// and prints its table to stdout while also writing a CSV under
// ./results/. Absolute numbers differ from the paper (our substrate is a
// simulator); the shapes are what each bench reproduces.
#pragma once

#include <string>
#include <vector>

#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/table.h"

namespace tipsy::bench {

struct BenchOptions {
  bool small = false;
  std::uint64_t seed = 0;  // 0 = scenario default
  static BenchOptions Parse(int argc, char** argv);
};

// Scenario sized for the full reproduction run.
[[nodiscard]] scenario::ScenarioConfig FullScenario(const BenchOptions& opt);
// Scenario sized for sweep-style benches that run many experiments
// (Figures 9-11); smaller workload, same structure.
[[nodiscard]] scenario::ScenarioConfig SweepScenario(const BenchOptions& opt);

// Prints "=== <name> (paper <ref>) ===" and remembers `name` for the CSV.
void PrintHeader(const std::string& name, const std::string& paper_ref);

// Hardware threads visible to this process, never 0 (falls back to 1 when
// the runtime cannot tell). Every BENCH_*.json records this so readers can
// judge whether parallel speedups were even measurable on the host; benches
// with speedup assertions should degrade to "skipped: 1 core" when it is 1.
[[nodiscard]] unsigned HardwareConcurrency();

// Writes rows (first row = header) to results/<name>.csv.
void WriteCsv(const std::string& name,
              const std::vector<std::vector<std::string>>& rows);

// Renders the standard accuracy table (model, top-1/2/3 %) and writes the
// matching CSV.
void PrintAccuracyTable(const std::string& name,
                        const std::vector<scenario::ModelAccuracy>& rows);

}  // namespace tipsy::bench
