// Figure 3: for every source AS, how many distinct peering links its
// traffic arrived on, as a byte-weighted CDF grouped by the AS'es
// valley-free distance. The paper's surprise: the *closest* ASes spray the
// widest (50% of 1-hop bytes spread over up to 182 links), driven by CDNs
// without global backbones.
#include <iostream>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bench_common.h"
#include "util/stats.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader(
      "fig3_link_spread",
      "Figure 3 - CDF of bytes vs. number of links, by AS distance");

  scenario::Scenario world(bench::FullScenario(options));

  std::map<std::uint32_t, int> distance_of_asn;
  for (const auto& node : world.topology().graph.nodes()) {
    const auto d = world.engine().AsDistance(node.id);
    if (!d.has_value()) continue;
    auto [it, inserted] = distance_of_asn.try_emplace(node.asn.value(), *d);
    if (!inserted) it->second = std::min(it->second, *d);
  }

  struct AsStats {
    double bytes = 0.0;
    std::unordered_set<std::uint32_t> links;
  };
  std::unordered_map<std::uint32_t, AsStats> per_asn;
  world.SimulateHours(
      util::HourRange{0, 7 * util::kHoursPerDay},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          auto& stats = per_asn[row.src_asn.value()];
          stats.bytes += static_cast<double>(row.bytes);
          stats.links.insert(row.link.value());
        }
      });

  // Byte-weighted CDF of link counts, one curve per distance group.
  std::map<int, util::WeightedCdf> curves;
  std::map<int, std::size_t> group_counts;
  for (const auto& [asn, stats] : per_asn) {
    const auto it = distance_of_asn.find(asn);
    if (it == distance_of_asn.end()) continue;
    const int group = std::min(it->second, 3);
    curves[group].Add(static_cast<double>(stats.links.size()), stats.bytes);
    ++group_counts[group];
  }

  util::TextTable table(
      {"AS distance", "#ASes", "p25 links", "median links", "p75 links",
       "p90 links", "max links"});
  std::vector<std::vector<std::string>> csv{{"as_distance", "quantile",
                                             "links"}};
  for (auto& [distance, cdf] : curves) {
    cdf.Finalize();
    const auto label = distance >= 3 ? std::to_string(distance) + "+"
                                     : std::to_string(distance);
    table.AddRow({label, std::to_string(group_counts[distance]),
                  util::TextTable::Fixed(cdf.Quantile(0.25), 0),
                  util::TextTable::Fixed(cdf.Quantile(0.50), 0),
                  util::TextTable::Fixed(cdf.Quantile(0.75), 0),
                  util::TextTable::Fixed(cdf.Quantile(0.90), 0),
                  util::TextTable::Fixed(cdf.Quantile(1.0), 0)});
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      csv.push_back({label, util::TextTable::Fixed(q, 2),
                     util::TextTable::Fixed(cdf.Quantile(q), 0)});
    }
  }
  table.Print(std::cout);
  bench::WriteCsv("fig3_link_spread", csv);
  std::cout << "(paper: nearer ASes spread over MORE links; 1-hop median in "
               "the tens-to-hundreds)\n";
  return 0;
}
