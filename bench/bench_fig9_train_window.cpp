// Figure 9 (Appendix B.1): top-1/2/3 accuracy of Hist_AL/AP/A as a
// function of the training window length, averaged over 4 non-overlapping
// test periods. The paper picks 21 days: long enough for high accuracy,
// before staleness costs anything.
#include <array>
#include <iostream>

#include "bench_common.h"
#include "scenario/row_cache.h"
#include "util/parallel.h"
#include "util/stats.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader(
      "fig9_train_window",
      "Figure 9 - accuracy of Hist_AL/AP/A vs. training window length");

  auto cfg = bench::SweepScenario(options);
  const util::HourIndex span_days = 28 + 3 * 7 + 7;  // max train + offsets
  cfg.horizon = util::HourRange{0, span_days * util::kHoursPerDay};
  scenario::Scenario world(cfg);
  scenario::RowCache cache(world, cfg.horizon);
  std::cout << "cached " << cache.total_rows() << " rows over " << span_days
            << " days\n";

  const int train_lengths[] = {1, 3, 7, 14, 21, 28};
  constexpr int kPeriods = 4;
  util::TextTable table({"Train days", "Top1 avg% (min-max)",
                         "Top2 avg% (min-max)", "Top3 avg% (min-max)"});
  std::vector<std::vector<std::string>> csv{
      {"train_days", "k", "avg_pct", "min_pct", "max_pct"}};

  // Every (window length, test period) experiment replays the same cached
  // rows and is independent of the others: run them all on the thread
  // pool, then fold the accuracies in job order for deterministic stats.
  struct Job {
    int train_days;
    int period;
  };
  std::vector<Job> jobs;
  for (const int train_days : train_lengths) {
    for (int period = 0; period < kPeriods; ++period) {
      jobs.push_back(Job{train_days, period});
    }
  }
  const auto accuracies =
      util::ParallelMap(jobs.size(), [&](std::size_t j) {
        // Test periods start a week apart; training reaches back from
        // each test start, so every length fits inside the cached span.
        const util::HourIndex test_start =
            (28 + jobs[j].period * 7) * util::kHoursPerDay;
        scenario::ExperimentConfig exp;
        exp.train = util::HourRange{
            test_start - jobs[j].train_days * util::kHoursPerDay,
            test_start};
        exp.test = util::HourRange{test_start,
                                   test_start + 7 * util::kHoursPerDay};
        const auto result = scenario::RunExperiment(cache, exp);
        const auto* model = result.tipsy->Find("Hist_AL/AP/A");
        const auto accuracy = core::EvaluateModel(*model, result.overall);
        return std::array<double, 3>{accuracy.top[0], accuracy.top[1],
                                     accuracy.top[2]};
      });

  std::size_t job = 0;
  for (const int train_days : train_lengths) {
    util::OnlineStats stats[3];
    for (int period = 0; period < kPeriods; ++period, ++job) {
      for (int k = 0; k < 3; ++k) stats[k].Add(accuracies[job][k]);
    }
    table.AddRow(
        {std::to_string(train_days),
         util::TextTable::Percent(stats[0].mean()) + " (" +
             util::TextTable::Percent(stats[0].min()) + "-" +
             util::TextTable::Percent(stats[0].max()) + ")",
         util::TextTable::Percent(stats[1].mean()) + " (" +
             util::TextTable::Percent(stats[1].min()) + "-" +
             util::TextTable::Percent(stats[1].max()) + ")",
         util::TextTable::Percent(stats[2].mean()) + " (" +
             util::TextTable::Percent(stats[2].min()) + "-" +
             util::TextTable::Percent(stats[2].max()) + ")"});
    for (int k = 0; k < 3; ++k) {
      csv.push_back({std::to_string(train_days), std::to_string(k + 1),
                     util::TextTable::Percent(stats[k].mean()),
                     util::TextTable::Percent(stats[k].min()),
                     util::TextTable::Percent(stats[k].max())});
    }
  }
  table.Print(std::cout);
  bench::WriteCsv("fig9_train_window", csv);
  std::cout << "(paper: accuracy rises with window length and flattens by "
               "~21 days)\n";
  return 0;
}
