// Robustness degradation bench: how much accuracy and availability each
// telemetry fault class costs the online serving plane.
//
// Not a paper table. The paper's operational claims (daily retraining,
// the 7-day validity horizon of Appendix B.2, collectors that "use
// automatic mechanisms to recover from failures") assume an imperfect
// pipeline; this bench makes the assumption measurable. Each fault class
// replays the same simulated world through the fault-injection harness,
// drives DailyRetrainer + a health-gated CMS over the live window, and
// scores the surviving model on a clean held-out day:
//
//   clean               no faults (baseline)
//   collector_crash_36h collector dead for 36 hours mid-window (-> STALE)
//   blackout_9d         collector dead past the validity horizon
//                       (-> EXPIRED; the CMS falls back to legacy mode)
//   row_loss_30         every live hour thinned by 30% (partial capture)
//   duplicate_hours     hours re-delivered (at-least-once collectors)
//   reorder_hours       adjacent hours swapped in transit
//   archive_clean       offline training from an intact v2 row archive
//   archive_truncated   ...from an archive cut off mid-block
//   archive_bitflip     ...from an archive with one flipped bit
//
// Writes results/bench_degradation.csv and BENCH_robustness.json in the
// working directory.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "cms/cms.h"
#include "core/evaluator.h"
#include "core/online.h"
#include "core/serialize.h"
#include "core/tipsy_service.h"
#include "pipeline/storage.h"
#include "scenario/fault_injection.h"
#include "scenario/scenario.h"
#include "util/jsonish.h"
#include "util/table.h"

using namespace tipsy;

namespace {

constexpr int kWarmupDays = 7;
constexpr int kLiveDays = 12;
constexpr int kWindowDays = 7;
constexpr const char* kEvalModel = "Hist_AP/AL/A";

util::HourIndex Hours(int days) { return days * util::kHoursPerDay; }

struct ClassResult {
  std::string name;
  core::AccuracyResult accuracy;
  bool has_model = false;
  // Serving-plane outcome (blank for archive classes).
  core::ServiceHealth health;
  core::ModelHealth worst_health = core::ModelHealth::kNone;
  std::size_t injected_hours_dropped = 0;
  std::size_t injected_rows_dropped = 0;
  std::size_t cms_events = 0;
  std::size_t cms_withdrawals = 0;
  std::size_t cms_health_fallbacks = 0;
  // Archive-recovery outcome (blank for serving classes).
  bool is_archive = false;
  std::size_t archive_blocks_total = 0;
  std::size_t archive_blocks_recovered = 0;
  std::string archive_status = "-";
};

// Replays already-simulated hours through the fault injector (the fault
// schedule needs a RowSource; the serving loop needs the same world's
// ground-truth loads for the CMS, so each day is simulated once and then
// fed through the injector from this buffer).
struct BufferSource : scenario::RowSource {
  explicit BufferSource(scenario::Scenario* world) : world_(world) {}

  void StreamHours(util::HourRange range, const RowSink& sink) override {
    for (const auto& [hour, rows] : buffered) {
      if (range.Contains(hour)) sink(hour, rows);
    }
  }
  [[nodiscard]] const wan::Wan& wan() const override {
    return world_->wan();
  }
  [[nodiscard]] const geo::MetroCatalogue& metros() const override {
    return world_->metros();
  }
  [[nodiscard]] const scenario::OutageSchedule& outages() const override {
    return world_->outages();
  }

  std::vector<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      buffered;
  scenario::Scenario* world_;
};

core::EvalSet BuildEvalSet(std::span<const pipeline::AggRow> rows,
                           core::EvalSet eval = {}) {
  for (const auto& row : rows) {
    eval.AddObservation(core::FlowFeatures{row.src_asn, row.src_prefix24,
                                           row.src_metro, row.dest_region,
                                           row.dest_service},
                        row.link, static_cast<double>(row.bytes));
  }
  return eval;
}

// One serving-plane fault class: warmup + live window with the injector
// between the telemetry stream and the retrainer, a health-gated CMS on
// the ground-truth counters, then the surviving model scored on `eval`.
ClassResult RunServingClass(const std::string& name,
                            const scenario::ScenarioConfig& cfg,
                            const scenario::FaultScheduleConfig& faults,
                            const core::EvalSet& eval) {
  ClassResult result;
  result.name = name;
  scenario::Scenario world(cfg);
  BufferSource buffer(&world);
  scenario::FaultInjectingRowSource source(buffer, faults);
  core::DailyRetrainer retrainer(&world.wan(), &world.metros(), kWindowDays);

  std::unique_ptr<cms::CongestionMitigationSystem> cms;
  std::unique_ptr<core::TipsyService> guide;

  for (int day = 0; day < kWarmupDays + kLiveDays; ++day) {
    if (day == kWarmupDays && retrainer.current() != nullptr) {
      // The CMS keeps a stable pointer to its guiding model, while the
      // retrainer replaces its service on every successful retrain - so
      // hand the CMS a deep copy of the post-warmup model, snapshotted
      // through the v2 persistence path. Its *health* gate still queries
      // the live retrainer, which is the signal under test.
      std::stringstream snapshot;
      core::SaveService(*retrainer.current(), snapshot);
      auto restored =
          core::LoadService(snapshot, &world.wan(), &world.metros());
      if (restored.ok()) {
        guide = std::move(*restored);
        cms::CmsConfig cms_cfg;
        // Lowered trigger so the tiny scenario produces regular
        // congestion events; what matters here is the health gate, not
        // the threshold.
        cms_cfg.trigger_utilization = 0.45;
        cms_cfg.target_utilization = 0.40;
        cms_cfg.health_provider = [&retrainer] {
          return retrainer.health();
        };
        cms = std::make_unique<cms::CongestionMitigationSystem>(
            &world, guide.get(), cms_cfg);
      }
    }
    const util::HourRange day_range{Hours(day), Hours(day + 1)};
    buffer.buffered.clear();
    std::vector<pipeline::AggRow> hour_rows;
    world.SimulateHours(
        day_range,
        [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
          buffer.buffered.emplace_back(
              hour, std::vector<pipeline::AggRow>(rows.begin(), rows.end()));
          hour_rows.assign(rows.begin(), rows.end());
        },
        [&](util::HourIndex hour, std::span<const double> loads) {
          // The CMS watches its own interface counters and the live flow
          // snapshot; the injected faults hit the training pipeline.
          if (cms) cms->ObserveHour(hour, loads, hour_rows);
        });
    // Telemetry reaches the retrainer through the fault schedule; the
    // heartbeat keeps the ingest clock (and model aging) moving even
    // when a whole day was dropped.
    const auto observe_health = [&] {
      if (static_cast<int>(retrainer.health()) >
          static_cast<int>(result.worst_health)) {
        result.worst_health = retrainer.health();
      }
    };
    source.StreamHours(day_range, [&](util::HourIndex hour,
                                      std::span<const pipeline::AggRow> r) {
      retrainer.Ingest(hour, r);
      observe_health();  // transient STALE windows live between hours
    });
    retrainer.AdvanceTo(day_range.end - 1);
    observe_health();
  }

  result.health = retrainer.health_snapshot();
  result.injected_hours_dropped = source.hours_dropped();
  result.injected_rows_dropped = source.rows_dropped();
  if (cms) {
    result.cms_events = cms->events().size();
    result.cms_withdrawals = cms->withdrawals_issued();
    result.cms_health_fallbacks = cms->health_fallbacks();
  }
  if (const auto* serving = retrainer.current()) {
    if (const auto* model = serving->Find(kEvalModel)) {
      result.accuracy = core::EvaluateModel(*model, eval);
      result.has_model = true;
    }
  }
  return result;
}

// One archive fault class: the warmup telemetry written to a v2 row file,
// damaged, recovered block by block, and a model trained offline on the
// surviving prefix.
ClassResult RunArchiveClass(const std::string& name,
                            const std::string& archive_bytes,
                            std::size_t blocks_total,
                            scenario::Scenario& world,
                            const core::EvalSet& eval) {
  ClassResult result;
  result.name = name;
  result.is_archive = true;
  result.archive_blocks_total = blocks_total;
  const auto recovered = scenario::ReadRowFileBytes(archive_bytes);
  result.archive_blocks_recovered = recovered.blocks.size();
  result.archive_status =
      recovered.status.ok() ? "OK"
                            : std::string(util::StatusCodeName(
                                  recovered.status.code()));
  if (recovered.blocks.empty()) return result;
  core::TipsyService service(&world.wan(), &world.metros());
  for (const auto& block : recovered.blocks) service.Train(block.rows);
  service.FinalizeTraining();
  if (const auto* model = service.Find(kEvalModel)) {
    result.accuracy = core::EvaluateModel(*model, eval);
    result.has_model = true;
  }
  return result;
}

std::string Percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", fraction * 100.0);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 600 : 2000;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  const int total_days = kWarmupDays + kLiveDays + 1;  // +1 test day
  cfg.horizon = util::HourRange{0, Hours(total_days)};

  bench::PrintHeader("bench_degradation",
                     "robustness; no paper table - §4 + Appendix B.2 "
                     "operational assumptions");

  // Clean reference world: the held-out test day and the warmup archive.
  scenario::Scenario reference(cfg);
  core::EvalSet eval;
  std::ostringstream archive;
  pipeline::RowFileWriter archive_writer(archive);
  reference.SimulateHours(
      {0, Hours(kWarmupDays)},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        archive_writer.WriteHour(hour, rows);
      });
  reference.SimulateHours(
      {Hours(kWarmupDays + kLiveDays), Hours(total_days)},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        eval = BuildEvalSet(rows, std::move(eval));
      });
  eval.Finalize();
  const std::string archive_bytes = archive.str();
  std::cout << "eval cases: " << eval.cases().size()
            << ", warmup archive: " << archive_bytes.size() << " bytes ("
            << kWarmupDays * util::kHoursPerDay << " hour blocks)\n\n";

  const util::HourIndex live_start = Hours(kWarmupDays);
  std::vector<ClassResult> results;

  {
    scenario::FaultScheduleConfig none;
    results.push_back(RunServingClass("clean", cfg, none, eval));
  }
  {
    scenario::FaultScheduleConfig faults;
    faults.collector_down = {
        util::HourRange{live_start + Hours(3), live_start + Hours(3) + 36}};
    results.push_back(
        RunServingClass("collector_crash_36h", cfg, faults, eval));
  }
  {
    scenario::FaultScheduleConfig faults;
    faults.collector_down = {
        util::HourRange{live_start + Hours(2), live_start + Hours(11)}};
    results.push_back(RunServingClass("blackout_9d", cfg, faults, eval));
  }
  {
    scenario::FaultScheduleConfig faults;
    faults.degraded = {
        util::HourRange{live_start, Hours(kWarmupDays + kLiveDays)}};
    faults.row_loss_rate = 0.30;
    results.push_back(RunServingClass("row_loss_30", cfg, faults, eval));
  }
  {
    scenario::FaultScheduleConfig faults;
    faults.duplicate_hour_rate = 0.50;
    results.push_back(
        RunServingClass("duplicate_hours", cfg, faults, eval));
  }
  {
    scenario::FaultScheduleConfig faults;
    faults.reorder_rate = 0.50;
    results.push_back(RunServingClass("reorder_hours", cfg, faults, eval));
  }

  const std::size_t archive_blocks = kWarmupDays * util::kHoursPerDay;
  results.push_back(RunArchiveClass("archive_clean", archive_bytes,
                                    archive_blocks, reference, eval));
  results.push_back(RunArchiveClass(
      "archive_truncated",
      archive_bytes.substr(0, archive_bytes.size() * 7 / 10),
      archive_blocks, reference, eval));
  results.push_back(RunArchiveClass(
      "archive_bitflip",
      scenario::FlipBit(archive_bytes, archive_bytes.size() / 3, 5),
      archive_blocks, reference, eval));

  const double clean_top1 = results.front().accuracy.top1();
  util::TextTable table({"Fault class", "Top-1 %", "d vs clean", "Top-3 %",
                         "Worst health", "Final health", "Retrains",
                         "Failures", "CMS fallbacks", "Recovered"});
  std::vector<std::vector<std::string>> csv{
      {"class", "top1", "top2", "top3", "delta_top1_vs_clean",
       "worst_health", "final_health", "retrains", "retrain_failures",
       "dropped_hours", "missing_days", "partial_days",
       "injected_hours_dropped", "injected_rows_dropped", "cms_events",
       "cms_withdrawals", "cms_health_fallbacks", "archive_blocks_recovered",
       "archive_blocks_total", "archive_status"}};
  for (const auto& r : results) {
    const double top1 = r.has_model ? r.accuracy.top1() : 0.0;
    const std::string recovered =
        r.is_archive ? std::to_string(r.archive_blocks_recovered) + "/" +
                           std::to_string(r.archive_blocks_total)
                     : "-";
    table.AddRow(
        {r.name, Percent(top1), Percent(top1 - clean_top1),
         Percent(r.has_model ? r.accuracy.top3() : 0.0),
         r.is_archive ? "-" : core::ModelHealthName(r.worst_health),
         r.is_archive ? "-" : core::ModelHealthName(r.health.health),
         r.is_archive ? "-" : std::to_string(r.health.retrain_count),
         r.is_archive ? "-" : std::to_string(r.health.retrain_failures),
         r.is_archive ? "-" : std::to_string(r.cms_health_fallbacks),
         recovered});
    csv.push_back(
        {r.name, Percent(top1),
         Percent(r.has_model ? r.accuracy.top2() : 0.0),
         Percent(r.has_model ? r.accuracy.top3() : 0.0),
         Percent(top1 - clean_top1),
         core::ModelHealthName(r.worst_health),
         core::ModelHealthName(r.health.health),
         std::to_string(r.health.retrain_count),
         std::to_string(r.health.retrain_failures),
         std::to_string(r.health.dropped_hours),
         std::to_string(r.health.missing_days),
         std::to_string(r.health.partial_days),
         std::to_string(r.injected_hours_dropped),
         std::to_string(r.injected_rows_dropped),
         std::to_string(r.cms_events), std::to_string(r.cms_withdrawals),
         std::to_string(r.cms_health_fallbacks),
         std::to_string(r.archive_blocks_recovered),
         std::to_string(r.archive_blocks_total), r.archive_status});
  }
  table.Print(std::cout);
  bench::WriteCsv("bench_degradation", csv);

  // Two writers share BENCH_robustness.json: this bench owns the
  // degradation keys, tools/chaos_harness owns the "chaos" object. Carry
  // the existing chaos value across the rewrite so a bench rerun does
  // not clobber the harness's convergence record.
  std::string chaos_value;
  {
    std::ifstream existing("BENCH_robustness.json", std::ios::binary);
    if (existing) {
      std::ostringstream buffer;
      buffer << existing.rdbuf();
      chaos_value = util::ExtractTopLevelJsonValue(buffer.str(), "chaos");
    }
  }

  std::ofstream json("BENCH_robustness.json");
  if (json) {
    json << "{\n  \"bench\": \"robustness_degradation\",\n";
    json << "  \"hardware_concurrency\": " << bench::HardwareConcurrency()
         << ",\n";
    json << "  \"warmup_days\": " << kWarmupDays
         << ", \"live_days\": " << kLiveDays
         << ", \"window_days\": " << kWindowDays << ",\n";
    json << "  \"eval_cases\": " << eval.cases().size() << ",\n";
    json << "  \"classes\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      const double top1 = r.has_model ? r.accuracy.top1() : 0.0;
      json << "    {\"name\": \"" << r.name << "\", \"top1\": "
           << Percent(top1) << ", \"delta_top1_vs_clean\": "
           << Percent(top1 - clean_top1) << ", \"worst_health\": \""
           << (r.is_archive ? "-" : core::ModelHealthName(r.worst_health))
           << "\", \"final_health\": \""
           << (r.is_archive ? "-" : core::ModelHealthName(r.health.health))
           << "\", \"retrain_failures\": " << r.health.retrain_failures
           << ", \"cms_health_fallbacks\": " << r.cms_health_fallbacks
           << ", \"archive_blocks_recovered\": "
           << r.archive_blocks_recovered << ", \"archive_status\": \""
           << r.archive_status << "\"}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]";
    if (!chaos_value.empty()) {
      json << ",\n  \"chaos\": " << chaos_value;
    }
    json << "\n}\n";
    std::cout << "\nwrote BENCH_robustness.json"
              << (chaos_value.empty() ? "" : " (chaos object preserved)")
              << "\n";
  }

  std::cout << "\nThe serving plane degrades, never breaks: outages age "
               "the model (FRESH -> STALE -> EXPIRED) while the last-good "
               "model keeps answering, the CMS refuses TIPSY-gated "
               "mitigation only past the validity horizon, and damaged "
               "archives train on the verified prefix.\n";
  return 0;
}
