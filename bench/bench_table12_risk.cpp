// Tables 12 and 15 (Appendix C): peering links at risk of >70% utilization
// if some *other* single link has an outage, found with Algorithm 1 over a
// test week using the Hist_AL model suite. Rows mirror the paper's format:
// victim link, typical hot hours, predicted extra hot hours, and the
// affecting link.
#include <iostream>

#include "bench_common.h"
#include "risk/risk.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("table12_risk",
                     "Table 12/15 - links at risk under single-link outage");

  auto cfg = bench::FullScenario(options);
  // Push typical utilization up a bit so spillovers can cross 70%.
  cfg.target_p99_utilization = 0.62;
  scenario::Scenario world(cfg);

  // Train TIPSY on 3 weeks.
  const auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  // Run Algorithm 1 over the test week.
  risk::RiskAnalyzer analyzer(&world.wan(), experiment.tipsy.get());
  std::vector<pipeline::AggRow> hour_rows;
  world.SimulateHours(
      windows.test,
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        hour_rows.assign(rows.begin(), rows.end());
      },
      [&](util::HourIndex hour, std::span<const double> loads) {
        analyzer.ObserveHour(hour, loads, hour_rows);
      });

  const auto findings = analyzer.Findings(10);
  util::TextTable table({"Router", "Peer", "BW", "Typical >70% h",
                         "Predicted >70% h", "Affecting router",
                         "Affecting peer", "Affecting BW"});
  std::vector<std::vector<std::string>> csv{
      {"router", "peer_asn", "bw_gbps", "typical_hot_hours",
       "predicted_hot_hours", "affecting_router", "affecting_peer_asn",
       "affecting_bw_gbps"}};
  for (const auto& finding : findings) {
    const auto& victim = world.wan().link(finding.link);
    const auto& affecting = world.wan().link(finding.affecting);
    const auto peer_label = [&](const wan::PeeringLink& link) {
      return std::string(topo::ToString(link.peer_type)) + "-AS" +
             std::to_string(link.peer_asn.value());
    };
    const auto row = std::vector<std::string>{
        victim.router, peer_label(victim),
        util::TextTable::Fixed(victim.capacity_gbps, 0) + "G",
        std::to_string(finding.typical_hours),
        std::to_string(finding.predicted_hours), affecting.router,
        peer_label(affecting),
        util::TextTable::Fixed(affecting.capacity_gbps, 0) + "G"};
    table.AddRow(row);
    csv.push_back(row);
  }
  if (findings.empty()) {
    std::cout << "(no at-risk links found this week - utilization headroom "
                 "too large; try --seed)\n";
  } else {
    table.Print(std::cout);
  }
  bench::WriteCsv("table12_risk", csv);
  std::cout << "(paper: a handful of links gain tens of >70% hours under a "
               "specific other link's outage, incl. cross-peer cases)\n";
  return 0;
}
