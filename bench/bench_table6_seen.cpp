#include "accuracy_bench.h"

int main(int argc, char** argv) {
  return tipsy::bench::RunAccuracyBench(
      argc, argv, tipsy::bench::AccuracySubset::kOutageSeen, "table6_seen",
      "Table 6 - accuracy for seen outages");
}
