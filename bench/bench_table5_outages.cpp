#include "accuracy_bench.h"

int main(int argc, char** argv) {
  return tipsy::bench::RunAccuracyBench(
      argc, argv, tipsy::bench::AccuracySubset::kOutageAll, "table5_outages",
      "Table 5 - accuracy for all link outages");
}
