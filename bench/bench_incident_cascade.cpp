// The §2 incident: a peering link is overwhelmed by ingress traffic; the
// pre-TIPSY CMS withdraws a prefix blindly, the traffic lands on the next
// link and congests it, and so on - a cascade of withdrawal rounds. With
// TIPSY, CMS checks every withdrawal's predicted landing spots against
// spare capacity first and avoids unleashing new congestion.
//
// We script the incident (inflate the flows of one busy link until it
// crosses the trigger), then replay the exact same hours twice: legacy CMS
// vs TIPSY-guided CMS, and compare congestion-events, withdrawal rounds
// and peak overload.
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "cms/cms.h"

using namespace tipsy;

namespace {

struct RunStats {
  std::size_t congestion_events = 0;
  std::size_t cascade_events = 0;  // congestion on links other than I1
  std::size_t withdrawals = 0;
  std::size_t unsafe_skipped = 0;
  std::size_t distinct_links_congested = 0;
  std::size_t overloaded_link_hours = 0;  // any link > 85%
  double peak_utilization = 0.0;
};

RunStats RunCms(scenario::Scenario& world, const core::TipsyService* tipsy,
                bool use_tipsy, util::HourRange incident_hours,
                std::uint32_t victim,
                const std::vector<std::size_t>& surge_flows, double surge) {
  world.ResetAdvertisements();
  cms::CmsConfig cms_cfg;
  cms_cfg.use_tipsy = use_tipsy;
  cms::CongestionMitigationSystem cms(&world, tipsy, cms_cfg);

  RunStats stats;
  std::vector<pipeline::AggRow> hour_rows;
  const auto row_sink = [&](util::HourIndex,
                            std::span<const pipeline::AggRow> rows) {
    hour_rows.assign(rows.begin(), rows.end());
  };
  const auto load_sink = [&](util::HourIndex hour,
                             std::span<const double> loads) {
    for (std::uint32_t l = 0; l < loads.size(); ++l) {
      const double cap =
          world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
      if (cap <= 0.0) continue;
      const double u = loads[l] / cap;
      stats.peak_utilization = std::max(stats.peak_utilization, u);
      if (u > 0.85) ++stats.overloaded_link_hours;
    }
    cms.ObserveHour(hour, loads, hour_rows);
  };
  // The surge lasts 5 hours (the enterprise transfer completes), then the
  // flows fall back to their normal volume and CMS re-announces.
  const util::HourIndex surge_end = incident_hours.begin + 5;
  for (std::size_t fi : surge_flows) {
    world.mutable_workload().ScaleFlow(fi, surge);
  }
  world.SimulateHours(util::HourRange{incident_hours.begin, surge_end},
                      row_sink, load_sink);
  for (std::size_t fi : surge_flows) {
    world.mutable_workload().ScaleFlow(fi, 1.0 / surge);
  }
  world.SimulateHours(util::HourRange{surge_end, incident_hours.end},
                      row_sink, load_sink);
  stats.congestion_events = cms.events().size();
  stats.withdrawals = cms.withdrawals_issued();
  stats.unsafe_skipped = cms.unsafe_withdrawals_skipped();
  std::vector<std::uint32_t> congested;
  for (const auto& event : cms.events()) {
    congested.push_back(event.link.value());
    if (event.link.value() != victim) ++stats.cascade_events;
  }
  std::sort(congested.begin(), congested.end());
  congested.erase(std::unique(congested.begin(), congested.end()),
                  congested.end());
  stats.distinct_links_congested = congested.size();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("incident_cascade",
                     "§2 - cascading ingress congestion incident");

  auto cfg = bench::FullScenario(options);
  // A WAN running hotter than usual: spillover headroom is scarce, which
  // is what made the 04 January 2022 incident cascade.
  cfg.target_p99_utilization = 0.72;
  scenario::Scenario world(cfg);

  // Train TIPSY on the three weeks before the incident.
  const auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  // Find the busiest link at the first post-training hour and inflate its
  // flows until it would exceed the trigger (the "enterprise onboarding"
  // surge of §1).
  const util::HourIndex incident_start = windows.test.begin;
  std::vector<double> loads(world.wan().link_count(), 0.0);
  world.SimulateHours(
      util::HourRange{incident_start, incident_start + 1}, nullptr,
      [&](util::HourIndex, std::span<const double> l) {
        loads.assign(l.begin(), l.end());
      });
  // Victim: the busiest link that is not yet congested (the surge, not
  // the baseline, should be what tips it over).
  std::uint32_t victim = 0;
  double victim_util = 0.0;
  for (std::uint32_t l = 0; l < loads.size(); ++l) {
    const double cap =
        world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
    if (cap <= 0.0) continue;
    const double u = loads[l] / cap;
    if (u > victim_util && u < 0.78) {
      victim_util = u;
      victim = l;
    }
  }
  const auto& victim_link = world.wan().link(util::LinkId{victim});
  std::cout << "victim link " << victim << " @" << victim_link.router
            << " (peer AS " << victim_link.peer_asn.value() << ", "
            << victim_link.capacity_gbps << "G), pre-surge utilization "
            << util::TextTable::Percent(victim_util) << "%\n";

  // Flows that will surge: those mostly ingressing the victim.
  const double surge = 1.25 / std::max(victim_util, 0.05);
  std::vector<std::size_t> surge_flows;
  for (std::size_t fi = 0; fi < world.workload().flows().size(); ++fi) {
    const auto shares = world.ResolveFlow(fi, incident_start);
    for (const auto& share : shares) {
      if (share.link.value() == victim && share.fraction > 0.2) {
        surge_flows.push_back(fi);
        break;
      }
    }
  }
  std::cout << "surging " << surge_flows.size()
            << " flow aggregates by x" << util::TextTable::Fixed(surge, 1)
            << " for 5 hours\n\n";

  const util::HourRange incident_hours{incident_start, incident_start + 12};
  const auto legacy =
      RunCms(world, experiment.tipsy.get(), /*use_tipsy=*/false,
             incident_hours, victim, surge_flows, surge);
  const auto guided =
      RunCms(world, experiment.tipsy.get(), /*use_tipsy=*/true,
             incident_hours, victim, surge_flows, surge);

  util::TextTable table({"Metric", "Legacy CMS (pre-TIPSY)",
                         "TIPSY-guided CMS"});
  auto row = [&](const char* metric, auto legacy_value, auto guided_value) {
    table.AddRow({metric, std::to_string(legacy_value),
                  std::to_string(guided_value)});
  };
  row("congestion events", legacy.congestion_events,
      guided.congestion_events);
  row("cascade events (other links)", legacy.cascade_events,
      guided.cascade_events);
  row("distinct links congested", legacy.distinct_links_congested,
      guided.distinct_links_congested);
  row("withdrawal messages", legacy.withdrawals, guided.withdrawals);
  row("unsafe withdrawals skipped", legacy.unsafe_skipped,
      guided.unsafe_skipped);
  row("overloaded link-hours (>85%)", legacy.overloaded_link_hours,
      guided.overloaded_link_hours);
  table.AddRow({"peak utilization",
                util::TextTable::Percent(legacy.peak_utilization) + "%",
                util::TextTable::Percent(guided.peak_utilization) + "%"});
  table.Print(std::cout);
  bench::WriteCsv(
      "incident_cascade",
      {{"metric", "legacy", "tipsy"},
       {"congestion_events", std::to_string(legacy.congestion_events),
        std::to_string(guided.congestion_events)},
       {"distinct_links_congested",
        std::to_string(legacy.distinct_links_congested),
        std::to_string(guided.distinct_links_congested)},
       {"withdrawals", std::to_string(legacy.withdrawals),
        std::to_string(guided.withdrawals)},
       {"overloaded_link_hours",
        std::to_string(legacy.overloaded_link_hours),
        std::to_string(guided.overloaded_link_hours)}});
  std::cout << "(paper: blind withdrawals cascade congestion across "
               "several links; TIPSY-guided withdrawals avoid unleashing "
               "new congestion)\n";
  return 0;
}
