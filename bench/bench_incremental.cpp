// Incremental retraining bench: what the day-shard window buys at each
// daily retrain.
//
// Not a paper table. The paper's serving loop retrains over a sliding
// ~21-day window every day (Appendix B.1/B.2), yet only one day of data
// changes per retrain. This bench drives two DailyRetrainers through the
// identical multi-week stream - one re-aggregating the full window at
// every boundary, one maintaining mergeable per-day count shards
// (core/day_shard.h) and merge-newest / subtract-expired - and times the
// day-boundary retrain on both, asserting after every boundary that the
// two serve *bit-identical* models (serialized bundle + ServiceHealth).
//
// Reported per boundary: buffered window rows, full and incremental
// retrain latency, speedup; plus a steady-state summary (boundaries where
// the window is full, so the incremental path both merges and subtracts).
//
// Writes results/bench_incremental.csv and BENCH_incremental.json in the
// working directory. Exits non-zero if any boundary diverges.
#include <chrono>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/online.h"
#include "core/serialize.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace tipsy;

namespace {

util::HourIndex Hours(int days) { return days * util::kHoursPerDay; }

std::string ServiceBytes(const core::TipsyService* service) {
  if (service == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*service, out);
  return out.str();
}

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

std::string Millis(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

std::string Ratio(double r) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", r);
  return buffer;
}

struct BoundaryResult {
  int day = 0;                   // the day that just completed
  std::size_t window_rows = 0;   // rows buffered across the window
  double full_ms = 0.0;
  double incremental_ms = 0.0;
  bool bit_identical = false;
  bool steady_state = false;     // window full: merge + subtract boundary
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  // The paper's 21-day window in the full run; the smoke run keeps the
  // same shape (fill the window, then turn it over for several days) at a
  // fraction of the cost.
  const int window_days = options.small ? 5 : 21;
  const int turnover_days = options.small ? 3 : 5;
  const int total_days = window_days + turnover_days;

  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 300 : 900;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  cfg.horizon = util::HourRange{0, Hours(total_days)};

  bench::PrintHeader("bench_incremental",
                     "day-shard window maintenance; no paper table - cost "
                     "of the daily retrain (Appendix B.1/B.2 window)");

  // Simulate once; both retrainers see the identical stream.
  scenario::Scenario world(cfg);
  std::vector<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
      stream;
  std::size_t total_rows = 0;
  world.SimulateHours(
      {0, Hours(total_days)},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        stream.emplace_back(
            hour, std::vector<pipeline::AggRow>(rows.begin(), rows.end()));
        total_rows += rows.size();
      });
  std::cout << "stream: " << stream.size() << " hourly records, "
            << total_rows << " rows, window " << window_days << "d, "
            << total_days << "d total\n\n";

  core::RetrainPolicy incremental_policy;
  incremental_policy.incremental_retrain = true;
  core::RetrainPolicy full_policy;
  full_policy.incremental_retrain = false;
  core::DailyRetrainer incremental(&world.wan(), &world.metros(),
                                   window_days, {}, incremental_policy);
  core::DailyRetrainer full(&world.wan(), &world.metros(), window_days, {},
                            full_policy);

  // Ingest day by day; at each boundary, time the retrain itself (an
  // AdvanceTo into the new day triggers it, with no ingest work mixed in).
  std::vector<BoundaryResult> boundaries;
  std::size_t next_event = 0;
  std::deque<std::size_t> window_day_rows;
  for (int day = 0; day < total_days; ++day) {
    std::size_t day_rows = 0;
    while (next_event < stream.size() &&
           util::DayIndex(stream[next_event].first) == day) {
      const auto& [hour, rows] = stream[next_event];
      incremental.Ingest(hour, rows);
      full.Ingest(hour, rows);
      day_rows += rows.size();
      ++next_event;
    }
    window_day_rows.push_back(day_rows);
    while (static_cast<int>(window_day_rows.size()) > window_days) {
      window_day_rows.pop_front();
    }

    BoundaryResult result;
    result.day = day;
    for (std::size_t rows : window_day_rows) result.window_rows += rows;
    // The window is full once `window_days` of data are buffered; the
    // boundary after that both merges the new day and subtracts the
    // expired one - the steady-state daily retrain.
    result.steady_state = day >= window_days;
    const util::HourIndex boundary_hour = Hours(day + 1);
    result.incremental_ms =
        TimeMs([&] { incremental.AdvanceTo(boundary_hour); });
    result.full_ms = TimeMs([&] { full.AdvanceTo(boundary_hour); });
    result.bit_identical =
        ServiceBytes(incremental.current()) == ServiceBytes(full.current()) &&
        incremental.health_snapshot() == full.health_snapshot();
    boundaries.push_back(result);
  }

  util::TextTable table({"Day", "Window rows", "Full ms", "Incremental ms",
                         "Speedup", "Steady", "Bit-identical"});
  bool all_identical = true;
  double steady_full = 0.0, steady_incremental = 0.0;
  std::size_t steady_count = 0;
  for (const auto& b : boundaries) {
    all_identical = all_identical && b.bit_identical;
    if (b.steady_state) {
      steady_full += b.full_ms;
      steady_incremental += b.incremental_ms;
      ++steady_count;
    }
    table.AddRow({std::to_string(b.day), std::to_string(b.window_rows),
                  Millis(b.full_ms), Millis(b.incremental_ms),
                  Ratio(b.full_ms / std::max(b.incremental_ms, 1e-6)),
                  b.steady_state ? "yes" : "-",
                  b.bit_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);

  const double mean_full = steady_count ? steady_full / steady_count : 0.0;
  const double mean_incremental =
      steady_count ? steady_incremental / steady_count : 0.0;
  const double speedup = mean_full / std::max(mean_incremental, 1e-6);
  std::cout << "\nsteady state (" << steady_count << " boundaries, "
            << window_days << "d window): full " << Millis(mean_full)
            << " ms, incremental " << Millis(mean_incremental)
            << " ms, speedup " << Ratio(speedup) << "x\n";
  std::cout << "incremental retrains: " << incremental.incremental_retrains()
            << ", aggregate rebuilds: " << incremental.incremental_rebuilds()
            << ", bit-identical at every boundary: "
            << (all_identical ? "yes" : "NO") << "\n";

  std::vector<std::vector<std::string>> csv{
      {"day", "window_rows", "full_ms", "incremental_ms", "speedup",
       "steady_state", "bit_identical"}};
  for (const auto& b : boundaries) {
    csv.push_back({std::to_string(b.day), std::to_string(b.window_rows),
                   Millis(b.full_ms), Millis(b.incremental_ms),
                   Ratio(b.full_ms / std::max(b.incremental_ms, 1e-6)),
                   b.steady_state ? "1" : "0", b.bit_identical ? "1" : "0"});
  }
  bench::WriteCsv("bench_incremental", csv);

  std::ofstream json("BENCH_incremental.json");
  if (json) {
    json << "{\n  \"bench\": \"incremental_retrain\",\n";
    json << "  \"hardware_concurrency\": " << bench::HardwareConcurrency()
         << ",\n";
    json << "  \"window_days\": " << window_days
         << ", \"total_days\": " << total_days
         << ", \"stream_rows\": " << total_rows << ",\n";
    json << "  \"steady_state\": {\"boundaries\": " << steady_count
         << ", \"mean_full_ms\": " << Millis(mean_full)
         << ", \"mean_incremental_ms\": " << Millis(mean_incremental)
         << ", \"speedup\": " << Ratio(speedup)
         << ", \"bit_identical\": " << (all_identical ? "true" : "false")
         << "},\n";
    json << "  \"boundaries\": [\n";
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      const auto& b = boundaries[i];
      json << "    {\"day\": " << b.day
           << ", \"window_rows\": " << b.window_rows
           << ", \"full_ms\": " << Millis(b.full_ms)
           << ", \"incremental_ms\": " << Millis(b.incremental_ms)
           << ", \"steady_state\": " << (b.steady_state ? "true" : "false")
           << ", \"bit_identical\": " << (b.bit_identical ? "true" : "false")
           << "}" << (i + 1 < boundaries.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_incremental.json\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: incremental and full retrains diverged\n";
    return 1;
  }
  std::cout << "\nThe daily retrain touches one day, not the window: "
               "maintaining mergeable day shards turns the boundary "
               "rebuild into one merge + one subtract, bit-identical to "
               "re-aggregating all " << window_days << " days.\n";
  return 0;
}
