// Observability overhead bench: what the metrics instrumentation costs
// on the prediction hot path.
//
// Not a paper table. PR 5's obs layer wires counters and a sampled
// latency timer into TipsyService::PredictShift; the acceptance bar,
// enforced per batch size, is <3% added latency versus an uninstrumented
// path OR <30 ns absolute per query. The absolute arm exists because the
// serving-core rewrite took a query to ~100 ns, below what two striped
// counter updates irreducibly cost on slow hosts; a percentage-only test
// there aliases atomic-RMW latency, while the 30 ns bound still fails
// any structural regression (a per-flow counter or an always-on timer
// costs far more). The baseline is TipsyService::PredictShiftNoMetrics —
// the exact prediction body the instrumented entry point wraps, with the
// metrics layer skipped (what the function compiles to under
// -DTIPSY_NO_OBS) — run against the identical trained service and query
// stream. Both paths are timed in alternating rounds (min-of-rounds, so
// scheduler noise cannot inflate one side only), across CMS-realistic
// batch sizes.
//
// Also reported: the raw cost of each obs primitive (counter increment,
// histogram observe, span, scrape), so a regression can be localized.
//
// Writes results/bench_obs.csv and BENCH_obs.json in the working
// directory. Always exits 0: the 3% target is asserted by CI over the
// committed artifact, not by this binary racing the machine it runs on.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/tipsy_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace tipsy;

namespace {

std::string Fixed(double v, int digits = 1) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

// Per-row acceptance: relative for slow queries, absolute for fast ones
// (see the header comment).
constexpr double kMaxOverheadPct = 3.0;
constexpr double kMaxOverheadNs = 30.0;

struct BatchPoint {
  std::size_t batch = 0;          // flows per PredictShift query
  std::size_t queries = 0;        // timed queries per round
  double baseline_ns = 0.0;       // min-of-rounds, per query
  double instrumented_ns = 0.0;   // min-of-rounds, per query
  [[nodiscard]] double overhead_pct() const {
    return baseline_ns > 0.0
               ? (instrumented_ns - baseline_ns) / baseline_ns * 100.0
               : 0.0;
  }
  [[nodiscard]] double overhead_ns() const {
    return instrumented_ns - baseline_ns;
  }
  [[nodiscard]] bool within_target() const {
    return overhead_pct() < kMaxOverheadPct ||
           overhead_ns() < kMaxOverheadNs;
  }
};

struct Primitive {
  std::string name;
  double ns_per_op = 0.0;
};

// Keeps results observable so the optimizer cannot delete a timed loop.
double g_sink = 0.0;

double TimePrimitive(std::size_t ops, const std::function<void()>& op) {
  const std::uint64_t start = obs::NowNanos();
  for (std::size_t i = 0; i < ops; ++i) op();
  return static_cast<double>(obs::NowNanos() - start) /
         static_cast<double>(ops);
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  const int rounds = options.small ? 5 : 9;
  const std::size_t target_queries_per_round = options.small ? 2000 : 20000;

  bench::PrintHeader("bench_obs",
                     "instrumentation overhead on the prediction path; no "
                     "paper table - PR 5 acceptance (<3% vs compiled-out)");
#ifdef TIPSY_NO_OBS
  const std::string mode = "no_obs";
#else
  const std::string mode = "obs";
#endif
  std::cout << "build mode: " << mode << " (TIPSY_NO_OBS "
            << (mode == "no_obs" ? "on" : "off") << ")\n\n";

  // A trained service over a simulated week: realistic table sizes and a
  // query stream of flows the model has actually seen (the CMS queries
  // flows taken from the congested link's rows).
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 300 : 900;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  scenario::Scenario world(cfg);
  core::TipsyService service(&world.wan(), &world.metros());
  std::vector<core::TipsyService::ShiftQueryFlow> flow_pool;
  world.SimulateHours(
      {0, 7 * util::kHoursPerDay},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        service.Train(rows);
        for (const auto& row : rows) {
          if (flow_pool.size() >= 4096) continue;
          flow_pool.push_back(core::TipsyService::ShiftQueryFlow{
              core::FlowFeatures{row.src_asn, row.src_prefix24,
                                 row.src_metro, row.dest_region,
                                 row.dest_service},
              static_cast<double>(row.bytes)});
        }
      });
  service.FinalizeTraining();
  std::cout << "trained over 7 days, query pool " << flow_pool.size()
            << " flows\n\n";

  const core::ExclusionMask excluded(world.wan().link_count(), false);
  const std::vector<std::size_t> batch_sizes{1, 4, 16, 64};

  std::vector<BatchPoint> points;
  std::size_t total_queries = 0;
  for (const std::size_t batch : batch_sizes) {
    BatchPoint point;
    point.batch = batch;
    point.queries = std::max<std::size_t>(target_queries_per_round / batch,
                                          64);
    point.baseline_ns = point.instrumented_ns = 1e18;

    // Alternate the two paths inside every round: slow drift (thermal,
    // scheduler) hits both sides equally, and min-of-rounds drops the
    // noisy outliers.
    for (int round = 0; round < rounds; ++round) {
      std::size_t cursor = round;  // vary the query stream per round
      const std::uint64_t b0 = obs::NowNanos();
      for (std::size_t q = 0; q < point.queries; ++q) {
        const std::size_t at = (cursor + q * batch) % flow_pool.size();
        const std::size_t take =
            std::min(batch, flow_pool.size() - at);
        const auto result = service.PredictShiftNoMetrics(
            std::span(flow_pool.data() + at, take), excluded, 3);
        g_sink += result.unpredicted_bytes +
                  static_cast<double>(result.shifted.size());
      }
      const std::uint64_t b1 = obs::NowNanos();
      for (std::size_t q = 0; q < point.queries; ++q) {
        const std::size_t at = (cursor + q * batch) % flow_pool.size();
        const std::size_t take =
            std::min(batch, flow_pool.size() - at);
        const auto result = service.PredictShift(
            std::span(flow_pool.data() + at, take), excluded, 3);
        g_sink += result.unpredicted_bytes +
                  static_cast<double>(result.shifted.size());
      }
      const std::uint64_t b2 = obs::NowNanos();
      point.baseline_ns = std::min(
          point.baseline_ns, static_cast<double>(b1 - b0) /
                                 static_cast<double>(point.queries));
      point.instrumented_ns = std::min(
          point.instrumented_ns, static_cast<double>(b2 - b1) /
                                     static_cast<double>(point.queries));
    }
    total_queries += point.queries * static_cast<std::size_t>(rounds) * 2;
    points.push_back(point);
  }

  util::TextTable table({"Batch", "Queries/round", "Baseline ns/q",
                         "Instrumented ns/q", "Overhead %", "Target"});
  double sum_baseline = 0.0, sum_instrumented = 0.0;
  for (const auto& p : points) {
    sum_baseline += p.baseline_ns * static_cast<double>(p.queries);
    sum_instrumented += p.instrumented_ns * static_cast<double>(p.queries);
    table.AddRow({std::to_string(p.batch), std::to_string(p.queries),
                  Fixed(p.baseline_ns), Fixed(p.instrumented_ns),
                  Fixed(p.overhead_pct(), 2),
                  p.within_target() ? "OK" : "OVER"});
  }
  table.Print(std::cout);

  // The headline number: total instrumented time over total baseline time
  // for the whole mixed-batch query stream, i.e. the overhead a CMS
  // decision round actually pays.
  const double overhead_pct =
      sum_baseline > 0.0
          ? (sum_instrumented - sum_baseline) / sum_baseline * 100.0
          : 0.0;
  const bool within_target =
      std::all_of(points.begin(), points.end(),
                  [](const BatchPoint& p) { return p.within_target(); });
  std::cout << "\nprediction path: baseline "
            << Fixed(sum_baseline / 1000.0) << " us, instrumented "
            << Fixed(sum_instrumented / 1000.0) << " us per mixed sweep -> "
            << Fixed(overhead_pct, 2)
            << "% overhead (target per batch: <" << Fixed(kMaxOverheadPct, 0)
            << "% or <" << Fixed(kMaxOverheadNs, 0) << " ns): "
            << (within_target ? "OK" : "OVER") << "\n\n";

  // Primitive costs, for localizing a regression.
  std::vector<Primitive> primitives;
  {
    obs::Counter counter;
    primitives.push_back(
        {"counter_increment",
         TimePrimitive(1 << 20, [&] { counter.Increment(); })});
    obs::Gauge gauge;
    double x = 0.0;
    primitives.push_back(
        {"gauge_set", TimePrimitive(1 << 20, [&] { gauge.Set(x += 1.0); })});
    obs::Histogram hist;
    primitives.push_back(
        {"histogram_observe",
         TimePrimitive(1 << 20, [&] { hist.Observe(1.5e-4); })});
    primitives.push_back({"scoped_timer_disabled", TimePrimitive(1 << 20, [] {
                            obs::ScopedTimer timer(nullptr);
                          })});
    primitives.push_back({"scoped_timer_active", TimePrimitive(1 << 18, [&] {
                            obs::ScopedTimer timer(&hist);
                          })});
    obs::Tracer tracer(256);
    primitives.push_back({"trace_span", TimePrimitive(1 << 16, [&] {
                            obs::Span span(&tracer, "bench", nullptr);
                          })});
    // A scrape over a registry the size of the full serving plane's.
    obs::Registry registry;
    std::vector<obs::Registration> handles;
    std::vector<obs::Counter> counters(40);
    for (std::size_t i = 0; i < counters.size(); ++i) {
      handles.push_back(registry.RegisterCounter(
          "tipsy_bench_counter_" + std::to_string(i), "", &counters[i]));
    }
    handles.push_back(
        registry.RegisterHistogram("tipsy_bench_latency", "", &hist));
    primitives.push_back({"registry_scrape_prometheus",
                          TimePrimitive(1 << 10, [&] {
                            g_sink += static_cast<double>(
                                registry.RenderPrometheusText().size());
                          })});
  }
  util::TextTable prim_table({"Primitive", "ns/op"});
  for (const auto& p : primitives) {
    prim_table.AddRow({p.name, Fixed(p.ns_per_op, 1)});
  }
  prim_table.Print(std::cout);

  std::vector<std::vector<std::string>> csv{
      {"batch", "queries", "baseline_ns", "instrumented_ns", "overhead_pct",
       "within_target"}};
  for (const auto& p : points) {
    csv.push_back({std::to_string(p.batch), std::to_string(p.queries),
                   Fixed(p.baseline_ns, 1), Fixed(p.instrumented_ns, 1),
                   Fixed(p.overhead_pct(), 2),
                   p.within_target() ? "true" : "false"});
  }
  csv.push_back({"primitive", "ns_per_op", "", "", "", ""});
  for (const auto& p : primitives) {
    csv.push_back({p.name, Fixed(p.ns_per_op, 1), "", "", "", ""});
  }
  bench::WriteCsv("bench_obs", csv);

  std::ofstream json("BENCH_obs.json");
  if (json) {
    json << "{\n  \"bench\": \"obs_overhead\",\n";
    json << "  \"mode\": \"" << mode << "\",\n";
    // Smoke runs are too noisy for the overhead targets; the checker
    // only enforces within_target when "small" is false.
    json << "  \"small\": " << (options.small ? "true" : "false") << ",\n";
    json << "  \"hardware_concurrency\": " << bench::HardwareConcurrency()
         << ",\n";
    json << "  \"queries\": " << total_queries << ",\n";
    json << "  \"prediction_path\": {\"baseline_ns_per_query\": "
         << Fixed(sum_baseline / static_cast<double>(total_queries / 2), 1)
         << ", \"instrumented_ns_per_query\": "
         << Fixed(sum_instrumented / static_cast<double>(total_queries / 2),
                  1)
         << ", \"overhead_pct\": " << Fixed(overhead_pct, 2)
         << ", \"within_target\": " << (within_target ? "true" : "false")
         << "},\n";
    json << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      json << "    {\"batch\": " << p.batch << ", \"queries\": " << p.queries
           << ", \"baseline_ns\": "
           << Fixed(p.baseline_ns, 1) << ", \"instrumented_ns\": "
           << Fixed(p.instrumented_ns, 1) << ", \"overhead_pct\": "
           << Fixed(p.overhead_pct(), 2) << ", \"within_target\": "
           << (p.within_target() ? "true" : "false") << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"primitives\": [\n";
    for (std::size_t i = 0; i < primitives.size(); ++i) {
      json << "    {\"name\": \"" << primitives[i].name
           << "\", \"ns_per_op\": " << Fixed(primitives[i].ns_per_op, 1)
           << "}" << (i + 1 < primitives.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_obs.json\n";
  }

  if (!within_target) {
    std::cout << "note: overhead above target on this run; CI validates "
                 "the committed artifact, not this machine's timing.\n";
  }
  (void)g_sink;
  return 0;
}
