// Tables 13 and 14 (Appendix D): the January 2021 period - a best-case
// window in which every outage seen while testing had also been seen
// during training. Model accuracy lands almost on top of the oracle.
//
// We reproduce the *condition*: an outage process dominated by repeat
// offenders (all-flappy links, higher repeat rate), so test outages are
// almost always "seen". The tables then show models ~= oracles, as in the
// paper.
#include <iostream>

#include "bench_common.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("table13_14_january",
                     "Tables 13/14 - January best-case period");

  auto cfg = bench::FullScenario(options);
  cfg.seed += 202101;
  cfg.topology.seed = cfg.seed;
  cfg.traffic.seed = cfg.seed + 1;
  cfg.ipfix.seed = cfg.seed + 3;
  // Outages dominated by chronic repeat offenders: almost every link that
  // fails in the test week also failed during training.
  cfg.outages.seed = cfg.seed + 2;
  cfg.outages.flappy_fraction = 0.10;
  cfg.outages.flappy_rate_per_year = 45.0;
  cfg.outages.rate_per_link_per_year = 0.3;
  scenario::Scenario world(cfg);

  const auto experiment =
      scenario::RunExperiment(world, scenario::PaperWindows());
  const double total =
      experiment.seen_outage_bytes + experiment.unseen_outage_bytes;
  if (total > 0.0) {
    std::cout << "seen-outage share of outage-affected bytes: "
              << util::TextTable::Percent(experiment.seen_outage_bytes /
                                          total)
              << "% (paper: 100% in this period)\n";
  }

  std::cout << "Table 13 - overall prediction accuracy:\n";
  bench::PrintAccuracyTable(
      "table13_january_overall",
      scenario::EvaluateSuite(*experiment.tipsy, experiment.overall));

  std::cout << "\nTable 14 - prediction accuracy, all outages:\n";
  if (experiment.outage_all.empty()) {
    std::cout << "(no outage-affected flows this period)\n";
  } else {
    bench::PrintAccuracyTable(
        "table14_january_outages",
        scenario::EvaluateSuite(*experiment.tipsy, experiment.outage_all));
  }
  std::cout << "(paper: models nearly match the oracles in this best-case "
               "window)\n";
  return 0;
}
