#include "accuracy_bench.h"

int main(int argc, char** argv) {
  return tipsy::bench::RunAccuracyBench(
      argc, argv, tipsy::bench::AccuracySubset::kOutageUnseen, "table7_unseen",
      "Table 7 - accuracy for unseen outages");
}
