// Figure 11 (Appendix B.3): distribution of Hist_AL/AP/A accuracy across
// 28 models (each trained on the preceding 21 days, tested on 1 day, test
// days non-overlapping), broken out by outage class. Whiskers follow
// Tukey's definition, as in the paper.
#include <iostream>

#include "bench_common.h"
#include "scenario/row_cache.h"
#include "util/parallel.h"
#include "util/stats.h"

using namespace tipsy;

namespace {

void PrintBox(util::TextTable& table,
              std::vector<std::vector<std::string>>& csv,
              const std::string& label, std::vector<double> samples) {
  if (samples.empty()) {
    table.AddRow({label, "-", "-", "-", "-", "-"});
    return;
  }
  const auto box = util::MakeTukeyBox(std::move(samples));
  table.AddRow({label, util::TextTable::Percent(box.whisker_low),
                util::TextTable::Percent(box.q1),
                util::TextTable::Percent(box.median),
                util::TextTable::Percent(box.q3),
                util::TextTable::Percent(box.whisker_high)});
  csv.push_back({label, util::TextTable::Percent(box.whisker_low),
                 util::TextTable::Percent(box.q1),
                 util::TextTable::Percent(box.median),
                 util::TextTable::Percent(box.q3),
                 util::TextTable::Percent(box.whisker_high),
                 std::to_string(box.outliers.size())});
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("fig11_sensitivity",
                     "Figure 11 - accuracy of 28 daily models by outage "
                     "class (Tukey boxes)");

  auto cfg = bench::SweepScenario(options);
  const int kModels = options.small ? 10 : 28;
  const util::HourIndex span_days = 21 + kModels;
  cfg.horizon = util::HourRange{0, span_days * util::kHoursPerDay};
  scenario::Scenario world(cfg);
  scenario::RowCache cache(world, cfg.horizon);

  // The 28 daily models are independent; train and evaluate them on the
  // thread pool. A negative value marks "subset empty for this model";
  // folding in model order keeps the box statistics deterministic.
  struct Sample {
    double overall3 = -1.0;
    double outage3 = -1.0;
    double seen3 = -1.0;
    double unseen3 = -1.0;
  };
  const auto samples = util::ParallelMap(
      static_cast<std::size_t>(kModels), [&](std::size_t m) {
        const util::HourIndex test_start =
            (21 + static_cast<util::HourIndex>(m)) * util::kHoursPerDay;
        scenario::ExperimentConfig exp;
        exp.train = util::HourRange{test_start - 21 * util::kHoursPerDay,
                                    test_start};
        exp.test =
            util::HourRange{test_start, test_start + util::kHoursPerDay};
        const auto result = scenario::RunExperiment(cache, exp);
        const auto* model = result.tipsy->Find("Hist_AL/AP/A");
        Sample sample;
        sample.overall3 =
            core::EvaluateModel(*model, result.overall).top3();
        if (!result.outage_all.empty()) {
          sample.outage3 =
              core::EvaluateModel(*model, result.outage_all).top3();
        }
        if (!result.outage_seen.empty()) {
          sample.seen3 =
              core::EvaluateModel(*model, result.outage_seen).top3();
        }
        if (!result.outage_unseen.empty()) {
          sample.unseen3 =
              core::EvaluateModel(*model, result.outage_unseen).top3();
        }
        return sample;
      });
  std::vector<double> overall3, outage3, seen3, unseen3;
  for (const Sample& sample : samples) {
    overall3.push_back(sample.overall3);
    if (sample.outage3 >= 0.0) outage3.push_back(sample.outage3);
    if (sample.seen3 >= 0.0) seen3.push_back(sample.seen3);
    if (sample.unseen3 >= 0.0) unseen3.push_back(sample.unseen3);
  }

  util::TextTable table({"Subset (top-3 accuracy)", "whisker lo", "Q1",
                         "median", "Q3", "whisker hi"});
  std::vector<std::vector<std::string>> csv{
      {"subset", "whisker_lo", "q1", "median", "q3", "whisker_hi",
       "outliers"}};
  PrintBox(table, csv, "overall", std::move(overall3));
  PrintBox(table, csv, "all outages", std::move(outage3));
  PrintBox(table, csv, "seen outages", std::move(seen3));
  PrintBox(table, csv, "unseen outages", std::move(unseen3));
  table.Print(std::cout);
  bench::WriteCsv("fig11_sensitivity", csv);
  std::cout << "(paper: overall tight and high; outage subsets lower with "
               "much wider spread, unseen the widest)\n";
  return 0;
}
