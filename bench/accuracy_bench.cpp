#include "accuracy_bench.h"

#include <iostream>

namespace tipsy::bench {

int RunAccuracyBench(int argc, char** argv, AccuracySubset subset,
                     const std::string& name,
                     const std::string& paper_ref) {
  const auto options = BenchOptions::Parse(argc, argv);
  PrintHeader(name, paper_ref);

  scenario::Scenario world(FullScenario(options));
  auto experiment = scenario::RunExperiment(world, scenario::PaperWindows());

  const core::EvalSet* eval = nullptr;
  switch (subset) {
    case AccuracySubset::kOverall: eval = &experiment.overall; break;
    case AccuracySubset::kOutageAll: eval = &experiment.outage_all; break;
    case AccuracySubset::kOutageSeen: eval = &experiment.outage_seen; break;
    case AccuracySubset::kOutageUnseen:
      eval = &experiment.outage_unseen;
      break;
  }
  std::cout << "scenario: " << world.wan().link_count() << " peering links, "
            << world.workload().flows().size() << " flow aggregates; "
            << "train outages inferred: " << experiment.train_outages.size()
            << ", test outages inferred: " << experiment.test_outages.size()
            << "\n";
  if (subset != AccuracySubset::kOverall) {
    const double total = experiment.seen_outage_bytes +
                         experiment.unseen_outage_bytes;
    if (total > 0.0) {
      std::cout << "outage-affected bytes: "
                << util::TextTable::Percent(
                       experiment.unseen_outage_bytes / total)
                << "% from unseen outages (paper: ~57%)\n";
    }
  }
  if (eval->empty()) {
    std::cout << "(no evaluation cases in this subset - try another seed)\n";
    return 0;
  }
  PrintAccuracyTable(name,
                     scenario::EvaluateSuite(*experiment.tipsy, *eval));
  return 0;
}

}  // namespace tipsy::bench
