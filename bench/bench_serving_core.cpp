// Serving-core bench: raw PredictShift speed of the flat-table backend
// versus the legacy node-based hash map, plus the cost of the epoch swap
// primitives the retrainer uses to publish a new model.
//
// Not a paper table. PR 6 rebuilds the historical models' serving path on
// FlatTupleTable (open-addressing, interned keys, contiguous ranked-link
// arenas) and batches PredictShift; the acceptance bar is a sub-75 ns/query
// single-threaded serving core (stretch: sub-50) and at least 2x over the
// 149.2 ns/query recorded by BENCH_obs.json before the rewrite. Both
// backends are trained from the identical row stream (their predictions are
// bit-identical by construction - tests/serving_core_test.cpp asserts it),
// queried through PredictShiftNoMetrics in alternating min-of-rounds lanes
// so scheduler noise cannot inflate one side only, and summarized with the
// same queries-weighted average BENCH_obs.json uses, so the headline
// numbers are directly comparable.
//
// Also reported: ModelEpoch acquire/publish cost (the retrainer's
// lock-free handoff) and the flat tables' one-time build cost.
//
// Writes results/bench_serving_core.csv and BENCH_serving.json in the
// working directory. Always exits 0: targets are asserted by CI over the
// committed artifact, not by this binary racing the machine it runs on.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/online.h"
#include "core/tipsy_service.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace tipsy;

namespace {

std::string Fixed(double v, int digits = 1) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

struct BatchPoint {
  std::size_t batch = 0;        // flows per PredictShift query
  std::size_t queries = 0;      // timed queries per round
  double legacy_ns = 0.0;       // min-of-rounds, per query
  double flat_ns = 0.0;         // min-of-rounds, per query
  [[nodiscard]] double speedup() const {
    return flat_ns > 0.0 ? legacy_ns / flat_ns : 0.0;
  }
};

// Keeps results observable so the optimizer cannot delete a timed loop.
double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  const int rounds = options.small ? 5 : 9;
  const std::size_t target_queries_per_round = options.small ? 2000 : 20000;

  bench::PrintHeader("bench_serving_core",
                     "flat-table serving core vs legacy hash map; no paper "
                     "table - PR 6 acceptance (sub-75 ns/query, 2x vs the "
                     "149.2 ns/query recorded before the rewrite)");
#ifdef TIPSY_NO_OBS
  const std::string mode = "no_obs";
#else
  const std::string mode = "obs";
#endif
  const unsigned cores = bench::HardwareConcurrency();
  std::cout << "build mode: " << mode << ", hardware_concurrency " << cores
            << "\n\n";

  // Two services trained from the identical row stream: the only
  // difference is what Finalize() builds the serving lookups on.
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 300 : 900;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  scenario::Scenario world(cfg);
  core::TipsyConfig flat_cfg;
  flat_cfg.serving_backend = core::ServingBackend::kFlat;
  core::TipsyConfig legacy_cfg;
  legacy_cfg.serving_backend = core::ServingBackend::kLegacyMap;
  core::TipsyService flat_service(&world.wan(), &world.metros(), flat_cfg);
  core::TipsyService legacy_service(&world.wan(), &world.metros(),
                                    legacy_cfg);
  std::vector<core::TipsyService::ShiftQueryFlow> flow_pool;
  world.SimulateHours(
      {0, 7 * util::kHoursPerDay},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        flat_service.Train(rows);
        legacy_service.Train(rows);
        for (const auto& row : rows) {
          if (flow_pool.size() >= 4096) continue;
          flow_pool.push_back(core::TipsyService::ShiftQueryFlow{
              core::FlowFeatures{row.src_asn, row.src_prefix24,
                                 row.src_metro, row.dest_region,
                                 row.dest_service},
              static_cast<double>(row.bytes)});
        }
      });
  flat_service.FinalizeTraining();
  legacy_service.FinalizeTraining();
  std::cout << "trained over 7 days, query pool " << flow_pool.size()
            << " flows, "
            << flat_service.hist(core::FeatureSet::kAL).tuple_count()
            << " AL tuples\n\n";

  const core::ExclusionMask excluded(world.wan().link_count(), false);
  const std::vector<std::size_t> batch_sizes{1, 4, 16, 64};

  std::vector<BatchPoint> points;
  std::size_t total_queries = 0;
  for (const std::size_t batch : batch_sizes) {
    BatchPoint point;
    point.batch = batch;
    point.queries =
        std::max<std::size_t>(target_queries_per_round / batch, 64);
    point.legacy_ns = point.flat_ns = 1e18;

    // Alternate the two backends inside every round: slow drift (thermal,
    // scheduler) hits both sides equally, and min-of-rounds drops the
    // noisy outliers.
    for (int round = 0; round < rounds; ++round) {
      const std::size_t cursor = static_cast<std::size_t>(round);
      const std::uint64_t b0 = obs::NowNanos();
      for (std::size_t q = 0; q < point.queries; ++q) {
        const std::size_t at = (cursor + q * batch) % flow_pool.size();
        const std::size_t take = std::min(batch, flow_pool.size() - at);
        const auto result = legacy_service.PredictShiftNoMetrics(
            std::span(flow_pool.data() + at, take), excluded, 3);
        g_sink += result.unpredicted_bytes +
                  static_cast<double>(result.shifted.size());
      }
      const std::uint64_t b1 = obs::NowNanos();
      for (std::size_t q = 0; q < point.queries; ++q) {
        const std::size_t at = (cursor + q * batch) % flow_pool.size();
        const std::size_t take = std::min(batch, flow_pool.size() - at);
        const auto result = flat_service.PredictShiftNoMetrics(
            std::span(flow_pool.data() + at, take), excluded, 3);
        g_sink += result.unpredicted_bytes +
                  static_cast<double>(result.shifted.size());
      }
      const std::uint64_t b2 = obs::NowNanos();
      point.legacy_ns = std::min(
          point.legacy_ns,
          static_cast<double>(b1 - b0) / static_cast<double>(point.queries));
      point.flat_ns = std::min(
          point.flat_ns,
          static_cast<double>(b2 - b1) / static_cast<double>(point.queries));
    }
    total_queries += point.queries * static_cast<std::size_t>(rounds) * 2;
    points.push_back(point);
  }

  util::TextTable table({"Batch", "Queries/round", "Legacy ns/q",
                         "Flat ns/q", "Flat ns/flow", "Speedup"});
  double sum_legacy = 0.0, sum_flat = 0.0;
  for (const auto& p : points) {
    sum_legacy += p.legacy_ns * static_cast<double>(p.queries);
    sum_flat += p.flat_ns * static_cast<double>(p.queries);
    table.AddRow({std::to_string(p.batch), std::to_string(p.queries),
                  Fixed(p.legacy_ns), Fixed(p.flat_ns),
                  Fixed(p.flat_ns / static_cast<double>(p.batch)),
                  Fixed(p.speedup(), 2) + "x"});
  }
  table.Print(std::cout);

  // The headline numbers replicate BENCH_obs.json's prediction_path
  // formula exactly - sum of (min-of-rounds ns x queries/round) over the
  // batch mix, divided by half the total query count - so "flat ns/query"
  // here is directly comparable to the 149.2 ns/query that file recorded
  // before the serving-core rewrite (same batch mix, rounds, and query
  // counts in full mode).
  constexpr double kRecordedBaselineNs = 149.2;
  constexpr double kTargetNs = 75.0;
  const double legacy_ns =
      sum_legacy / static_cast<double>(total_queries / 2);
  const double flat_ns = sum_flat / static_cast<double>(total_queries / 2);
  const double speedup = flat_ns > 0.0 ? legacy_ns / flat_ns : 0.0;
  const double speedup_vs_recorded =
      flat_ns > 0.0 ? kRecordedBaselineNs / flat_ns : 0.0;
  const bool within_target = flat_ns < kTargetNs;
  std::cout << "\nserving core: legacy " << Fixed(legacy_ns)
            << " ns/query, flat " << Fixed(flat_ns) << " ns/query -> "
            << Fixed(speedup, 2) << "x (vs recorded "
            << Fixed(kRecordedBaselineNs) << ": "
            << Fixed(speedup_vs_recorded, 2) << "x; target <"
            << Fixed(kTargetNs, 0)
            << " ns: " << (within_target ? "OK" : "OVER") << ")\n\n";

  // Epoch swap primitives: what a reader pays to pin the current model,
  // and what the retrainer pays to publish a new one. Plus the one-time
  // flat table build cost the publish amortizes away from the hot path.
  core::ModelEpoch epoch;
  auto published = std::make_shared<core::TipsyService>(
      &world.wan(), &world.metros(), flat_cfg);
  epoch.Publish(published);
  const std::size_t acquire_ops = 1 << 18;
  const std::uint64_t a0 = obs::NowNanos();
  for (std::size_t i = 0; i < acquire_ops; ++i) {
    g_sink += epoch.Acquire() != nullptr ? 1.0 : 0.0;
  }
  const double acquire_ns = static_cast<double>(obs::NowNanos() - a0) /
                            static_cast<double>(acquire_ops);
  const std::size_t publish_ops = 1 << 12;
  const std::uint64_t p0 = obs::NowNanos();
  for (std::size_t i = 0; i < publish_ops; ++i) epoch.Publish(published);
  const double publish_ns = static_cast<double>(obs::NowNanos() - p0) /
                            static_cast<double>(publish_ops);

  double build_ns = 0.0;
  std::size_t flat_tuples = 0, flat_bytes = 0, max_probe = 0;
  for (const auto fs : {core::FeatureSet::kA, core::FeatureSet::kAP,
                        core::FeatureSet::kAL}) {
    const core::FlatTupleTable* t = flat_service.hist(fs).flat_table();
    if (t == nullptr) continue;
    build_ns += static_cast<double>(t->build_ns());
    flat_tuples += t->size();
    flat_bytes += t->MemoryFootprintBytes();
    max_probe = std::max(max_probe, t->max_probe_length());
  }
  util::TextTable epoch_table({"Epoch primitive", "ns/op"});
  epoch_table.AddRow({"acquire (reader pin)", Fixed(acquire_ns, 1)});
  epoch_table.AddRow({"publish (retrainer swap)", Fixed(publish_ns, 1)});
  epoch_table.AddRow({"flat tables build (one-time, us)",
                      Fixed(build_ns / 1000.0, 1)});
  epoch_table.Print(std::cout);
  std::cout << "flat tables: " << flat_tuples << " tuples, "
            << flat_bytes / 1024 << " KiB, max probe " << max_probe << "\n";

  std::vector<std::vector<std::string>> csv{
      {"backend", "batch", "queries", "ns_per_query", "ns_per_flow"}};
  for (const auto& p : points) {
    csv.push_back({"legacy", std::to_string(p.batch),
                   std::to_string(p.queries), Fixed(p.legacy_ns, 1),
                   Fixed(p.legacy_ns / static_cast<double>(p.batch), 1)});
    csv.push_back({"flat", std::to_string(p.batch),
                   std::to_string(p.queries), Fixed(p.flat_ns, 1),
                   Fixed(p.flat_ns / static_cast<double>(p.batch), 1)});
  }
  bench::WriteCsv("bench_serving_core", csv);

  std::ofstream json("BENCH_serving.json");
  if (json) {
    json << "{\n  \"bench\": \"serving_core\",\n";
    json << "  \"mode\": \"" << mode << "\",\n";
    // The ns targets only bind for full runs: the BENCH_obs-comparable
    // metric bakes in the full-mode round count, so smoke (--small)
    // artifacts are schema-checked but not target-gated.
    json << "  \"small\": " << (options.small ? "true" : "false") << ",\n";
    json << "  \"hardware_concurrency\": " << cores << ",\n";
    json << "  \"queries\": " << total_queries << ",\n";
    json << "  \"prediction_path\": {\"legacy_ns_per_query\": "
         << Fixed(legacy_ns, 1) << ", \"flat_ns_per_query\": "
         << Fixed(flat_ns, 1) << ", \"speedup\": " << Fixed(speedup, 2)
         << ", \"recorded_baseline_ns_per_query\": "
         << Fixed(kRecordedBaselineNs, 1) << ", \"speedup_vs_recorded\": "
         << Fixed(speedup_vs_recorded, 2)
         << ", \"target_ns_per_query\": " << Fixed(kTargetNs, 0)
         << ", \"within_target\": " << (within_target ? "true" : "false")
         << "},\n";
    json << "  \"epoch\": {\"acquire_ns\": " << Fixed(acquire_ns, 1)
         << ", \"publish_ns\": " << Fixed(publish_ns, 1)
         << ", \"flat_build_us\": " << Fixed(build_ns / 1000.0, 1)
         << ", \"flat_tuples\": " << flat_tuples
         << ", \"flat_table_bytes\": " << flat_bytes
         << ", \"max_probe\": " << max_probe << "},\n";
    json << "  \"points\": [\n";
    bool first = true;
    for (const auto& p : points) {
      for (const char* backend : {"legacy", "flat"}) {
        const double ns =
            backend == std::string("legacy") ? p.legacy_ns : p.flat_ns;
        if (!first) json << ",\n";
        first = false;
        json << "    {\"backend\": \"" << backend
             << "\", \"batch\": " << p.batch
             << ", \"queries\": " << p.queries
             << ", \"ns_per_query\": " << Fixed(ns, 1)
             << ", \"ns_per_flow\": "
             << Fixed(ns / static_cast<double>(p.batch), 1) << "}";
      }
    }
    json << "\n  ]\n}\n";
    std::cout << "\nwrote BENCH_serving.json\n";
  }

  if (!within_target) {
    std::cout << "note: flat path above target on this run; CI validates "
                 "the committed artifact, not this machine's timing.\n";
  }
  (void)g_sink;
  return 0;
}
