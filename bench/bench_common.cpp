#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

namespace tipsy::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      opt.small = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  // The test driver can also force small mode through the environment.
  if (std::getenv("TIPSY_BENCH_SMALL") != nullptr) opt.small = true;
  return opt;
}

scenario::ScenarioConfig FullScenario(const BenchOptions& opt) {
  auto cfg = opt.small ? scenario::TinyScenarioConfig()
                       : scenario::DefaultScenarioConfig();
  if (opt.small) {
    cfg.traffic.flow_target = 2500;
    cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  }
  if (opt.seed != 0) {
    cfg.seed = cfg.topology.seed = opt.seed;
    cfg.traffic.seed = opt.seed + 1;
    cfg.outages.seed = opt.seed + 2;
    cfg.ipfix.seed = opt.seed + 3;
  }
  return cfg;
}

scenario::ScenarioConfig SweepScenario(const BenchOptions& opt) {
  auto cfg = FullScenario(opt);
  if (!opt.small) {
    cfg.traffic.flow_target = 6000;
    cfg.topology.access_isp_count = 90;
    cfg.topology.enterprise_count = 150;
  }
  return cfg;
}

void PrintHeader(const std::string& name, const std::string& paper_ref) {
  std::cout << "\n=== " << name << " (paper " << paper_ref << ") ===\n";
}

unsigned HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void WriteCsv(const std::string& name,
              const std::vector<std::vector<std::string>>& rows) {
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  std::ofstream out("results/" + name + ".csv");
  if (!out) {
    std::cerr << "warning: cannot write results/" << name << ".csv\n";
    return;
  }
  util::CsvWriter csv(out);
  for (const auto& row : rows) csv.Row(row);
}

void PrintAccuracyTable(const std::string& name,
                        const std::vector<scenario::ModelAccuracy>& rows) {
  util::TextTable table({"Model", "Top 1 %", "Top 2 %", "Top 3 %"});
  std::vector<std::vector<std::string>> csv{
      {"model", "top1_pct", "top2_pct", "top3_pct"}};
  for (const auto& row : rows) {
    const auto r = std::vector<std::string>{
        row.model, util::TextTable::Percent(row.accuracy.top1()),
        util::TextTable::Percent(row.accuracy.top2()),
        util::TextTable::Percent(row.accuracy.top3())};
    table.AddRow(r);
    csv.push_back(r);
  }
  table.Print(std::cout);
  WriteCsv(name, csv);
}

}  // namespace tipsy::bench
