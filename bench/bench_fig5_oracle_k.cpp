// Figure 5: prediction accuracy of the oracle as a function of the number
// of ingress links it may predict (k), for the A / AP / AL tuple
// granularities. The paper picks k = 3 because Oracle_AP / Oracle_AL reach
// ~97% there, and it climbs to 100% as k grows unrestricted.
#include <iostream>

#include "bench_common.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("fig5_oracle_k",
                     "Figure 5 - oracle accuracy vs. number of links k");

  scenario::Scenario world(bench::FullScenario(options));
  const auto experiment =
      scenario::RunExperiment(world, scenario::PaperWindows());

  constexpr std::size_t kMaxK = 12;
  const auto a =
      core::OracleAccuracyByK(core::FeatureSet::kA, experiment.overall,
                              kMaxK);
  const auto ap =
      core::OracleAccuracyByK(core::FeatureSet::kAP, experiment.overall,
                              kMaxK);
  const auto al =
      core::OracleAccuracyByK(core::FeatureSet::kAL, experiment.overall,
                              kMaxK);

  util::TextTable table({"k", "Oracle_A %", "Oracle_AP %", "Oracle_AL %"});
  std::vector<std::vector<std::string>> csv{
      {"k", "oracle_a_pct", "oracle_ap_pct", "oracle_al_pct"}};
  for (std::size_t k = 1; k <= kMaxK; ++k) {
    const auto row = std::vector<std::string>{
        std::to_string(k), util::TextTable::Percent(a[k - 1]),
        util::TextTable::Percent(ap[k - 1]),
        util::TextTable::Percent(al[k - 1])};
    table.AddRow(row);
    csv.push_back(row);
  }
  table.Print(std::cout);
  bench::WriteCsv("fig5_oracle_k", csv);
  std::cout << "(paper: k=1 in 65-85%, k=3 ~97% for AP/AL, -> 100% "
               "unrestricted)\n";
  return 0;
}
