// Figure 6: earliest time in a calendar year that each peering link was
// observed down (inferred from IPFIX zero-byte hours, like the paper). The
// rate of first-time outages grows almost linearly over the year, covering
// ~80% of active links by the end.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "pipeline/link_hour.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("fig6_outage_first",
                     "Figure 6 - earliest day a peering link was down");

  // A year of telemetry with a lighter workload: outage inference only
  // needs enough traffic for links to be visibly active.
  auto cfg = bench::FullScenario(options);
  cfg.traffic.flow_target = options.small ? 1200 : 4000;
  cfg.horizon = util::HourRange{0, 365 * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  pipeline::LinkHourTable table(world.wan().link_count());
  world.SimulateHours(
      cfg.horizon,
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          table.AddBytes(row.link, hour, static_cast<double>(row.bytes));
        }
      });
  const auto outages = pipeline::InferOutages(table, cfg.horizon);

  // Count active links (carried bytes at least once).
  std::size_t active_links = 0;
  std::vector<bool> active(world.wan().link_count(), false);
  for (std::uint32_t l = 0; l < world.wan().link_count(); ++l) {
    for (util::HourIndex h = 0; h < cfg.horizon.end && !active[l];
         h += 24) {
      if (table.Bytes(util::LinkId{l}, h) > 0.0) active[l] = true;
    }
    if (active[l]) ++active_links;
  }

  std::map<std::uint32_t, util::HourIndex> first_down;
  for (const auto& outage : outages) {
    auto [it, inserted] =
        first_down.try_emplace(outage.link.value(), outage.hours.begin);
    if (!inserted) it->second = std::min(it->second, outage.hours.begin);
  }
  std::map<util::HourIndex, std::size_t> by_day;
  for (const auto& [link, hour] : first_down) {
    ++by_day[util::DayIndex(hour)];
  }

  util::TextTable out({"Day of year", "Links with first outage",
                       "Cumulative % of active links"});
  std::vector<std::vector<std::string>> csv{
      {"day", "new_first_outages", "cumulative_pct"}};
  std::size_t cumulative = 0;
  for (const auto& [day, count] : by_day) {
    cumulative += count;
    if (day % 30 == 0 || day == by_day.rbegin()->first) {
      out.AddRow({std::to_string(day), std::to_string(count),
                  util::TextTable::Percent(
                      static_cast<double>(cumulative) /
                      static_cast<double>(active_links))});
    }
    csv.push_back({std::to_string(day), std::to_string(count),
                   util::TextTable::Percent(
                       static_cast<double>(cumulative) /
                       static_cast<double>(active_links))});
  }
  out.Print(std::cout);
  bench::WriteCsv("fig6_outage_first", csv);
  std::cout << "final coverage: "
            << util::TextTable::Percent(static_cast<double>(cumulative) /
                                        static_cast<double>(active_links))
            << "% of " << active_links
            << " active links (paper: ~80%, near-linear growth)\n";
  return 0;
}
