#include "accuracy_bench.h"

int main(int argc, char** argv) {
  return tipsy::bench::RunAccuracyBench(
      argc, argv, tipsy::bench::AccuracySubset::kOverall, "table4_overall",
      "Table 4 - overall prediction accuracy");
}
