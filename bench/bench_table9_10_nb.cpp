// Tables 9 and 10 (Appendix A): Naive Bayes baselines vs the historical
// models on an older period - overall accuracy and accuracy under link
// outages. The paper's conclusion: NB top-3 is decent but consistently
// inferior to the historical models while being far more expensive to
// query; the Hist_AL/NB_AL ensemble buys a little extra coverage.
#include <iostream>

#include "bench_common.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("table9_10_nb",
                     "Tables 9/10 - Naive Bayes vs historical models");

  // "Older data": same world family, different period seed (the paper used
  // October 2020 here vs November 2021 for the main tables).
  auto cfg = bench::SweepScenario(options);
  cfg.seed += 2020;
  cfg.topology.seed = cfg.seed;
  cfg.traffic.seed = cfg.seed + 1;
  cfg.outages.seed = cfg.seed + 2;
  cfg.ipfix.seed = cfg.seed + 3;
  scenario::Scenario world(cfg);

  auto exp_cfg = scenario::PaperWindows();
  exp_cfg.tipsy.train_naive_bayes = true;
  const auto experiment = scenario::RunExperiment(world, exp_cfg);

  std::cout << "Table 9 - overall prediction accuracy:\n";
  bench::PrintAccuracyTable(
      "table9_nb_overall",
      scenario::EvaluateSuite(*experiment.tipsy, experiment.overall));

  std::cout << "\nTable 10 - prediction accuracy, all outages:\n";
  if (experiment.outage_all.empty()) {
    std::cout << "(no outage-affected flows this period)\n";
  } else {
    bench::PrintAccuracyTable(
        "table10_nb_outages",
        scenario::EvaluateSuite(*experiment.tipsy, experiment.outage_all));
  }
  std::cout << "(paper: NB < Hist everywhere; NB_AL < Hist_AL by ~1-9 "
               "points; ensembles on top)\n";
  return 0;
}
