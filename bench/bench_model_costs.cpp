// Tables 3 and 11: training / prediction / memory costs of the models.
//
// google-benchmark microbenchmarks verify the complexity claims: O(n)
// single-pass training and O(1) lookup prediction for the historical
// models; O(l log l)-per-query prediction for Naive Bayes (scan + sort
// over all classes), which is why NB is orders of magnitude slower to
// query. Memory footprints are printed per model after training.
#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "core/historical.h"
#include "core/naive_bayes.h"
#include "util/rng.h"

using namespace tipsy;

namespace {

// Synthetic aggregated rows with realistic cardinalities.
std::vector<pipeline::AggRow> MakeRows(std::size_t n, std::size_t links,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<pipeline::AggRow> rows;
  rows.reserve(n);
  const std::size_t asns = std::max<std::size_t>(64, n / 64);
  const std::size_t prefixes = std::max<std::size_t>(256, n / 4);
  for (std::size_t i = 0; i < n; ++i) {
    pipeline::AggRow row;
    row.hour = static_cast<util::HourIndex>(rng.NextBelow(24));
    row.link = util::LinkId{
        static_cast<std::uint32_t>(rng.NextBelow(links))};
    row.src_asn = util::AsId{
        static_cast<std::uint32_t>(100 + rng.NextBelow(asns))};
    row.src_prefix24 = util::Ipv4Prefix(
        util::Ipv4Addr(static_cast<std::uint32_t>(
            (1 + rng.NextBelow(prefixes)) << 8)),
        24);
    row.src_metro = util::MetroId{
        static_cast<std::uint32_t>(rng.NextBelow(60))};
    row.dest_region = util::RegionId{
        static_cast<std::uint32_t>(rng.NextBelow(28))};
    row.dest_service = static_cast<wan::ServiceType>(rng.NextBelow(8));
    row.dest_prefix = util::PrefixId{
        static_cast<std::uint32_t>(rng.NextBelow(48))};
    row.bytes = 1000 + rng.NextBelow(1'000'000);
    rows.push_back(row);
  }
  return rows;
}

core::FlowFeatures FlowOf(const pipeline::AggRow& row) {
  return core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service};
}

void BM_HistoricalTrain(benchmark::State& state) {
  const auto feature_set = static_cast<core::FeatureSet>(state.range(0));
  const auto rows = MakeRows(static_cast<std::size_t>(state.range(1)),
                             /*links=*/1000, 7);
  for (auto _ : state) {
    core::HistoricalModel model(feature_set);
    for (const auto& row : rows) model.Add(row);
    model.Finalize();
    benchmark::DoNotOptimize(model.tuple_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows.size()) *
                          state.iterations());
}

void BM_HistoricalPredict(benchmark::State& state) {
  const auto feature_set = static_cast<core::FeatureSet>(state.range(0));
  const auto rows = MakeRows(1 << 16, /*links=*/1000, 7);
  core::HistoricalModel model(feature_set);
  for (const auto& row : rows) model.Add(row);
  model.Finalize();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto predictions = model.Predict(FlowOf(rows[i]), 3, nullptr);
    benchmark::DoNotOptimize(predictions.data());
    i = (i + 4099) % rows.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NaiveBayesTrain(benchmark::State& state) {
  const auto feature_set = static_cast<core::FeatureSet>(state.range(0));
  const auto rows = MakeRows(static_cast<std::size_t>(state.range(1)),
                             /*links=*/1000, 7);
  for (auto _ : state) {
    core::NaiveBayesModel model(feature_set);
    for (const auto& row : rows) model.Add(row);
    model.Finalize();
    benchmark::DoNotOptimize(model.class_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rows.size()) *
                          state.iterations());
}

// Prediction cost scales with the number of classes (peering links).
void BM_NaiveBayesPredict(benchmark::State& state) {
  const auto links = static_cast<std::size_t>(state.range(0));
  const auto rows = MakeRows(1 << 15, links, 7);
  core::NaiveBayesModel model(core::FeatureSet::kAL);
  for (const auto& row : rows) model.Add(row);
  model.Finalize();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto predictions = model.Predict(FlowOf(rows[i]), 3, nullptr);
    benchmark::DoNotOptimize(predictions.data());
    i = (i + 4099) % rows.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["classes"] = static_cast<double>(model.class_count());
}

void PrintModelSizes() {
  const auto rows = MakeRows(1 << 17, 1000, 7);
  std::cout << "\nModel memory footprints after training on "
            << rows.size() << " rows (Table 3 / Table 11 shapes):\n";
  for (const auto feature_set :
       {core::FeatureSet::kA, core::FeatureSet::kAP, core::FeatureSet::kAL}) {
    core::HistoricalModel model(feature_set);
    for (const auto& row : rows) model.Add(row);
    model.Finalize();
    std::cout << "  " << model.name() << ": " << model.tuple_count()
              << " tuples, ~" << model.MemoryFootprintBytes() / 1024
              << " KiB\n";
  }
  for (const auto feature_set : {core::FeatureSet::kA, core::FeatureSet::kAL}) {
    core::NaiveBayesModel model(feature_set);
    for (const auto& row : rows) model.Add(row);
    model.Finalize();
    std::cout << "  " << model.name() << ": " << model.class_count()
              << " classes, ~" << model.MemoryFootprintBytes() / 1024
              << " KiB\n";
  }
}

}  // namespace

BENCHMARK(BM_HistoricalTrain)
    ->ArgsProduct({{0, 1, 2}, {1 << 14, 1 << 16}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HistoricalPredict)->Args({0})->Args({1})->Args({2});
BENCHMARK(BM_NaiveBayesTrain)
    ->ArgsProduct({{0, 2}, {1 << 14, 1 << 16}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NaiveBayesPredict)
    ->Arg(125)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintModelSizes();
  return 0;
}
