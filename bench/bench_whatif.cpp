// What-if sweep bench: throughput and determinism of cms::WhatIfSimulator,
// the planning-side batch evaluator (docs/MODELING.md, "What-if
// simulation").
//
// Not a paper table. The simulator batch-sweeps candidate prefix
// withdrawals through the same PredictShift path the CMS trusts; its
// contract is that the ranked report list is bit-identical at any
// TIPSY_THREADS setting (one pool chunk per candidate, results written by
// index, each evaluation a pure function of model + rows + loads). This
// bench measures sweep latency across a thread sweep and asserts that
// contract: every multi-threaded run's reports must compare exactly equal
// (fields, spill lists, doubles to the bit) to the single-threaded
// reference. `bit_identical` is gated by CI even for --small artifacts -
// determinism does not depend on workload scale.
//
// Writes results/bench_whatif.csv and BENCH_whatif.json in the working
// directory. Always exits 0: CI validates the committed artifact.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cms/whatif.h"
#include "core/tipsy_service.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace tipsy;

namespace {

std::string Fixed(double v, int digits = 1) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

struct ThreadPoint {
  std::size_t threads = 0;
  double ms = 0.0;  // min-of-rounds full-sweep latency
  double candidates_per_s = 0.0;
  bool bit_identical = false;
};

// Exact structural equality - doubles compared to the bit, spill lists in
// order. Any divergence across thread counts is a determinism bug.
bool SameReports(const std::vector<cms::WhatIfReport>& a,
                 const std::vector<cms::WhatIfReport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.candidate_index != y.candidate_index || x.link != y.link ||
        x.matched_bytes != y.matched_bytes ||
        x.moved_bytes != y.moved_bytes ||
        x.unpredicted_bytes != y.unpredicted_bytes || x.safe != y.safe ||
        x.spills.size() != y.spills.size()) {
      return false;
    }
    for (std::size_t s = 0; s < x.spills.size(); ++s) {
      if (x.spills[s].link != y.spills[s].link ||
          x.spills[s].bytes != y.spills[s].bytes ||
          x.spills[s].projected_utilization !=
              y.spills[s].projected_utilization ||
          x.spills[s].over_headroom != y.spills[s].over_headroom) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  const int rounds = options.small ? 3 : 7;
  const std::size_t candidate_target = options.small ? 32 : 128;

  bench::PrintHeader("bench_whatif",
                     "what-if withdrawal sweep throughput + thread-count "
                     "determinism; no paper table - planning-side lane");
  const unsigned cores = bench::HardwareConcurrency();
  std::cout << "hardware_concurrency " << cores << "\n\n";

  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = options.small ? 300 : 900;
  if (options.seed != 0) {
    cfg.seed = cfg.topology.seed = options.seed;
    cfg.traffic.seed = options.seed + 1;
    cfg.outages.seed = options.seed + 2;
  }
  scenario::Scenario world(cfg);
  core::TipsyService service(&world.wan(), &world.metros(),
                             core::TipsyConfig{});
  // Train a week, keep the final day's rows as the sweep hour's traffic.
  std::vector<pipeline::AggRow> sweep_rows;
  world.SimulateHours(
      {0, 7 * util::kHoursPerDay},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        service.Train(rows);
        if (hour >= 6 * util::kHoursPerDay && sweep_rows.size() < 8192) {
          sweep_rows.insert(sweep_rows.end(), rows.begin(), rows.end());
        }
      });
  service.FinalizeTraining();

  // Current loads: what the sweep traffic actually put on each link.
  std::vector<double> link_loads(world.wan().link_count(), 0.0);
  for (const auto& row : sweep_rows) {
    link_loads[row.link.value()] += static_cast<double>(row.bytes);
  }

  // Candidates, deterministically: per loaded link one full drain plus
  // one withdrawal per observed destination prefix, links in id order,
  // until the target count.
  std::map<util::LinkId, std::vector<util::PrefixId>> link_prefixes;
  for (const auto& row : sweep_rows) {
    auto& prefixes = link_prefixes[row.link];
    if (std::find(prefixes.begin(), prefixes.end(), row.dest_prefix) ==
        prefixes.end()) {
      prefixes.push_back(row.dest_prefix);
    }
  }
  std::vector<cms::WhatIfCandidate> candidates;
  for (const auto& [link, prefixes] : link_prefixes) {
    if (candidates.size() >= candidate_target) break;
    candidates.push_back({link, {}});  // drain the link
    for (const auto prefix : prefixes) {
      if (candidates.size() >= candidate_target) break;
      candidates.push_back({link, {prefix}});
    }
  }
  std::cout << "sweep hour: " << sweep_rows.size() << " rows, "
            << link_prefixes.size() << " loaded links, "
            << candidates.size() << " candidates\n\n";

  const cms::WhatIfSimulator simulator(&world.wan(), &service,
                                       cms::WhatIfOptions{});

  // Single-threaded reference first; every other thread count must
  // reproduce it bit-for-bit.
  std::vector<cms::WhatIfReport> reference;
  {
    util::ScopedPool pool(1);
    reference = simulator.Sweep(sweep_rows, link_loads, candidates);
  }

  std::vector<std::size_t> thread_counts{1, 2};
  if (cores > 2) thread_counts.push_back(cores);
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  std::vector<ThreadPoint> points;
  bool all_identical = true;
  for (const std::size_t threads : thread_counts) {
    util::ScopedPool pool(threads);
    ThreadPoint point;
    point.threads = threads;
    point.ms = 1e18;
    std::vector<cms::WhatIfReport> reports;
    for (int round = 0; round < rounds; ++round) {
      const std::uint64_t t0 = obs::NowNanos();
      reports = simulator.Sweep(sweep_rows, link_loads, candidates);
      const std::uint64_t t1 = obs::NowNanos();
      point.ms = std::min(point.ms,
                          static_cast<double>(t1 - t0) / 1e6);
    }
    point.bit_identical = SameReports(reports, reference);
    all_identical = all_identical && point.bit_identical;
    point.candidates_per_s =
        point.ms > 0.0
            ? static_cast<double>(candidates.size()) / (point.ms / 1e3)
            : 0.0;
    points.push_back(point);
  }

  util::TextTable table(
      {"Threads", "Sweep ms", "Candidates/s", "Bit-identical"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.threads), Fixed(p.ms, 2),
                  Fixed(p.candidates_per_s, 0),
                  p.bit_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nranked head: ";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, reference.size());
       ++i) {
    std::cout << (i > 0 ? ", " : "") << "link "
              << reference[i].link.value() << " moves "
              << Fixed(reference[i].moved_bytes / 1e12, 2) << " TB"
              << (reference[i].safe ? "" : " (UNSAFE)");
  }
  std::cout << "\ndeterminism: "
            << (all_identical ? "bit-identical at every thread count"
                              : "DIVERGED - determinism bug")
            << "\n";

  std::vector<std::vector<std::string>> csv{
      {"threads", "ms", "candidates_per_s", "bit_identical"}};
  for (const auto& p : points) {
    csv.push_back({std::to_string(p.threads), Fixed(p.ms, 3),
                   Fixed(p.candidates_per_s, 1),
                   p.bit_identical ? "1" : "0"});
  }
  bench::WriteCsv("bench_whatif", csv);

  std::ofstream json("BENCH_whatif.json");
  if (json) {
    json << "{\n  \"bench\": \"whatif\",\n";
    json << "  \"small\": " << (options.small ? "true" : "false") << ",\n";
    json << "  \"hardware_concurrency\": " << cores << ",\n";
    json << "  \"flows\": " << sweep_rows.size() << ",\n";
    json << "  \"candidates\": " << candidates.size() << ",\n";
    json << "  \"bit_identical\": " << (all_identical ? "true" : "false")
         << ",\n";
    json << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      json << "    {\"threads\": " << p.threads
           << ", \"ms\": " << Fixed(p.ms, 3)
           << ", \"candidates_per_s\": " << Fixed(p.candidates_per_s, 1)
           << ", \"bit_identical\": "
           << (p.bit_identical ? "true" : "false") << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nwrote BENCH_whatif.json\n";
  }
  return 0;
}
