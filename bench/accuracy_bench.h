// Shared driver for the four accuracy tables (4, 5, 6, 7): one experiment
// (3 weeks train / 1 week test on the default scenario), different
// evaluation subsets.
#pragma once

#include "bench_common.h"

namespace tipsy::bench {

enum class AccuracySubset {
  kOverall,       // Table 4
  kOutageAll,     // Table 5
  kOutageSeen,    // Table 6
  kOutageUnseen,  // Table 7
};

int RunAccuracyBench(int argc, char** argv, AccuracySubset subset,
                     const std::string& name,
                     const std::string& paper_ref);

}  // namespace tipsy::bench
