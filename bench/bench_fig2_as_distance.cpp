// Figure 2: CDF of ingress bytes by the valley-free AS distance of the
// traffic source. The paper finds ~60% of bytes come from directly peering
// ASes and 98.2% from ASes at most 3 hops away.
#include <iostream>
#include <map>

#include "bench_common.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader("fig2_as_distance",
                     "Figure 2 - CDF of bytes by distance of source AS");

  scenario::Scenario world(bench::FullScenario(options));

  // Valley-free distance per ASN: a CDN pocket shares its ASN with other
  // pockets, so take the minimum over the ASN's routing domains - the same
  // approximation the paper applies to its BMP-derived AS graph.
  std::map<std::uint32_t, int> distance_of_asn;
  for (const auto& node : world.topology().graph.nodes()) {
    const auto d = world.engine().AsDistance(node.id);
    if (!d.has_value()) continue;
    auto [it, inserted] = distance_of_asn.try_emplace(node.asn.value(), *d);
    if (!inserted) it->second = std::min(it->second, *d);
  }

  // One week of ingress telemetry, bytes grouped by source AS distance.
  std::map<int, double> bytes_by_distance;
  double total = 0.0;
  world.SimulateHours(
      util::HourRange{0, 7 * util::kHoursPerDay},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          const auto it = distance_of_asn.find(row.src_asn.value());
          if (it == distance_of_asn.end()) continue;
          bytes_by_distance[it->second] += static_cast<double>(row.bytes);
          total += static_cast<double>(row.bytes);
        }
      });

  util::TextTable table({"AS distance", "Bytes %", "Cumulative %"});
  std::vector<std::vector<std::string>> csv{
      {"as_distance", "bytes_pct", "cumulative_pct"}};
  double cumulative = 0.0;
  for (const auto& [distance, bytes] : bytes_by_distance) {
    cumulative += bytes;
    const auto row = std::vector<std::string>{
        std::to_string(distance),
        util::TextTable::Percent(bytes / total),
        util::TextTable::Percent(cumulative / total)};
    table.AddRow(row);
    csv.push_back(row);
  }
  table.Print(std::cout);
  bench::WriteCsv("fig2_as_distance", csv);
  std::cout << "(paper: ~60% at distance 1, 98.2% within 3 hops)\n";
  return 0;
}
