// Substrate performance: how fast the BGP engine recomputes routing after
// an advertisement change and resolves flows, and how fast a full
// simulated hour runs. Not a paper table - this is the "can a downstream
// user afford to run it" benchmark for the open-source release.
#include <benchmark/benchmark.h>

#include "bgp/routing.h"
#include "scenario/scenario.h"
#include "topo/generator.h"

using namespace tipsy;

namespace {

topo::GeneratedTopology& SharedTopology() {
  static topo::GeneratedTopology topology = [] {
    topo::GeneratorConfig cfg;
    cfg.seed = 7;
    return topo::GenerateTopology(cfg);
  }();
  return topology;
}

// Full per-prefix route recomputation (what a withdrawal triggers).
void BM_RouteComputation(benchmark::State& state) {
  auto& topology = SharedTopology();
  bgp::RoutingEngine engine(&topology.graph, &topology.metros,
                            &topology.peering_links, 48);
  bgp::AdvertisementState adverts(topology.peering_links.size(), 48);
  std::uint32_t flip = 0;
  for (auto _ : state) {
    // Alternate a withdrawal to force a cache miss each iteration.
    if (flip++ % 2 == 0) {
      adverts.Withdraw(util::PrefixId{0}, util::LinkId{0});
    } else {
      adverts.Announce(util::PrefixId{0}, util::LinkId{0});
    }
    benchmark::DoNotOptimize(
        engine.Routing(util::PrefixId{0}, adverts).per_node.size());
  }
  state.counters["nodes"] =
      static_cast<double>(topology.graph.node_count());
  state.counters["links"] =
      static_cast<double>(topology.peering_links.size());
}

// Per-flow ingress resolution against warm routing caches.
void BM_ResolveIngress(benchmark::State& state) {
  auto& topology = SharedTopology();
  bgp::RoutingEngine engine(&topology.graph, &topology.metros,
                            &topology.peering_links, 48);
  bgp::AdvertisementState adverts(topology.peering_links.size(), 48);
  // Sources: all enterprise nodes.
  std::vector<topo::NodeId> sources;
  for (const auto& node : topology.graph.nodes()) {
    if (node.type == topo::AsType::kEnterprise && !node.presence.empty()) {
      sources.push_back(node.id);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& node = topology.graph.node(sources[i % sources.size()]);
    const auto shares = engine.ResolveIngress(
        node.id, node.presence.front(),
        util::PrefixId{static_cast<std::uint32_t>(i % 48)},
        /*flow_hash=*/i * 2654435761u, /*day=*/static_cast<int>(i % 28),
        adverts);
    benchmark::DoNotOptimize(shares.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

// One fully simulated hour (resolution + sampling + aggregation) at a
// given workload size.
void BM_SimulatedHour(benchmark::State& state) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = static_cast<std::size_t>(state.range(0));
  cfg.horizon = util::HourRange{0, 4000};
  scenario::Scenario world(cfg);
  util::HourIndex hour = 0;
  std::size_t rows_seen = 0;
  for (auto _ : state) {
    world.SimulateHours(
        {hour, hour + 1},
        [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
          rows_seen += rows.size();
        });
    ++hour;
  }
  benchmark::DoNotOptimize(rows_seen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["rows/hour"] =
      static_cast<double>(rows_seen) /
      std::max<double>(1.0, static_cast<double>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_RouteComputation)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResolveIngress);
BENCHMARK(BM_SimulatedHour)
    ->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
