// Substrate performance. Two parts:
//
//  1. The parallel-substrate sweep (runs by default): serial-vs-parallel
//     training and evaluation throughput at 1/2/4/hardware threads on the
//     full scenario, verifying along the way that every thread count
//     produces a bit-identical ExportTable() and accuracy table. Writes
//     results/bench_substrate_perf.csv and a BENCH_parallel.json summary
//     in the working directory (the repo root when invoked as
//     ./build/bench/bench_substrate_perf), seeding the perf trajectory.
//
//  2. The original micro-benchmarks (BGP recomputation, ingress
//     resolution, simulated hours) behind --micro, via Google Benchmark.
//
// Not a paper table - this is the "can a downstream user afford to run
// it" benchmark for the open-source release.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bgp/routing.h"
#include "core/evaluator.h"
#include "core/tipsy_service.h"
#include "scenario/scenario.h"
#include "topo/generator.h"
#include "util/parallel.h"

using namespace tipsy;

namespace {

// ----------------------------------------------------------------------
// Parallel substrate sweep.

struct SweepInput {
  scenario::ScenarioConfig cfg;
  std::vector<std::vector<pipeline::AggRow>> train_batches;
  std::size_t train_rows = 0;
  core::EvalSet eval;
  std::unique_ptr<scenario::Scenario> world;
};

SweepInput BuildSweepInput(const bench::BenchOptions& options) {
  SweepInput input;
  input.cfg = bench::FullScenario(options);
  const util::HourIndex train_days = options.small ? 3 : 7;
  const util::HourIndex test_days = options.small ? 1 : 2;
  input.cfg.horizon =
      util::HourRange{0, (train_days + test_days) * util::kHoursPerDay};
  input.world = std::make_unique<scenario::Scenario>(input.cfg);

  const util::HourRange train{0, train_days * util::kHoursPerDay};
  const util::HourRange test{train.end, input.cfg.horizon.end};
  input.world->SimulateHours(
      train, [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        input.train_batches.emplace_back(rows.begin(), rows.end());
        input.train_rows += rows.size();
      });
  input.world->SimulateHours(
      test, [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          const core::FlowFeatures flow{row.src_asn, row.src_prefix24,
                                        row.src_metro, row.dest_region,
                                        row.dest_service};
          input.eval.AddObservation(flow, row.link,
                                    static_cast<double>(row.bytes), 0);
        }
      });
  input.eval.Finalize();
  return input;
}

struct SweepPoint {
  std::size_t threads = 0;
  double train_seconds = 0.0;
  double eval_seconds = 0.0;
  std::size_t eval_reps = 0;
  bool export_identical = true;
  bool accuracy_identical = true;
  std::vector<core::HistoricalModel::TupleExport> export_ap;
  core::AccuracyResult accuracy;
};

bool ExportEqual(const std::vector<core::HistoricalModel::TupleExport>& a,
                 const std::vector<core::HistoricalModel::TupleExport>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].key == b[i].key) || a[i].total_bytes != b[i].total_bytes ||
        a[i].ranked != b[i].ranked) {
      return false;
    }
  }
  return true;
}

SweepPoint RunSweepPoint(const SweepInput& input, std::size_t threads) {
  using Clock = std::chrono::steady_clock;
  util::ScopedPool pool(threads);
  SweepPoint point;
  point.threads = threads;

  const auto train_start = Clock::now();
  core::TipsyService service(&input.world->wan(), &input.world->metros());
  for (const auto& batch : input.train_batches) service.Train(batch);
  service.FinalizeTraining();
  point.train_seconds =
      std::chrono::duration<double>(Clock::now() - train_start).count();

  const core::Model* model = service.Find("Hist_AL/AP/A");
  // Repeat evaluation until it has run for a meaningful wall-time slice.
  const auto eval_start = Clock::now();
  do {
    point.accuracy = core::EvaluateModel(*model, input.eval);
    ++point.eval_reps;
    point.eval_seconds =
        std::chrono::duration<double>(Clock::now() - eval_start).count();
  } while (point.eval_seconds < 0.5);

  point.export_ap = service.hist(core::FeatureSet::kAP).ExportTable();
  return point;
}

void RunParallelSweep(const bench::BenchOptions& options) {
  bench::PrintHeader("substrate_perf",
                     "parallel substrate: train/evaluate throughput by "
                     "thread count");
  SweepInput input = BuildSweepInput(options);
  const std::size_t hw = util::ParallelConfig{}.Resolve();
  const unsigned cores = bench::HardwareConcurrency();
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);
  std::cout << "scenario: " << input.train_rows << " training rows, "
            << input.eval.cases().size() << " eval cases, hardware threads "
            << hw << " (physical cores " << cores << ")\n";

  std::vector<SweepPoint> points;
  for (const std::size_t threads : thread_counts) {
    points.push_back(RunSweepPoint(input, threads));
    SweepPoint& point = points.back();
    if (points.size() > 1) {
      point.export_identical =
          ExportEqual(point.export_ap, points.front().export_ap);
      for (std::size_t k = 0; k < core::AccuracyResult::kMaxK; ++k) {
        if (point.accuracy.top[k] != points.front().accuracy.top[k]) {
          point.accuracy_identical = false;
        }
      }
    }
  }

  const double base_train_rate =
      static_cast<double>(input.train_rows) / points.front().train_seconds;
  const double base_eval_rate =
      static_cast<double>(input.eval.cases().size() *
                          points.front().eval_reps) /
      points.front().eval_seconds;

  // On a single-core host every thread count time-slices one core, so a
  // "speedup" near 1x is an artifact of the scheduler, not a measurement.
  // Label it as skipped rather than report it as real; bit-identity is
  // still meaningful and still checked.
  const bool speedups_measurable = cores > 1;
  const std::string skipped = "skipped: 1 core";

  util::TextTable table({"Threads", "Train rows/s", "Eval cases/s",
                         "Train speedup", "Eval speedup", "Identical"});
  std::vector<std::vector<std::string>> csv{
      {"threads", "train_rows_per_s", "eval_cases_per_s", "train_speedup",
       "eval_speedup", "export_identical", "accuracy_identical"}};
  for (const SweepPoint& point : points) {
    const double train_rate =
        static_cast<double>(input.train_rows) / point.train_seconds;
    const double eval_rate =
        static_cast<double>(input.eval.cases().size() * point.eval_reps) /
        point.eval_seconds;
    const bool identical =
        point.export_identical && point.accuracy_identical;
    char train_rate_s[32], eval_rate_s[32], train_sp[16], eval_sp[16];
    std::snprintf(train_rate_s, sizeof train_rate_s, "%.0f", train_rate);
    std::snprintf(eval_rate_s, sizeof eval_rate_s, "%.0f", eval_rate);
    std::snprintf(train_sp, sizeof train_sp, "%.2fx",
                  train_rate / base_train_rate);
    std::snprintf(eval_sp, sizeof eval_sp, "%.2fx",
                  eval_rate / base_eval_rate);
    const std::string train_sp_label =
        speedups_measurable ? train_sp : skipped;
    const std::string eval_sp_label =
        speedups_measurable ? eval_sp : skipped;
    table.AddRow({std::to_string(point.threads), train_rate_s, eval_rate_s,
                  train_sp_label, eval_sp_label, identical ? "yes" : "NO"});
    csv.push_back({std::to_string(point.threads), train_rate_s,
                   eval_rate_s, train_sp_label, eval_sp_label,
                   point.export_identical ? "1" : "0",
                   point.accuracy_identical ? "1" : "0"});
  }
  table.Print(std::cout);
  if (!speedups_measurable) {
    std::cout << "speedups skipped: 1 hardware core - thread counts "
                 "time-slice one core, so ~1x would be noise, not signal\n";
  }
  bench::WriteCsv("bench_substrate_perf", csv);

  // Machine-readable summary for the perf trajectory across PRs.
  std::ofstream json("BENCH_parallel.json");
  if (json) {
    json << "{\n  \"bench\": \"substrate_parallel\",\n";
    json << "  \"hardware_concurrency\": " << cores << ",\n";
    json << "  \"speedups_measurable\": "
         << (speedups_measurable ? "true" : "false") << ",\n";
    json << "  \"train_rows\": " << input.train_rows << ",\n";
    json << "  \"eval_cases\": " << input.eval.cases().size() << ",\n";
    json << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& point = points[i];
      const double train_rate =
          static_cast<double>(input.train_rows) / point.train_seconds;
      const double eval_rate =
          static_cast<double>(input.eval.cases().size() *
                              point.eval_reps) /
          point.eval_seconds;
      json << "    {\"threads\": " << point.threads
           << ", \"train_rows_per_s\": " << static_cast<long long>(train_rate)
           << ", \"eval_cases_per_s\": " << static_cast<long long>(eval_rate)
           << ", \"train_speedup\": ";
      if (speedups_measurable) {
        json << train_rate / base_train_rate;
      } else {
        json << "\"" << skipped << "\"";
      }
      json << ", \"eval_speedup\": ";
      if (speedups_measurable) {
        json << eval_rate / base_eval_rate;
      } else {
        json << "\"" << skipped << "\"";
      }
      json << ", \"bit_identical\": "
           << ((point.export_identical && point.accuracy_identical)
                   ? "true"
                   : "false")
           << "}" << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "wrote BENCH_parallel.json\n";
  }
}

// ----------------------------------------------------------------------
// Original micro-benchmarks (--micro).

topo::GeneratedTopology& SharedTopology() {
  static topo::GeneratedTopology topology = [] {
    topo::GeneratorConfig cfg;
    cfg.seed = 7;
    return topo::GenerateTopology(cfg);
  }();
  return topology;
}

// Full per-prefix route recomputation (what a withdrawal triggers).
void BM_RouteComputation(benchmark::State& state) {
  auto& topology = SharedTopology();
  bgp::RoutingEngine engine(&topology.graph, &topology.metros,
                            &topology.peering_links, 48);
  bgp::AdvertisementState adverts(topology.peering_links.size(), 48);
  std::uint32_t flip = 0;
  for (auto _ : state) {
    // Alternate a withdrawal to force a cache miss each iteration.
    if (flip++ % 2 == 0) {
      adverts.Withdraw(util::PrefixId{0}, util::LinkId{0});
    } else {
      adverts.Announce(util::PrefixId{0}, util::LinkId{0});
    }
    benchmark::DoNotOptimize(
        engine.Routing(util::PrefixId{0}, adverts).per_node.size());
  }
  state.counters["nodes"] =
      static_cast<double>(topology.graph.node_count());
  state.counters["links"] =
      static_cast<double>(topology.peering_links.size());
}

// Per-flow ingress resolution against warm routing caches.
void BM_ResolveIngress(benchmark::State& state) {
  auto& topology = SharedTopology();
  bgp::RoutingEngine engine(&topology.graph, &topology.metros,
                            &topology.peering_links, 48);
  bgp::AdvertisementState adverts(topology.peering_links.size(), 48);
  // Sources: all enterprise nodes.
  std::vector<topo::NodeId> sources;
  for (const auto& node : topology.graph.nodes()) {
    if (node.type == topo::AsType::kEnterprise && !node.presence.empty()) {
      sources.push_back(node.id);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& node = topology.graph.node(sources[i % sources.size()]);
    const auto shares = engine.ResolveIngress(
        node.id, node.presence.front(),
        util::PrefixId{static_cast<std::uint32_t>(i % 48)},
        /*flow_hash=*/i * 2654435761u, /*day=*/static_cast<int>(i % 28),
        adverts);
    benchmark::DoNotOptimize(shares.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

// One fully simulated hour (resolution + sampling + aggregation) at a
// given workload size.
void BM_SimulatedHour(benchmark::State& state) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = static_cast<std::size_t>(state.range(0));
  cfg.horizon = util::HourRange{0, 4000};
  scenario::Scenario world(cfg);
  util::HourIndex hour = 0;
  std::size_t rows_seen = 0;
  for (auto _ : state) {
    world.SimulateHours(
        {hour, hour + 1},
        [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
          rows_seen += rows.size();
        });
    ++hour;
  }
  benchmark::DoNotOptimize(rows_seen);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["rows/hour"] =
      static_cast<double>(rows_seen) /
      std::max<double>(1.0, static_cast<double>(state.iterations()));
}

}  // namespace

BENCHMARK(BM_RouteComputation)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResolveIngress);
BENCHMARK(BM_SimulatedHour)
    ->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  bool micro = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) micro = true;
  }
  const auto options = bench::BenchOptions::Parse(argc, argv);
  RunParallelSweep(options);
  if (micro) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
