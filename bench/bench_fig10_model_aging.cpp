// Figure 10 (Appendix B.2): accuracy of Hist_AL/AP/A on single days
// progressively farther past the end of a 3-week training window. The
// paper sees near-linear degradation and picks a 7-day testing validity.
#include <array>
#include <iostream>

#include "bench_common.h"
#include "scenario/row_cache.h"
#include "util/parallel.h"
#include "util/stats.h"

using namespace tipsy;

int main(int argc, char** argv) {
  const auto options = bench::BenchOptions::Parse(argc, argv);
  bench::PrintHeader(
      "fig10_model_aging",
      "Figure 10 - daily accuracy of Hist_AL/AP/A after training");

  auto cfg = bench::SweepScenario(options);
  constexpr int kRepeats = 4;
  constexpr int kDaysOut = 14;
  const util::HourIndex span_days = 21 + (kRepeats - 1) * 7 + kDaysOut;
  cfg.horizon = util::HourRange{0, span_days * util::kHoursPerDay};
  scenario::Scenario world(cfg);
  scenario::RowCache cache(world, cfg.horizon);

  // For each repeat, train once on 21 days, then evaluate day-by-day.
  // Every (repeat, day) cell replays the shared row cache independently:
  // fan the grid out over the thread pool and fold results in grid order
  // so the per-day statistics accumulate exactly as the serial loop did.
  const auto accuracies = util::ParallelMap(
      static_cast<std::size_t>(kRepeats * kDaysOut), [&](std::size_t j) {
        const int repeat = static_cast<int>(j) / kDaysOut;
        const int day = static_cast<int>(j) % kDaysOut;
        const util::HourIndex train_end =
            (21 + repeat * 7) * util::kHoursPerDay;
        scenario::ExperimentConfig exp;
        exp.train =
            util::HourRange{train_end - 21 * util::kHoursPerDay, train_end};
        exp.test =
            util::HourRange{train_end + day * util::kHoursPerDay,
                            train_end + (day + 1) * util::kHoursPerDay};
        const auto result = scenario::RunExperiment(cache, exp);
        const auto* model = result.tipsy->Find("Hist_AL/AP/A");
        const auto accuracy = core::EvaluateModel(*model, result.overall);
        return std::array<double, 3>{accuracy.top[0], accuracy.top[1],
                                     accuracy.top[2]};
      });
  std::vector<std::array<util::OnlineStats, 3>> stats(kDaysOut);
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (int day = 0; day < kDaysOut; ++day) {
      const auto& accuracy = accuracies[repeat * kDaysOut + day];
      for (int k = 0; k < 3; ++k) stats[day][k].Add(accuracy[k]);
    }
  }

  util::TextTable table({"Days after training", "Top1 avg %", "Top2 avg %",
                         "Top3 avg % (min-max)"});
  std::vector<std::vector<std::string>> csv{
      {"days_after", "k", "avg_pct", "min_pct", "max_pct"}};
  for (int day = 0; day < kDaysOut; ++day) {
    table.AddRow({std::to_string(day + 1),
                  util::TextTable::Percent(stats[day][0].mean()),
                  util::TextTable::Percent(stats[day][1].mean()),
                  util::TextTable::Percent(stats[day][2].mean()) + " (" +
                      util::TextTable::Percent(stats[day][2].min()) + "-" +
                      util::TextTable::Percent(stats[day][2].max()) + ")"});
    for (int k = 0; k < 3; ++k) {
      csv.push_back({std::to_string(day + 1), std::to_string(k + 1),
                     util::TextTable::Percent(stats[day][k].mean()),
                     util::TextTable::Percent(stats[day][k].min()),
                     util::TextTable::Percent(stats[day][k].max())});
    }
  }
  table.Print(std::cout);
  bench::WriteCsv("fig10_model_aging", csv);
  std::cout << "(paper: accuracy degrades roughly linearly with model age; "
               "7 days is still acceptable)\n";
  return 0;
}
