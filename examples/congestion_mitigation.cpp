// The paper's §2 story as a runnable narrative: a peering link gets
// overwhelmed by a surge of enterprise traffic, and the congestion
// mitigation system has to shift flows away with BGP withdrawals. Run once
// with the pre-TIPSY blind policy and once guided by TIPSY predictions,
// printing the hour-by-hour timeline of both.
//
//   ./examples/congestion_mitigation [seed]
#include <cstdlib>
#include <iostream>

#include "cms/cms.h"
#include "scenario/experiment.h"
#include "util/table.h"

using namespace tipsy;

namespace {

void RunTimeline(scenario::Scenario& world, const core::TipsyService* tipsy,
                 bool use_tipsy, util::HourRange hours,
                 std::uint32_t victim) {
  world.ResetAdvertisements();
  cms::CmsConfig config;
  config.use_tipsy = use_tipsy;
  cms::CongestionMitigationSystem cms(&world, tipsy, config);

  std::cout << "\n--- " << (use_tipsy ? "TIPSY-guided CMS" : "legacy CMS")
            << " ---\n";
  std::vector<pipeline::AggRow> hour_rows;
  std::size_t printed_actions = 0;
  world.SimulateHours(
      hours,
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        hour_rows.assign(rows.begin(), rows.end());
      },
      [&](util::HourIndex hour, std::span<const double> loads) {
        const double cap = world.wan()
                               .link(util::LinkId{victim})
                               .CapacityBytesPerHour();
        std::cout << util::FormatHour(hour) << "  victim at "
                  << util::TextTable::Percent(loads[victim] / cap)
                  << "% utilization";
        // Any other link above the trigger?
        for (std::uint32_t l = 0; l < loads.size(); ++l) {
          if (l == victim) continue;
          const double c =
              world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
          if (c > 0.0 && loads[l] / c > 0.85) {
            std::cout << "; link " << l << " ("
                      << world.wan().link(util::LinkId{l}).router
                      << ") congested at "
                      << util::TextTable::Percent(loads[l] / c) << "%";
          }
        }
        std::cout << "\n";
        cms.ObserveHour(hour, loads, hour_rows);
        for (; printed_actions < cms.actions().size(); ++printed_actions) {
          const auto& action = cms.actions()[printed_actions];
          std::cout << "      -> "
                    << (action.reannounce ? "re-announce" : "withdraw")
                    << " prefix " << action.prefix.value() << " at link "
                    << action.link.value() << " ("
                    << world.wan().link(action.link).router << ")\n";
        }
      });
  std::cout << "summary: " << cms.events().size() << " congestion events, "
            << cms.withdrawals_issued() << " withdrawals, "
            << cms.unsafe_withdrawals_skipped()
            << " unsafe withdrawals avoided\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = scenario::TinyScenarioConfig();
  if (argc > 1) {
    cfg.seed = cfg.topology.seed = std::strtoull(argv[1], nullptr, 10);
    cfg.traffic.seed = cfg.seed + 1;
    cfg.outages.seed = cfg.seed + 2;
  }
  cfg.traffic.flow_target = 2000;
  cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  cfg.target_p99_utilization = 0.7;
  scenario::Scenario world(cfg);

  std::cout << "Training TIPSY on three weeks of telemetry...\n";
  const auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  // Stage the incident: find the busiest not-yet-congested link and surge
  // the flows that ingress it.
  const auto start = windows.test.begin;
  std::vector<double> loads(world.wan().link_count(), 0.0);
  world.SimulateHours({start, start + 1}, nullptr,
                      [&](util::HourIndex, std::span<const double> l) {
                        loads.assign(l.begin(), l.end());
                      });
  std::uint32_t victim = 0;
  double victim_util = 0.0;
  for (std::uint32_t l = 0; l < loads.size(); ++l) {
    const double cap =
        world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
    if (cap <= 0.0) continue;
    const double u = loads[l] / cap;
    if (u > victim_util && u < 0.8) {
      victim_util = u;
      victim = l;
    }
  }
  const auto& link = world.wan().link(util::LinkId{victim});
  std::cout << "Incident: surge towards link " << victim << " @"
            << link.router << " (peer AS " << link.peer_asn.value() << ", "
            << link.capacity_gbps << "G)\n";
  const double surge = 1.3 / std::max(victim_util, 0.05);
  for (std::size_t f = 0; f < world.workload().flows().size(); ++f) {
    for (const auto& share : world.ResolveFlow(f, start)) {
      if (share.link.value() == victim && share.fraction > 0.2) {
        world.mutable_workload().ScaleFlow(f, surge);
        break;
      }
    }
  }

  const util::HourRange incident{start, start + 8};
  RunTimeline(world, experiment.tipsy.get(), /*use_tipsy=*/false, incident,
              victim);
  RunTimeline(world, experiment.tipsy.get(), /*use_tipsy=*/true, incident,
              victim);
  return 0;
}
