// Capacity-planning report (Appendix C + §8): which peering links are at
// risk of overload if some other single link fails, and which peers could
// be de-peered because TIPSY predicts their traffic would re-home cleanly.
//
//   ./examples/capacity_risk [seed]
#include <cstdlib>
#include <iostream>

#include "risk/depeering.h"
#include "risk/risk.h"
#include "scenario/experiment.h"
#include "util/table.h"

using namespace tipsy;

int main(int argc, char** argv) {
  auto cfg = scenario::TinyScenarioConfig();
  if (argc > 1) {
    cfg.seed = cfg.topology.seed = std::strtoull(argv[1], nullptr, 10);
    cfg.traffic.seed = cfg.seed + 1;
    cfg.outages.seed = cfg.seed + 2;
  }
  cfg.traffic.flow_target = 2000;
  cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  cfg.target_p99_utilization = 0.62;
  scenario::Scenario world(cfg);

  std::cout << "Training TIPSY (3 weeks) and analyzing the test week...\n";
  const auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  risk::RiskAnalyzer at_risk(&world.wan(), experiment.tipsy.get());
  risk::DepeeringAnalyzer depeering(&world.wan(), experiment.tipsy.get());
  std::vector<pipeline::AggRow> hour_rows;
  world.SimulateHours(
      windows.test,
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        hour_rows.assign(rows.begin(), rows.end());
        depeering.Observe(rows);
      },
      [&](util::HourIndex hour, std::span<const double> loads) {
        at_risk.ObserveHour(hour, loads, hour_rows);
      });

  // --- Report 1: links at risk under a single other-link outage.
  std::cout << "\nLinks at risk of >70% utilization under another link's "
               "outage (cf. paper Table 12):\n";
  util::TextTable risk_table({"Router", "Peer AS", "BW", "Typical >70% h",
                              "Predicted >70% h", "Affecting"});
  const auto findings = at_risk.Findings(8);
  for (const auto& finding : findings) {
    const auto& victim = world.wan().link(finding.link);
    const auto& affecting = world.wan().link(finding.affecting);
    risk_table.AddRow(
        {victim.router, std::to_string(victim.peer_asn.value()),
         util::TextTable::Fixed(victim.capacity_gbps, 0) + "G",
         std::to_string(finding.typical_hours),
         std::to_string(finding.predicted_hours),
         affecting.router + " (AS" +
             std::to_string(affecting.peer_asn.value()) + ")"});
  }
  if (findings.empty()) {
    std::cout << "  (none this week - the WAN has headroom everywhere)\n";
  } else {
    risk_table.Print(std::cout);
  }

  // --- Report 2: de-peering candidates.
  std::cout << "\nDe-peering view (least load-bearing peers first):\n";
  util::TextTable peer_table({"Peer AS", "Type", "Links", "Ingress",
                              "Predicted retention %", "Stranded"});
  const auto ranking = depeering.Rank();
  std::size_t shown = 0;
  for (const auto& peer : ranking) {
    if (shown++ >= 10) break;
    peer_table.AddRow(
        {std::to_string(peer.asn.value()), topo::ToString(peer.peer_type),
         std::to_string(peer.link_count),
         util::TextTable::HumanBytes(peer.ingress_bytes),
         util::TextTable::Percent(peer.predicted_retention),
         util::TextTable::HumanBytes(peer.stranded_bytes)});
  }
  peer_table.Print(std::cout);
  std::cout << "A peer with near-100% predicted retention and low ingress "
               "volume is a de-peering candidate; one with large stranded "
               "bytes is load-bearing.\n";
  return 0;
}
