// TIPSY as an online service (§4): ingest the telemetry stream, retrain
// daily on a rolling 21-day window, and track how the freshly-retrained
// model's next-day accuracy compares to a stale model trained once -
// the operational payoff of Appendix B's analysis.
//
//   ./examples/online_service [seed]
//
// With `--connect <host> <predict_port> <ingest_port> [seed]` it runs as
// an out-of-process client of a live `tipsyd` daemon instead: it streams
// a day of simulated telemetry to the ingest port (journal-framed, acked
// durable, idempotent on reconnect), then asks the predict port where
// that traffic would shift if its busiest ingress link failed. The seed
// must match the daemon's — the scenario is the shared model identity.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/evaluator.h"
#include "core/online.h"
#include "core/serialize.h"
#include "ha/replica.h"
#include "net/auth.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace tipsy;

namespace {

// Client-demo mode against a running tipsyd (tools/daemon_smoke.sh runs
// this end to end in CI). Returns the process exit code.
int RunConnectMode(int argc, char** argv) {
  if (argc < 5) {
    std::cerr << "usage: online_service --connect <host> <predict_port> "
                 "<ingest_port> [seed]\n";
    return 2;
  }
  const std::string host = argv[2];
  const auto predict_port =
      static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10));
  const auto ingest_port =
      static_cast<std::uint16_t>(std::strtoul(argv[4], nullptr, 10));

  auto cfg = scenario::TinyScenarioConfig();
  if (argc > 5) {
    cfg.seed = cfg.topology.seed = std::strtoull(argv[5], nullptr, 10);
    cfg.traffic.seed = cfg.seed + 1;
    cfg.outages.seed = cfg.seed + 2;
  }
  // Cross the first day boundary: ingesting hour 24 triggers the daemon's
  // daily retrain, so the predict RPC below is answered by a FRESH model.
  const int feed_hours = 26;
  cfg.horizon = util::HourRange{0, feed_hours};
  scenario::Scenario world(cfg);

  // Same key resolution as tipsyd: TIPSY_AUTH_KEY, when set, puts the
  // demo on the authenticated v2 wire (tools/daemon_smoke.sh --auth
  // exercises both the keyed round trip and the keyless refusal).
  const auto auth = net::ResolveAuthKey("");
  if (!auth.ok()) {
    std::cerr << "auth key: " << auth.status().ToString() << "\n";
    return 2;
  }

  obs::Registry registry;
  net::ClientConfig ingest_cfg;
  ingest_cfg.host = host;
  ingest_cfg.port = ingest_port;
  ingest_cfg.auth = *auth;
  net::CollectorClient collector(ingest_cfg, &registry, "demo_collector");

  std::cout << "streaming " << feed_hours << " hours to " << host << ":"
            << ingest_port << " ...\n";
  std::vector<pipeline::AggRow> last_hour_rows;
  util::Status send_status = util::Status::Ok();
  world.SimulateHours(
      {0, feed_hours},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        if (!send_status.ok()) return;
        send_status = collector.SendHour(hour, rows);
        if (send_status.ok()) {
          last_hour_rows.assign(rows.begin(), rows.end());
        }
      });
  if (!send_status.ok()) {
    std::cerr << "ingest stream failed: " << send_status.ToString() << "\n";
    return 1;
  }
  std::cout << "ingest acked durable: " << collector.hours_sent()
            << " hours sent, " << collector.hours_skipped()
            << " already applied server-side, " << collector.reconnects()
            << " reconnects\n";

  // Ask the daemon where the last hour's flows would land if the link
  // carrying most of them were withdrawn — the §4.4 what-if, answered
  // over the wire by the model this same stream just trained.
  net::PredictRequest request;
  double heaviest_bytes = 0.0;
  util::LinkId heaviest_link{0};
  std::vector<double> per_link(world.wan().link_count(), 0.0);
  for (const auto& row : last_hour_rows) {
    if (request.flows.size() < 64) {
      request.flows.push_back(
          {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                              row.dest_region, row.dest_service},
           static_cast<double>(row.bytes)});
    }
    double& bytes_on_link = per_link[row.link.value()];
    bytes_on_link += static_cast<double>(row.bytes);
    if (bytes_on_link > heaviest_bytes) {
      heaviest_bytes = bytes_on_link;
      heaviest_link = row.link;
    }
  }
  request.excluded = {heaviest_link};

  net::ClientConfig predict_cfg;
  predict_cfg.host = host;
  predict_cfg.port = predict_port;
  predict_cfg.auth = *auth;
  net::PredictClient predictor(predict_cfg);
  const auto response = predictor.Predict(request);
  if (!response.ok()) {
    std::cerr << "predict RPC failed: " << response.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "predict RPC ok: excluding link " << heaviest_link.value()
            << ", serving health "
            << core::ModelHealthName(response->health) << ", "
            << response->prediction.shifted.size()
            << " links receive shifted traffic ("
            << response->prediction.unpredicted_bytes
            << " bytes unpredicted)\n";
  util::TextTable table({"Link", "Shifted bytes"});
  for (std::size_t i = 0;
       i < response->prediction.shifted.size() && i < 5; ++i) {
    const auto& [link, bytes] = response->prediction.shifted[i];
    table.AddRow({std::to_string(link.value()), std::to_string(bytes)});
  }
  table.Print(std::cout);
  std::cout << "CLIENT_DEMO_OK hours=" << collector.hours_sent()
            << " flows=" << request.flows.size() << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--connect") {
    return RunConnectMode(argc, argv);
  }
  auto cfg = scenario::TinyScenarioConfig();
  if (argc > 1) {
    cfg.seed = cfg.topology.seed = std::strtoull(argv[1], nullptr, 10);
    cfg.traffic.seed = cfg.seed + 1;
    cfg.outages.seed = cfg.seed + 2;
  }
  cfg.traffic.flow_target = 2000;
  const int warmup_days = 14;
  const int live_days = 10;
  cfg.horizon = util::HourRange{
      0, (warmup_days + live_days) * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  core::DailyRetrainer retrainer(&world.wan(), &world.metros(),
                                 /*window_days=*/14);
  std::unique_ptr<core::TipsyService> stale;  // trained once after warmup

  // Observability (src/obs, docs/OPERATIONS.md): every component
  // registers its counters into one registry, and the loop below dumps
  // it periodically the way a /metrics endpoint would serve it.
  obs::Registry registry;
  obs::Tracer tracer(/*capacity=*/64);
  retrainer.SetTracer(&tracer);
  const obs::MetricGroup retrainer_metrics =
      retrainer.RegisterMetrics(registry, "tipsy_retrainer");

  std::cout << "Warming up the online service on " << warmup_days
            << " days of telemetry...\n";
  world.SimulateHours(
      {0, warmup_days * util::kHoursPerDay},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        retrainer.Ingest(hour, rows);
      });
  retrainer.Retrain();
  // Freeze a copy-equivalent stale model from the same warmup data: the
  // retrainer's current service at this moment.
  std::cout << "retrains so far: " << retrainer.retrain_count() << "\n\n";

  util::TextTable table({"Day", "Fresh model top-1 %", "Stale model top-1 %",
                         "Fresh retrains"});
  for (int day = 0; day < live_days; ++day) {
    const util::HourIndex start =
        (warmup_days + day) * util::kHoursPerDay;
    if (stale == nullptr) {
      // The stale model is whatever the service knew after warmup; keep
      // using it for comparison without feeding it new data.
      stale = std::make_unique<core::TipsyService>(&world.wan(),
                                                   &world.metros());
      // Rebuild from the retrainer's buffered window (same data).
      // Simplest faithful approach: train on the warmup simulation again.
      scenario::Scenario warmup_world(cfg);
      warmup_world.SimulateHours(
          {0, warmup_days * util::kHoursPerDay},
          [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
            stale->Train(rows);
          });
      stale->FinalizeTraining();
    }

    // Buffer the day's rows, evaluate the service as it stood at day
    // start, THEN ingest (ingesting the first hour of a new day triggers
    // a retrain and replaces the current service).
    core::EvalSet eval;
    std::vector<std::pair<util::HourIndex, std::vector<pipeline::AggRow>>>
        day_rows;
    world.SimulateHours(
        {start, start + util::kHoursPerDay},
        [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
          for (const auto& row : rows) {
            eval.AddObservation(
                core::FlowFeatures{row.src_asn, row.src_prefix24,
                                   row.src_metro, row.dest_region,
                                   row.dest_service},
                row.link, static_cast<double>(row.bytes));
          }
          day_rows.emplace_back(
              hour, std::vector<pipeline::AggRow>(rows.begin(), rows.end()));
        });
    eval.Finalize();
    const core::TipsyService* fresh = retrainer.current();
    const auto fresh_accuracy =
        core::EvaluateModel(*fresh->Find("Hist_AP/AL/A"), eval);
    const auto stale_accuracy =
        core::EvaluateModel(*stale->Find("Hist_AP/AL/A"), eval);
    for (const auto& [hour, rows] : day_rows) {
      retrainer.Ingest(hour, rows);
    }
    table.AddRow({std::to_string(warmup_days + day),
                  util::TextTable::Percent(fresh_accuracy.top1()),
                  util::TextTable::Percent(stale_accuracy.top1()),
                  std::to_string(retrainer.retrain_count())});

    // Periodic /metrics dump. The fresh service's prediction-path
    // metrics register only for the scrape: the service is replaced on
    // the next retrain, and registrations must not outlive it. A few
    // what-if queries against the day's flows give the latency histogram
    // and top-k counters something to report.
    if ((day + 1) % 5 == 0) {
      std::vector<core::TipsyService::ShiftQueryFlow> queries;
      for (const auto& [hour, rows] : day_rows) {
        for (const auto& row : rows) {
          if (queries.size() >= 64) break;
          queries.push_back({core::FlowFeatures{row.src_asn, row.src_prefix24,
                                                row.src_metro,
                                                row.dest_region,
                                                row.dest_service},
                             static_cast<double>(row.bytes)});
        }
      }
      const core::ExclusionMask excluded(world.wan().link_count(), false);
      // Re-fetch: ingesting the day's first hour retrained and replaced
      // the service `fresh` pointed at.
      const core::TipsyService* current = retrainer.current();
      (void)current->PredictShift(queries, excluded);
      const obs::MetricGroup service_metrics =
          current->RegisterMetrics(registry, "tipsy_service");
      std::cout << "--- /metrics after day " << warmup_days + day
                << " ---\n"
                << registry.RenderPrometheusText()
                << "--- end /metrics ---\n\n";
    }
  }
  table.Print(std::cout);
  std::cout << "The stale model ages (Appendix B.2); daily retraining "
               "holds accuracy steady, which is why TIPSY retrains every "
               "day in production.\n";

  // Operational plumbing: the serving plane reports its health, and the
  // model bundle persists crash-safely (write temp + fsync + rename, v2
  // checksummed format) so a serving replica can pick it up.
  const auto health = retrainer.health_snapshot();
  std::cout << "\nservice health: " << core::ModelHealthName(health.health)
            << " (model age " << health.model_age_days << "d, "
            << health.retrain_count << " retrains, "
            << health.retrain_failures << " failures, "
            << health.dropped_hours << " out-of-order hours dropped)\n";
  const std::string bundle_path = "online_service.tipsy";
  if (const auto saved =
          core::SaveServiceToFile(*retrainer.current(), bundle_path);
      !saved.ok()) {
    std::cout << "bundle save failed: " << saved.ToString() << "\n";
    return 1;
  }
  const auto reloaded = core::LoadServiceFromFile(bundle_path, &world.wan(),
                                                  &world.metros());
  if (!reloaded.ok()) {
    std::cout << "bundle reload failed: "
              << reloaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "model bundle saved atomically to " << bundle_path
            << " and reloaded (trained=" << (*reloaded)->trained() << ")\n";
  std::remove(bundle_path.c_str());

  // High availability (src/ha): the same ingest loop, but journaled and
  // snapshotted so a crash warm-starts instead of retraining from
  // scratch. Every Ingest is appended to an hour journal before it is
  // applied; SnapshotNow checkpoints the full retrainer state; Open
  // restores the snapshot and replays only the journal suffix.
  std::cout << "\nHA demo: journal + snapshot warm start\n";
  ha::ReplicaConfig replica_cfg;
  replica_cfg.journal_path = "online_service.journal";
  replica_cfg.snapshot_path = "online_service.snapshot";
  {
    auto replica = ha::Replica::Open(&world.wan(), &world.metros(),
                                     /*window_days=*/14, {}, {}, replica_cfg);
    if (!replica.ok()) {
      std::cout << "replica open failed: " << replica.status().ToString()
                << "\n";
      return 1;
    }
    const obs::MetricGroup primary_metrics =
        replica->RegisterMetrics(registry, "tipsy_replica_primary");
    scenario::Scenario replay_world(cfg);
    replay_world.SimulateHours(
        {0, 3 * util::kHoursPerDay},
        [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
          (void)replica->Ingest(hour, rows);
        });
    (void)replica->SnapshotNow();
    std::cout << "primary ingested 3 days (" << replica->applied_seq()
              << " journaled records, " << replica->snapshots_taken()
              << " snapshots), then crashes here\n";
    // The Replica object is dropped - simulating a process kill. Only the
    // journal and snapshot files survive.
  }
  auto restarted = ha::Replica::Open(&world.wan(), &world.metros(),
                                     /*window_days=*/14, {}, {}, replica_cfg);
  if (!restarted.ok()) {
    std::cout << "warm start failed: " << restarted.status().ToString()
              << "\n";
    return 1;
  }
  const auto& recovery = restarted->recovery();
  std::cout << "warm start restored from "
            << ha::RestoreSourceName(recovery.source) << ": "
            << recovery.skipped_records << " records inside the snapshot, "
            << recovery.replayed_records << " replayed from the journal; "
            << "serving health "
            << core::ModelHealthName(restarted->health()) << "\n";
  std::remove(replica_cfg.journal_path.c_str());
  std::remove(replica_cfg.snapshot_path.c_str());

  // Final scrape: the restarted replica's durability counters join the
  // retrainer's on the registry, and the JSON form follows the
  // BENCH_*.json conventions (tools/check_bench_json.py accepts it).
  const obs::MetricGroup restarted_metrics =
      restarted->RegisterMetrics(registry, "tipsy_replica");
  std::cout << "\nfinal JSON scrape:\n" << registry.RenderJsonText() << "\n";
  std::cout << "recent retrain spans:\n" << tracer.RenderJsonText() << "\n";
  return 0;
}
