// Spoofed-ingress detection (§8): train TIPSY, then inject traffic that
// claims to come from known enterprise prefixes but arrives on peering
// links where those sources are exceedingly unlikely - the "US national
// lab traffic on far-away links" case. The detector flags the spoofed
// observations without flagging the legitimate baseline.
//
//   ./examples/suspicious_traffic [seed]
#include <cstdlib>
#include <iostream>

#include "core/anomaly.h"
#include "scenario/experiment.h"
#include "util/rng.h"
#include "util/table.h"

using namespace tipsy;

int main(int argc, char** argv) {
  auto cfg = scenario::TinyScenarioConfig();
  if (argc > 1) {
    cfg.seed = cfg.topology.seed = std::strtoull(argv[1], nullptr, 10);
    cfg.traffic.seed = cfg.seed + 1;
    cfg.outages.seed = cfg.seed + 2;
  }
  cfg.traffic.flow_target = 2000;
  cfg.horizon = util::HourRange{0, 25 * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  std::cout << "Training TIPSY on three weeks of telemetry...\n";
  auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  // One real hour of traffic as the honest baseline.
  std::vector<pipeline::AggRow> observations;
  world.SimulateHours(
      {windows.test.begin, windows.test.begin + 1},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        observations.assign(rows.begin(), rows.end());
      });
  const std::size_t honest = observations.size();

  // Inject spoofed rows: take known flows, but deliver them on a link on
  // the other side of the world from their historical ingress.
  util::Rng rng(cfg.seed ^ 0x5f00f);
  const auto* model = experiment.tipsy->Find("Hist_AP");
  std::size_t injected = 0;
  for (std::size_t f = 0; f < 50; ++f) {
    const auto flow = world.FlowFeaturesOf(f);
    const auto usual = model->Predict(flow, 16, nullptr);
    if (usual.empty()) continue;
    // Find the farthest link from the flow's usual ingress metro.
    const auto usual_metro = world.wan().link(usual.front().link).metro;
    util::LinkId far_link;
    double far_distance = -1.0;
    for (const auto& link : world.wan().links()) {
      const double d =
          world.metros().DistanceKmBetween(usual_metro, link.metro);
      if (d > far_distance) {
        far_distance = d;
        far_link = link.id;
      }
    }
    pipeline::AggRow spoof;
    spoof.hour = windows.test.begin;
    spoof.link = far_link;
    spoof.src_asn = flow.src_asn;
    spoof.src_prefix24 = flow.src_prefix24;
    spoof.src_metro = flow.src_metro;
    spoof.dest_region = flow.dest_region;
    spoof.dest_service = flow.dest_service;
    spoof.bytes = 1'000'000'000 + rng.NextBelow(1'000'000'000);
    observations.push_back(spoof);
    ++injected;
  }
  std::cout << "observing " << honest << " honest rows + " << injected
            << " spoofed rows\n";

  core::AnomalyConfig detector_cfg;
  detector_cfg.min_bytes = 1e6;
  core::SuspiciousIngressDetector detector(model, detector_cfg);
  const auto flagged = detector.Scan(observations);

  std::size_t true_positives = 0;
  for (const auto& f : flagged) {
    // Spoofed rows were appended after index `honest`; recover by value:
    // spoofs have plausibility exactly 0 on a far-away link.
    if (f.plausibility == 0.0) ++true_positives;
  }
  std::cout << "flagged " << flagged.size() << " observations ("
            << true_positives << " with zero historical plausibility)\n\n";

  util::TextTable table(
      {"Source AS", "Prefix", "Arrived at", "Bytes", "Plausibility"});
  std::size_t shown = 0;
  for (const auto& f : flagged) {
    if (shown++ >= 10) break;
    table.AddRow({std::to_string(f.flow.src_asn.value()),
                  f.flow.src_prefix24.ToString(),
                  world.wan().link(f.link).router,
                  util::TextTable::HumanBytes(f.bytes),
                  util::TextTable::Fixed(f.plausibility, 4)});
  }
  table.Print(std::cout);
  const double flag_rate_honest =
      honest > 0 ? static_cast<double>(flagged.size() - true_positives) /
                       static_cast<double>(honest)
                 : 0.0;
  std::cout << "false-positive rate on honest traffic: "
            << util::TextTable::Percent(flag_rate_honest)
            << "% (operators would route flagged flows through DoS "
               "scrubbers)\n";
  return 0;
}
