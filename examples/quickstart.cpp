// Quickstart: build a small synthetic Internet, train TIPSY on three weeks
// of simulated telemetry, and ask it where traffic will ingress the WAN -
// both in normal operation and under a what-if prefix withdrawal.
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/tipsy_service.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace tipsy;

int main(int argc, char** argv) {
  auto config = scenario::TinyScenarioConfig();
  if (argc > 1) {
    config.seed = config.topology.seed = config.traffic.seed =
        std::strtoull(argv[1], nullptr, 10);
  }
  config.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  config.traffic.flow_target = 2000;

  std::cout << "Building scenario (topology seed " << config.topology.seed
            << ")...\n";
  scenario::Scenario world(config);
  std::cout << "  " << world.topology().graph.node_count()
            << " routing domains, " << world.wan().link_count()
            << " peering links, " << world.workload().flows().size()
            << " flow aggregates\n";

  // Train on 3 weeks, evaluate on 1 week - the paper's methodology.
  auto experiment_cfg = scenario::PaperWindows();
  std::cout << "Simulating 3 weeks of training + 1 week of testing...\n";
  auto experiment = scenario::RunExperiment(world, experiment_cfg);

  util::TextTable table({"Model", "Top 1 %", "Top 2 %", "Top 3 %"});
  for (const auto& row :
       scenario::EvaluateSuite(*experiment.tipsy, experiment.overall)) {
    table.AddRow({row.model, util::TextTable::Percent(row.accuracy.top1()),
                  util::TextTable::Percent(row.accuracy.top2()),
                  util::TextTable::Percent(row.accuracy.top3())});
  }
  std::cout << "\nOverall prediction accuracy (cf. paper Table 4):\n"
            << table.ToString();

  // A what-if query, the way the congestion mitigation system uses TIPSY:
  // take the first flow, pretend its current top link gets a withdrawal,
  // and ask where the bytes would go.
  const auto flow = world.FlowFeaturesOf(0);
  const auto& best = experiment.tipsy->Best();
  const auto baseline = best.Predict(flow, 3, nullptr);
  if (!baseline.empty()) {
    std::cout << "\nWhat-if for one flow (src AS "
              << flow.src_asn.value() << ", prefix "
              << flow.src_prefix24.ToString() << "):\n";
    std::cout << "  today it ingresses mostly via link "
              << baseline.front().link.value() << " ("
              << world.wan().link(baseline.front().link).router << ", peer AS "
              << world.wan().link(baseline.front().link).peer_asn.value()
              << ")\n";
    core::ExclusionMask withdrawn(world.wan().link_count(), false);
    withdrawn[baseline.front().link.value()] = true;
    const auto shifted = best.Predict(flow, 3, &withdrawn);
    std::cout << "  after a withdrawal there, TIPSY predicts:\n";
    for (const auto& p : shifted) {
      const auto& link = world.wan().link(p.link);
      std::cout << "    link " << p.link.value() << " @" << link.router
                << " (peer AS " << link.peer_asn.value() << ", "
                << link.capacity_gbps << "G): "
                << util::TextTable::Percent(p.probability)
                << "% of the bytes\n";
    }
  }
  std::cout << "\nDone.\n";
  return 0;
}
