#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "topo/as_graph.h"
#include "topo/generator.h"

namespace tipsy::topo {
namespace {

TEST(Relationship, ReverseIsInvolution) {
  for (auto r : {Relationship::kProvider, Relationship::kCustomer,
                 Relationship::kPeer}) {
    EXPECT_EQ(Reverse(Reverse(r)), r);
  }
  EXPECT_EQ(Reverse(Relationship::kProvider), Relationship::kCustomer);
  EXPECT_EQ(Reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(AsGraph, AdjacencyAddedOnBothSides) {
  AsGraph graph;
  const auto a = graph.AddNode(AsId{1}, AsType::kEnterprise, "a",
                               {MetroId{0}});
  const auto b = graph.AddNode(AsId{2}, AsType::kTier1, "b", {MetroId{0}});
  graph.AddAdjacency(a, b, Relationship::kProvider,
                     {InterconnectPoint{MetroId{0}, {}}});
  ASSERT_EQ(graph.node(a).adjacencies.size(), 1u);
  ASSERT_EQ(graph.node(b).adjacencies.size(), 1u);
  EXPECT_EQ(graph.node(a).adjacencies[0].rel, Relationship::kProvider);
  EXPECT_EQ(graph.node(b).adjacencies[0].rel, Relationship::kCustomer);
  EXPECT_TRUE(graph.Validate().empty()) << graph.Validate();
}

TEST(AsGraph, ValidateCatchesMissingPresence) {
  AsGraph graph;
  const auto a = graph.AddNode(AsId{1}, AsType::kEnterprise, "a",
                               {MetroId{0}});
  const auto b = graph.AddNode(AsId{2}, AsType::kTier1, "b", {MetroId{1}});
  // Interconnect at metro 0, which b does not have.
  graph.AddAdjacency(a, b, Relationship::kProvider,
                     {InterconnectPoint{MetroId{0}, {}}});
  EXPECT_FALSE(graph.Validate().empty());
}

TEST(AsGraph, ValidateCatchesCustomerProviderCycle) {
  AsGraph graph;
  const auto a = graph.AddNode(AsId{1}, AsType::kAccessIsp, "a",
                               {MetroId{0}});
  const auto b = graph.AddNode(AsId{2}, AsType::kAccessIsp, "b",
                               {MetroId{0}});
  const auto c = graph.AddNode(AsId{3}, AsType::kAccessIsp, "c",
                               {MetroId{0}});
  // a buys from b, b buys from c, c buys from a: a cycle in the economy.
  graph.AddAdjacency(a, b, Relationship::kProvider,
                     {InterconnectPoint{MetroId{0}, {}}});
  graph.AddAdjacency(b, c, Relationship::kProvider,
                     {InterconnectPoint{MetroId{0}, {}}});
  graph.AddAdjacency(c, a, Relationship::kProvider,
                     {InterconnectPoint{MetroId{0}, {}}});
  EXPECT_NE(graph.Validate().find("cycle"), std::string::npos);
}

TEST(AsGraph, WanNodeFound) {
  AsGraph graph;
  graph.AddNode(AsId{1}, AsType::kTier1, "t", {MetroId{0}});
  const auto wan = graph.AddNode(AsId{8075}, AsType::kCloudWan, "wan",
                                 {MetroId{0}});
  EXPECT_EQ(graph.wan_node(), wan);
}

TEST(AsGraph, NodesOfAsnFindsPockets) {
  AsGraph graph;
  const auto p1 = graph.AddNode(AsId{100}, AsType::kCdnPocket, "cdn-eu",
                                {MetroId{0}});
  const auto p2 = graph.AddNode(AsId{100}, AsType::kCdnPocket, "cdn-us",
                                {MetroId{1}});
  graph.AddNode(AsId{101}, AsType::kTier1, "t", {MetroId{0}});
  const auto pockets = graph.NodesOfAsn(AsId{100});
  EXPECT_EQ(pockets.size(), 2u);
  EXPECT_EQ(pockets[0], p1);
  EXPECT_EQ(pockets[1], p2);
}

// ------------------------------------------------------------ generator

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedTest, GeneratedGraphIsValid) {
  GeneratorConfig cfg;
  cfg.seed = GetParam();
  cfg.metro_count = 24;
  cfg.tier1_count = 4;
  cfg.regionals_per_continent = 2;
  cfg.access_isp_count = 25;
  cfg.cdn_count = 3;
  cfg.enterprise_count = 40;
  cfg.exchange_count = 2;
  cfg.wan_metro_count = 12;
  const auto topology = GenerateTopology(cfg);
  EXPECT_TRUE(topology.graph.Validate().empty())
      << topology.graph.Validate();
  EXPECT_FALSE(topology.peering_links.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 2, 3, 42, 999, 123456));

TEST(Generator, DeterministicForSeed) {
  const auto a = GenerateTinyTopology();
  const auto b = GenerateTinyTopology();
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  ASSERT_EQ(a.peering_links.size(), b.peering_links.size());
  for (std::size_t i = 0; i < a.peering_links.size(); ++i) {
    EXPECT_EQ(a.peering_links[i].metro, b.peering_links[i].metro);
    EXPECT_EQ(a.peering_links[i].peer_node, b.peering_links[i].peer_node);
    EXPECT_EQ(a.peering_links[i].capacity_gbps,
              b.peering_links[i].capacity_gbps);
  }
}

TEST(Generator, LinkIdsAreDenseAndOrdered) {
  const auto topology = GenerateTinyTopology();
  for (std::size_t i = 0; i < topology.peering_links.size(); ++i) {
    EXPECT_EQ(topology.peering_links[i].id.value(), i);
    EXPECT_GT(topology.peering_links[i].capacity_gbps, 0.0);
    EXPECT_FALSE(topology.peering_links[i].router.empty());
  }
}

TEST(Generator, WanLinksMatchGraphAdjacencies) {
  const auto topology = GenerateTinyTopology();
  // Every peering link id must appear exactly once in some adjacency
  // towards the WAN, at the right metro and right peer node.
  std::unordered_set<std::uint32_t> seen;
  for (const auto& node : topology.graph.nodes()) {
    for (const auto& adj : node.adjacencies) {
      if (adj.neighbor != topology.wan) continue;
      for (const auto& point : adj.points) {
        for (auto link : point.wan_links) {
          EXPECT_TRUE(seen.insert(link.value()).second)
              << "link appears twice";
          const auto& spec = topology.peering_links[link.value()];
          EXPECT_EQ(spec.peer_node, node.id);
          EXPECT_EQ(spec.metro, point.metro);
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), topology.peering_links.size());
}

TEST(Generator, CdnPocketsShareAsnAcrossContinents) {
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.metro_count = 40;
  cfg.cdn_count = 4;
  cfg.cdn_min_pockets = 3;
  cfg.cdn_max_pockets = 3;
  const auto topology = GenerateTopology(cfg);
  std::size_t multi_pocket_asns = 0;
  std::set<AsId> cdn_asns;
  for (const auto& node : topology.graph.nodes()) {
    if (node.type == AsType::kCdnPocket) cdn_asns.insert(node.asn);
  }
  for (AsId asn : cdn_asns) {
    const auto pockets = topology.graph.NodesOfAsn(asn);
    if (pockets.size() < 2) continue;
    ++multi_pocket_asns;
    // Pockets never share a presence metro (they live on different
    // continents by construction).
    std::set<MetroId> metros;
    std::size_t total = 0;
    for (auto id : pockets) {
      const auto& presence = topology.graph.node(id).presence;
      metros.insert(presence.begin(), presence.end());
      total += presence.size();
    }
    EXPECT_EQ(metros.size(), total) << "pockets overlap in presence";
    // And there is no direct adjacency between pockets (no backbone).
    for (auto id : pockets) {
      for (const auto& adj : topology.graph.node(id).adjacencies) {
        EXPECT_EQ(std::count(pockets.begin(), pockets.end(), adj.neighbor),
                  0);
      }
    }
  }
  EXPECT_GT(multi_pocket_asns, 0u);
}

TEST(Generator, WanBuysTransitFromConfiguredCount) {
  const auto topology = GenerateTinyTopology();
  std::size_t transit_providers = 0;
  for (const auto& adj : topology.graph.node(topology.wan).adjacencies) {
    if (adj.rel == Relationship::kProvider) ++transit_providers;
  }
  EXPECT_EQ(transit_providers, 1u);  // tiny config uses 1
}

TEST(Generator, PeerTypesRepresented) {
  GeneratorConfig cfg;  // defaults
  cfg.seed = 7;
  const auto topology = GenerateTopology(cfg);
  std::set<AsType> types;
  for (const auto& link : topology.peering_links) {
    types.insert(link.peer_type);
  }
  EXPECT_TRUE(types.contains(AsType::kTier1));
  EXPECT_TRUE(types.contains(AsType::kRegionalTransit));
  EXPECT_TRUE(types.contains(AsType::kCdnPocket));
  EXPECT_TRUE(types.contains(AsType::kExchange));
}

}  // namespace
}  // namespace tipsy::topo
