#include <gtest/gtest.h>

#include "risk/risk.h"
#include "scenario/experiment.h"

namespace tipsy::risk {
namespace {

class RiskTest : public ::testing::Test {
 protected:
  RiskTest() {
    auto cfg = scenario::TinyScenarioConfig();
    cfg.traffic.flow_target = 600;
    cfg.horizon = util::HourRange{0, 16 * util::kHoursPerDay};
    world_ = std::make_unique<scenario::Scenario>(cfg);
    auto windows = scenario::PaperWindows();
    windows.train = util::HourRange{0, 14 * util::kHoursPerDay};
    windows.test = util::HourRange{windows.train.end,
                                   windows.train.end + 24};
    experiment_ = std::make_unique<scenario::ExperimentResult>(
        scenario::RunExperiment(*world_, windows));
  }

  pipeline::AggRow FlowOn(util::LinkId link, std::uint32_t asn,
                          double bytes) const {
    pipeline::AggRow row;
    row.link = link;
    row.src_asn = util::AsId{asn};
    row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, asn, 0), 24);
    row.src_metro = util::MetroId{0};
    const auto& destination = world_->wan().destination(0);
    row.dest_region = destination.region;
    row.dest_service = destination.service;
    row.dest_prefix = destination.prefix;
    row.bytes = static_cast<std::uint64_t>(bytes);
    return row;
  }

  std::unique_ptr<scenario::Scenario> world_;
  std::unique_ptr<scenario::ExperimentResult> experiment_;
};

TEST_F(RiskTest, NoTrafficNoFindings) {
  RiskAnalyzer analyzer(&world_->wan(), experiment_->tipsy.get());
  const std::vector<double> idle(world_->wan().link_count(), 0.0);
  analyzer.ObserveHour(0, idle, {});
  EXPECT_TRUE(analyzer.Findings().empty());
  EXPECT_EQ(analyzer.hours_observed(), 1u);
}

TEST_F(RiskTest, CountsTypicalHotHours) {
  RiskAnalyzer analyzer(&world_->wan(), experiment_->tipsy.get());
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  const util::LinkId hot{1};
  loads[hot.value()] =
      world_->wan().link(hot).CapacityBytesPerHour() * 0.9;
  // Some real flow on another link predicted to shift onto `hot`.
  // Use a trained flow: take an eval case from the experiment.
  analyzer.ObserveHour(0, loads, {});
  analyzer.ObserveHour(1, loads, {});
  // Typical hot hours are tracked internally; findings require induced
  // hours, so this just checks the no-crash bookkeeping path.
  EXPECT_EQ(analyzer.hours_observed(), 2u);
}

TEST_F(RiskTest, FindsInducedOverload) {
  // Train a dedicated service so we control exactly where the flow's
  // alternative link is.
  core::TipsyService tipsy(&world_->wan(), &world_->metros());
  const util::LinkId primary{0};
  const util::LinkId alternate{1};
  std::vector<pipeline::AggRow> training{
      FlowOn(primary, 7, 8e11), FlowOn(alternate, 7, 2e11)};
  tipsy.Train(training);
  tipsy.FinalizeTraining();

  RiskConfig config;
  config.prediction_k = 2;
  RiskAnalyzer analyzer(&world_->wan(), &tipsy, config);

  // Hour state: primary carries a big flow; alternate sits just under
  // the 70% threshold, so the predicted shift pushes it over.
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  const double alt_cap =
      world_->wan().link(alternate).CapacityBytesPerHour();
  const double primary_cap =
      world_->wan().link(primary).CapacityBytesPerHour();
  loads[primary.value()] = primary_cap * 0.5;
  loads[alternate.value()] = alt_cap * 0.65;
  const auto flow_row = FlowOn(primary, 7, alt_cap * 0.2);
  for (int h = 0; h < 5; ++h) {
    analyzer.ObserveHour(h, loads,
                         std::vector<pipeline::AggRow>{flow_row});
  }
  const auto findings = analyzer.Findings();
  ASSERT_FALSE(findings.empty());
  bool found = false;
  for (const auto& finding : findings) {
    if (finding.link == alternate && finding.affecting == primary) {
      found = true;
      EXPECT_EQ(finding.predicted_hours, 5u);
      EXPECT_EQ(finding.typical_hours, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RiskTest, AlreadyHotLinksNotDoubleCounted) {
  core::TipsyService tipsy(&world_->wan(), &world_->metros());
  const util::LinkId primary{0};
  const util::LinkId alternate{1};
  std::vector<pipeline::AggRow> training{
      FlowOn(primary, 7, 8e11), FlowOn(alternate, 7, 2e11)};
  tipsy.Train(training);
  tipsy.FinalizeTraining();
  RiskAnalyzer analyzer(&world_->wan(), &tipsy);

  // The alternate is ALREADY above threshold: an outage of the primary
  // does not create a new hot hour there.
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  const double alt_cap =
      world_->wan().link(alternate).CapacityBytesPerHour();
  loads[primary.value()] =
      world_->wan().link(primary).CapacityBytesPerHour() * 0.5;
  loads[alternate.value()] = alt_cap * 0.8;
  analyzer.ObserveHour(0, loads,
                       {std::vector<pipeline::AggRow>{
                           FlowOn(primary, 7, alt_cap * 0.2)}});
  for (const auto& finding : analyzer.Findings()) {
    EXPECT_FALSE(finding.link == alternate &&
                 finding.affecting == primary);
  }
}

TEST_F(RiskTest, FindingsRankedByPredictedHours) {
  RiskAnalyzer analyzer(&world_->wan(), experiment_->tipsy.get());
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  std::vector<pipeline::AggRow> rows;
  // Put every trained flow's bytes on its own links via the experiment's
  // eval data, several hours in a row, with moderate background.
  analyzer.ObserveHour(0, loads, rows);
  const auto findings = analyzer.Findings();
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_GE(findings[i - 1].predicted_hours, findings[i].predicted_hours);
  }
}

TEST_F(RiskTest, GranularityGroupsLinks) {
  core::TipsyService tipsy(&world_->wan(), &world_->metros());
  tipsy.Train({});
  tipsy.FinalizeTraining();
  RiskConfig link_cfg;
  link_cfg.granularity = OutageGranularity::kLink;
  RiskConfig router_cfg;
  router_cfg.granularity = OutageGranularity::kRouter;
  RiskConfig site_cfg;
  site_cfg.granularity = OutageGranularity::kSite;
  const RiskAnalyzer by_link(&world_->wan(), &tipsy, link_cfg);
  const RiskAnalyzer by_router(&world_->wan(), &tipsy, router_cfg);
  const RiskAnalyzer by_site(&world_->wan(), &tipsy, site_cfg);
  // Groups get coarser: links >= routers >= sites, and one group per link
  // at the finest granularity.
  EXPECT_EQ(by_link.group_count(), world_->wan().link_count());
  EXPECT_LE(by_router.group_count(), by_link.group_count());
  EXPECT_LE(by_site.group_count(), by_router.group_count());
  // Distinct metros exist in the tiny WAN, so sites < links.
  EXPECT_LT(by_site.group_count(), by_link.group_count());
}

TEST_F(RiskTest, SiteOutageShiftsWholeSite) {
  // Train a flow arriving on TWO links at the same metro plus one link
  // elsewhere. A site outage of the shared metro must shift the flow to
  // the remote link - a link-level outage of just one of them must not.
  const auto& wan = world_->wan();
  const util::LinkId a{0};
  util::LinkId sibling, remote;
  for (const auto& link : wan.links()) {
    if (link.id == a) continue;
    if (link.metro == wan.link(a).metro && !sibling.valid()) {
      sibling = link.id;
    } else if (link.metro != wan.link(a).metro && !remote.valid()) {
      remote = link.id;
    }
  }
  ASSERT_TRUE(sibling.valid());
  ASSERT_TRUE(remote.valid());

  core::TipsyService tipsy(&wan, &world_->metros());
  std::vector<pipeline::AggRow> training{FlowOn(a, 7, 5e11),
                                         FlowOn(sibling, 7, 3e11),
                                         FlowOn(remote, 7, 2e11)};
  tipsy.Train(training);
  tipsy.FinalizeTraining();

  RiskConfig cfg;
  cfg.granularity = OutageGranularity::kSite;
  RiskAnalyzer analyzer(&wan, &tipsy, cfg);
  std::vector<double> loads(wan.link_count(), 0.0);
  const double remote_cap = wan.link(remote).CapacityBytesPerHour();
  loads[a.value()] = wan.link(a).CapacityBytesPerHour() * 0.4;
  loads[remote.value()] = remote_cap * 0.65;
  analyzer.ObserveHour(0, loads,
                       std::vector<pipeline::AggRow>{
                           FlowOn(a, 7, remote_cap * 0.2)});
  bool found = false;
  for (const auto& finding : analyzer.Findings()) {
    if (finding.link == remote) {
      found = true;
      EXPECT_NE(finding.affecting_label.find("site:"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tipsy::risk
