// The networked serving plane (src/net): wire codecs, the framed
// TIPSYHJ1 stream decoder, tipsyd's four listeners over loopback, the
// reconnecting clients, and the socket fault matrix.
//
// The load-bearing property mirrors ha_test's: after any injected
// network fault — reset mid-frame, partition, refused connections, slow
// drip — the daemon's replica must be *bit-identical* (core::SaveService
// bytes) to one fed the same hours in-process with no network at all.
// Idempotent resume means zero duplicate applications, not "mostly one".
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cms/whatif.h"
#include "core/online.h"
#include "core/serialize.h"
#include "ha/journal.h"
#include "ha/replica.h"
#include "net/auth.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/socket.h"
#include "net/wire.h"
#include "scenario/fault_injection.h"
#include "topo/generator.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace tipsy {
namespace {

// ---------------------------------------------------------------- fixtures

pipeline::AggRow MakeRow(std::uint32_t f, std::uint32_t link,
                         util::HourIndex hour, std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = util::AsId{100 + f};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(f << 8), 24);
  row.src_metro = util::MetroId{f % 2};
  row.dest_region = util::RegionId{0};
  row.dest_service = wan::ServiceType::kWeb;
  row.dest_prefix = util::PrefixId{1};
  row.bytes = bytes;
  row.hour = hour;
  return row;
}

std::string ServiceBytes(const core::TipsyService* service) {
  if (service == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*service, out);
  return out.str();
}

struct TempDir {
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("tipsy_net_" + name + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }

  [[nodiscard]] std::string File(const std::string& name) const {
    return (path / name).string();
  }

  std::filesystem::path path;
};

struct NetFixture {
  NetFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  [[nodiscard]] std::vector<pipeline::AggRow> HourRows(
      util::HourIndex hour) const {
    std::vector<pipeline::AggRow> rows;
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (std::uint32_t f = 0; f < 4; ++f) {
      rows.push_back(MakeRow(f, (f + static_cast<std::uint32_t>(hour)) % links,
                             hour, 500 + 13 * f + 7 * hour));
    }
    return rows;
  }

  [[nodiscard]] ha::ReplicaConfig MakeReplicaConfig(
      const TempDir& dir, const std::string& prefix) const {
    ha::ReplicaConfig config;
    config.journal_path = dir.File(prefix + ".journal");
    config.snapshot_path = dir.File(prefix + ".snapshot");
    config.fsync_appends = false;
    return config;
  }

  [[nodiscard]] util::StatusOr<ha::Replica> OpenReplica(
      const ha::ReplicaConfig& config) const {
    return ha::Replica::Open(&wan, &topology.metros, /*window_days=*/3, {},
                             {}, config);
  }

  // Default auth for every daemon and client the fixture builds,
  // resolved from TIPSY_AUTH_KEY: CI's net-auth leg re-runs this entire
  // suite over the authenticated v2 wire just by exporting the key.
  // Tests that pin a specific key (or its absence) set .auth themselves
  // and are unaffected — a mismatched env key still refuses, which is
  // what those tests assert.
  [[nodiscard]] static net::AuthKey EnvAuth() {
    auto key = net::ResolveAuthKey("");
    return key.ok() ? *key : net::AuthKey{};
  }

  [[nodiscard]] net::DaemonConfig FastDaemonConfig() const {
    net::DaemonConfig config;
    config.io_deadline_ms = 500;
    config.idle_poll_ms = 10;
    config.auth = EnvAuth();
    return config;
  }

  [[nodiscard]] net::ClientConfig FastClientConfig(std::uint16_t port) const {
    net::ClientConfig config;
    config.port = port;
    config.connect_timeout_ms = 500;
    config.io_deadline_ms = 300;
    config.backoff.initial_ms = 5;
    config.backoff.max_ms = 50;
    config.auth = EnvAuth();
    return config;
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::string ScrapeMetrics(std::uint16_t port) {
  auto socket = net::Connect("127.0.0.1", port, 1000);
  if (!socket.ok()) return {};
  (void)socket->SetReadDeadline(2000);
  (void)socket->SetWriteDeadline(2000);
  if (!socket->SendAll("GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").ok()) {
    return {};
  }
  std::string response;
  for (;;) {
    auto chunk = socket->RecvSome(4096);
    if (!chunk.ok()) break;  // kNoData once the daemon closes
    response += *chunk;
  }
  return response;
}

// ------------------------------------------------------------- wire codecs

TEST(WireCodec, EnvelopeRoundTripsEveryType) {
  const std::string payload = "the payload";
  for (const auto type :
       {net::MessageType::kIngestHello, net::MessageType::kIngestAck,
        net::MessageType::kShipRequest, net::MessageType::kPredictRequest,
        net::MessageType::kPredictResponse, net::MessageType::kHeartbeat}) {
    const std::string bytes = net::EncodeMessage(type, payload);
    std::size_t pos = 0;
    auto message = net::DecodeMessage(bytes, pos);
    ASSERT_TRUE(message.ok()) << message.status().ToString();
    EXPECT_EQ(message->type, type);
    EXPECT_EQ(message->payload, payload);
    EXPECT_EQ(pos, bytes.size());
  }
}

TEST(WireCodec, PayloadCodecsRoundTrip) {
  const net::IngestHello hello{net::kWireProtocolVersion};
  auto hello2 = net::DecodeIngestHello(net::EncodeIngestHello(hello));
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2->protocol_version, hello.protocol_version);

  net::IngestAck ack;
  ack.last_applied_hour = 123;
  ack.next_seq = 77;
  auto ack2 = net::DecodeIngestAck(net::EncodeIngestAck(ack));
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->last_applied_hour, ack.last_applied_hour);
  EXPECT_EQ(ack2->next_seq, ack.next_seq);
  // The "nothing applied yet" sentinel survives the zigzag.
  net::IngestAck fresh;
  auto fresh2 = net::DecodeIngestAck(net::EncodeIngestAck(fresh));
  ASSERT_TRUE(fresh2.ok());
  EXPECT_EQ(fresh2->last_applied_hour, -1);

  net::ShipRequest ship;
  ship.from_seq = 99;
  auto ship2 = net::DecodeShipRequest(net::EncodeShipRequest(ship));
  ASSERT_TRUE(ship2.ok());
  EXPECT_EQ(ship2->from_seq, ship.from_seq);

  net::HeartbeatReport beat;
  beat.member_index = 2;
  beat.hour = 48;
  beat.applied_seq = 1234;
  beat.health = core::ModelHealth::kStale;
  auto beat2 = net::DecodeHeartbeat(net::EncodeHeartbeat(beat));
  ASSERT_TRUE(beat2.ok());
  EXPECT_EQ(beat2->member_index, beat.member_index);
  EXPECT_EQ(beat2->hour, beat.hour);
  EXPECT_EQ(beat2->applied_seq, beat.applied_seq);
  EXPECT_EQ(beat2->health, beat.health);
}

TEST(WireCodec, AckCreditsAndSnapshotPayloadsRoundTrip) {
  // IngestAck v2: the batched-ack cursor and the credit window survive
  // the varints (these two fields ARE the backpressure protocol).
  net::IngestAck ack;
  ack.last_applied_hour = 123;
  ack.next_seq = 500;
  ack.acked_wire_seq = 77;
  ack.credits = 64;
  auto ack2 = net::DecodeIngestAck(net::EncodeIngestAck(ack));
  ASSERT_TRUE(ack2.ok()) << ack2.status().ToString();
  EXPECT_EQ(ack2->acked_wire_seq, 77u);
  EXPECT_EQ(ack2->credits, 64u);

  net::SnapshotOffer offer;
  offer.applied_seq = 1234;
  offer.total_bytes = 987654;
  offer.total_crc32c = 0xdeadbeef;
  auto offer2 = net::DecodeSnapshotOffer(net::EncodeSnapshotOffer(offer));
  ASSERT_TRUE(offer2.ok()) << offer2.status().ToString();
  EXPECT_EQ(offer2->protocol_version, net::kWireProtocolVersion);
  EXPECT_EQ(offer2->applied_seq, 1234u);
  EXPECT_EQ(offer2->total_bytes, 987654u);
  EXPECT_EQ(offer2->total_crc32c, 0xdeadbeefu);

  // Chunk data is opaque snapshot bytes: NULs and high bytes included.
  net::SnapshotChunk chunk;
  chunk.index = 3;
  chunk.data = "snapshot bytes";
  chunk.data.push_back('\0');
  chunk.data.push_back('\xff');
  auto chunk2 = net::DecodeSnapshotChunk(net::EncodeSnapshotChunk(chunk));
  ASSERT_TRUE(chunk2.ok()) << chunk2.status().ToString();
  EXPECT_EQ(chunk2->index, 3u);
  EXPECT_EQ(chunk2->data, chunk.data);
  net::SnapshotChunk empty;
  auto empty2 = net::DecodeSnapshotChunk(net::EncodeSnapshotChunk(empty));
  ASSERT_TRUE(empty2.ok()) << empty2.status().ToString();
  EXPECT_TRUE(empty2->data.empty());

  // Every truncation of the offer refuses with a typed code — a partial
  // parse here would start a transfer against the wrong seq or CRC.
  const std::string offer_bytes = net::EncodeSnapshotOffer(offer);
  for (std::size_t keep = 0; keep < offer_bytes.size(); ++keep) {
    EXPECT_FALSE(
        net::DecodeSnapshotOffer(offer_bytes.substr(0, keep)).ok())
        << "accepted " << keep << "-byte prefix";
  }
}

TEST(WireCodec, PredictPayloadsRoundTripBitExactly) {
  NetFixture fixture;
  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(7)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes) * 1.25});
  }
  request.excluded = {util::LinkId{0}, util::LinkId{3}, util::LinkId{4}};
  auto request2 =
      net::DecodePredictRequest(net::EncodePredictRequest(request));
  ASSERT_TRUE(request2.ok()) << request2.status().ToString();
  ASSERT_EQ(request2->flows.size(), request.flows.size());
  for (std::size_t i = 0; i < request.flows.size(); ++i) {
    EXPECT_EQ(request2->flows[i].flow.src_asn.value(),
              request.flows[i].flow.src_asn.value());
    EXPECT_EQ(request2->flows[i].flow.src_prefix24,
              request.flows[i].flow.src_prefix24);
    EXPECT_EQ(request2->flows[i].bytes, request.flows[i].bytes);
  }
  ASSERT_EQ(request2->excluded.size(), request.excluded.size());
  for (std::size_t i = 0; i < request.excluded.size(); ++i) {
    EXPECT_EQ(request2->excluded[i].value(), request.excluded[i].value());
  }

  net::PredictResponse response;
  response.prediction.shifted = {{util::LinkId{1}, 100.5},
                                 {util::LinkId{6}, 0.125}};
  response.prediction.unpredicted_bytes = 17.75;
  response.health = core::ModelHealth::kExpired;
  auto response2 =
      net::DecodePredictResponse(net::EncodePredictResponse(response));
  ASSERT_TRUE(response2.ok()) << response2.status().ToString();
  ASSERT_EQ(response2->prediction.shifted.size(), 2u);
  EXPECT_EQ(response2->prediction.shifted[0].first.value(), 1u);
  EXPECT_EQ(response2->prediction.shifted[0].second, 100.5);
  EXPECT_EQ(response2->prediction.shifted[1].second, 0.125);
  EXPECT_EQ(response2->prediction.unpredicted_bytes, 17.75);
  EXPECT_EQ(response2->health, core::ModelHealth::kExpired);
}

TEST(WireCodec, WhatIfPayloadsRoundTripBitExactly) {
  NetFixture fixture;
  net::WhatIfRequest request;
  request.rows = fixture.HourRows(7);
  request.link_loads = {0.0, 1.5e12, 3.25, 0.0, 7e9, 0.125, 0.0, 42.0};
  request.candidates.push_back({util::LinkId{2}, {}});  // drain
  request.candidates.push_back(
      {util::LinkId{5}, {util::PrefixId{1}, util::PrefixId{9}}});
  request.prediction_k = 5;
  request.safety_headroom = 0.9;
  auto request2 =
      net::DecodeWhatIfRequest(net::EncodeWhatIfRequest(request));
  ASSERT_TRUE(request2.ok()) << request2.status().ToString();
  ASSERT_EQ(request2->rows.size(), request.rows.size());
  for (std::size_t i = 0; i < request.rows.size(); ++i) {
    EXPECT_EQ(request2->rows[i].link, request.rows[i].link);
    EXPECT_EQ(request2->rows[i].dest_prefix, request.rows[i].dest_prefix);
    EXPECT_EQ(request2->rows[i].bytes, request.rows[i].bytes);
  }
  EXPECT_EQ(request2->link_loads, request.link_loads);
  ASSERT_EQ(request2->candidates.size(), 2u);
  EXPECT_EQ(request2->candidates[0].link, util::LinkId{2});
  EXPECT_TRUE(request2->candidates[0].prefixes.empty());
  ASSERT_EQ(request2->candidates[1].prefixes.size(), 2u);
  EXPECT_EQ(request2->candidates[1].prefixes[1], util::PrefixId{9});
  EXPECT_EQ(request2->prediction_k, 5u);
  EXPECT_EQ(request2->safety_headroom, 0.9);

  net::WhatIfResponse response;
  cms::WhatIfReport report;
  report.candidate_index = 1;
  report.link = util::LinkId{5};
  report.matched_bytes = 1000.25;
  report.moved_bytes = 900.5;
  report.unpredicted_bytes = 99.75;
  report.safe = false;
  report.spills.push_back({util::LinkId{3}, 900.5, 1.0625, true});
  response.reports.push_back(report);
  response.health = core::ModelHealth::kStale;
  response.drift_state = core::DriftState::kDrifting;
  auto response2 =
      net::DecodeWhatIfResponse(net::EncodeWhatIfResponse(response));
  ASSERT_TRUE(response2.ok()) << response2.status().ToString();
  ASSERT_EQ(response2->reports.size(), 1u);
  const auto& decoded = response2->reports[0];
  EXPECT_EQ(decoded.candidate_index, 1u);
  EXPECT_EQ(decoded.link, util::LinkId{5});
  EXPECT_EQ(decoded.matched_bytes, 1000.25);
  EXPECT_EQ(decoded.moved_bytes, 900.5);
  EXPECT_EQ(decoded.unpredicted_bytes, 99.75);
  EXPECT_FALSE(decoded.safe);
  ASSERT_EQ(decoded.spills.size(), 1u);
  EXPECT_EQ(decoded.spills[0].link, util::LinkId{3});
  EXPECT_EQ(decoded.spills[0].bytes, 900.5);
  EXPECT_EQ(decoded.spills[0].projected_utilization, 1.0625);
  EXPECT_TRUE(decoded.spills[0].over_headroom);
  EXPECT_EQ(response2->health, core::ModelHealth::kStale);
  EXPECT_EQ(response2->drift_state, core::DriftState::kDrifting);

  // Every truncation of either payload fails typed - never a crash,
  // never a silently shorter parse.
  const std::string request_bytes = net::EncodeWhatIfRequest(request);
  for (std::size_t keep = 0; keep < request_bytes.size(); ++keep) {
    auto damaged = net::DecodeWhatIfRequest(request_bytes.substr(0, keep));
    ASSERT_FALSE(damaged.ok()) << "request cut at " << keep;
    const auto code = damaged.status().code();
    EXPECT_TRUE(code == util::StatusCode::kTruncated ||
                code == util::StatusCode::kCorrupt)
        << "request cut at " << keep << ": " << damaged.status().ToString();
  }
  const std::string response_bytes = net::EncodeWhatIfResponse(response);
  for (std::size_t keep = 0; keep < response_bytes.size(); ++keep) {
    auto damaged =
        net::DecodeWhatIfResponse(response_bytes.substr(0, keep));
    ASSERT_FALSE(damaged.ok()) << "response cut at " << keep;
    const auto code = damaged.status().code();
    EXPECT_TRUE(code == util::StatusCode::kTruncated ||
                code == util::StatusCode::kCorrupt)
        << "response cut at " << keep << ": "
        << damaged.status().ToString();
  }
}

// Every single-byte flip of a valid envelope must decode to a typed
// error (or a strictly shorter valid parse) — never a crash, never an
// uncaught mutation: the CRC covers the type byte and the payload, and
// the header fields are each validated.
TEST(WireCodec, EnvelopeByteFlipFuzzIsTyped) {
  const std::string bytes = net::EncodeMessage(
      net::MessageType::kPredictRequest, "some payload bytes here");
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = scenario::FlipBit(bytes, i, bit);
      std::size_t pos = 0;
      auto message = net::DecodeMessage(damaged, pos);
      ASSERT_FALSE(message.ok())
          << "flip at byte " << i << " bit " << bit << " went undetected";
      const auto code = message.status().code();
      EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                  code == util::StatusCode::kTruncated)
          << "byte " << i << " bit " << bit << ": "
          << message.status().ToString();
    }
  }
}

TEST(WireCodec, EnvelopeTruncationIsTruncated) {
  const std::string bytes =
      net::EncodeMessage(net::MessageType::kHeartbeat, "payload");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::size_t pos = 0;
    auto message = net::DecodeMessage(bytes.substr(0, cut), pos);
    ASSERT_FALSE(message.ok()) << "cut at " << cut;
    EXPECT_EQ(message.status().code(), util::StatusCode::kTruncated)
        << "cut at " << cut << ": " << message.status().ToString();
  }
}

// ---------------------------------------------------- journal stream codec

std::vector<ha::JournalRecord> MakeJournalRecords(const NetFixture& fixture,
                                                  std::uint64_t base_seq,
                                                  int count) {
  std::vector<ha::JournalRecord> records;
  for (int i = 0; i < count; ++i) {
    ha::JournalRecord record;
    record.seq = base_seq + static_cast<std::uint64_t>(i);
    record.hour = static_cast<util::HourIndex>(i);
    if (i % 3 == 2) {
      record.kind = ha::JournalRecordKind::kHeartbeat;
    } else {
      record.kind = ha::JournalRecordKind::kIngest;
      record.rows = fixture.HourRows(record.hour);
    }
    records.push_back(std::move(record));
  }
  return records;
}

std::string EncodeStream(const std::vector<ha::JournalRecord>& records,
                         std::vector<std::size_t>* boundaries = nullptr) {
  std::string stream(ha::JournalMagic());
  if (boundaries != nullptr) boundaries->push_back(stream.size());
  for (const auto& record : records) {
    stream += ha::EncodeJournalRecord(record);
    if (boundaries != nullptr) boundaries->push_back(stream.size());
  }
  return stream;
}

TEST(JournalStream, DecodesOneByteAtATime) {
  NetFixture fixture;
  const auto records = MakeJournalRecords(fixture, /*base_seq=*/5, 6);
  const std::string stream = EncodeStream(records);

  net::JournalStreamDecoder decoder(/*base_seq=*/5);
  std::vector<ha::JournalRecord> out;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(decoder.Feed(stream.substr(i, 1), out).ok()) << "byte " << i;
  }
  EXPECT_TRUE(decoder.Finish().ok()) << decoder.Finish().ToString();
  ASSERT_EQ(out.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out[i].seq, records[i].seq);
    EXPECT_EQ(out[i].kind, records[i].kind);
    EXPECT_EQ(out[i].hour, records[i].hour);
    EXPECT_EQ(out[i].rows.size(), records[i].rows.size());
  }
  EXPECT_EQ(decoder.next_seq(), 11u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(JournalStream, ByteFlipFuzzIsTypedNeverCrashes) {
  NetFixture fixture;
  const auto records = MakeJournalRecords(fixture, 0, 4);
  const std::string stream = EncodeStream(records);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      const std::string damaged = scenario::FlipBit(stream, i, bit);
      net::JournalStreamDecoder decoder(0);
      std::vector<ha::JournalRecord> out;
      const auto fed = decoder.Feed(damaged, out);
      const auto finished = decoder.Finish();
      // A flip may truncate framing (longer claimed length) or corrupt a
      // frame (CRC / magic / seq), but it must never decode the full
      // stream clean, and the failure must be typed.
      const bool clean = fed.ok() && finished.ok() &&
                         out.size() == records.size();
      ASSERT_FALSE(clean) << "flip at byte " << i << " bit " << bit
                          << " went undetected";
      const util::Status& failure = fed.ok() ? finished : fed;
      const auto code = failure.code();
      EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                  code == util::StatusCode::kTruncated ||
                  code == util::StatusCode::kVersionMismatch)
          << "byte " << i << " bit " << bit << ": " << failure.ToString();
      EXPECT_LT(out.size(), records.size() + 1);
    }
  }
}

TEST(JournalStream, TruncationIsTornExactlyOffFrameBoundaries) {
  NetFixture fixture;
  const auto records = MakeJournalRecords(fixture, 0, 4);
  std::vector<std::size_t> boundaries;
  const std::string stream = EncodeStream(records, &boundaries);

  for (std::size_t cut = 1; cut <= stream.size(); ++cut) {
    net::JournalStreamDecoder decoder(0);
    std::vector<ha::JournalRecord> out;
    ASSERT_TRUE(decoder.Feed(stream.substr(0, cut), out).ok())
        << "cut at " << cut;
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    const auto finished = decoder.Finish();
    if (on_boundary) {
      EXPECT_TRUE(finished.ok()) << "cut at " << cut;
    } else {
      EXPECT_EQ(finished.code(), util::StatusCode::kTruncated)
          << "cut at " << cut;
    }
    // Only whole verified frames surface, regardless of the cut.
    std::size_t complete = 0;
    while (complete < boundaries.size() - 1 &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(out.size(), complete) << "cut at " << cut;
  }
}

TEST(JournalStream, SequenceGapIsCorrupt) {
  NetFixture fixture;
  auto records = MakeJournalRecords(fixture, 0, 4);
  records[2].seq = 7;  // gap: 0, 1, 7, 3
  std::string stream(ha::JournalMagic());
  for (const auto& record : records) {
    stream += ha::EncodeJournalRecord(record);
  }
  net::JournalStreamDecoder decoder(0);
  std::vector<ha::JournalRecord> out;
  const auto fed = decoder.Feed(stream, out);
  EXPECT_EQ(fed.code(), util::StatusCode::kCorrupt);
  EXPECT_EQ(out.size(), 2u);
  // Poisoned: the same error comes back for every later feed.
  EXPECT_EQ(decoder.Feed("more", out).code(), util::StatusCode::kCorrupt);
  EXPECT_EQ(decoder.Finish().code(), util::StatusCode::kCorrupt);
}

TEST(JournalStream, WrongMagicIsTypedExactlyLikeFileRecovery) {
  std::string wrong_version(ha::JournalMagic());
  wrong_version.back() = '9';
  net::JournalStreamDecoder decoder_version(0);
  std::vector<ha::JournalRecord> out;
  EXPECT_EQ(decoder_version.Feed(wrong_version, out).code(),
            util::StatusCode::kVersionMismatch);

  net::JournalStreamDecoder decoder_magic(0);
  EXPECT_EQ(decoder_magic.Feed("NOTMYFMT", out).code(),
            util::StatusCode::kCorrupt);
}

// ------------------------------------------------------------ daemon E2E

TEST(Daemon, PredictIngestMetricsEndToEnd) {
  NetFixture fixture;
  TempDir dir("daemon_e2e");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  // Control: the same hours with no network at all.
  core::DailyRetrainer control(&fixture.wan, &fixture.topology.metros,
                               /*window_days=*/3);

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  const util::HourIndex hours = 26;  // crosses one day boundary: a retrain
  for (util::HourIndex h = 0; h < hours; ++h) {
    const auto rows = fixture.HourRows(h);
    ASSERT_TRUE(collector.SendHour(h, rows).ok()) << "hour " << h;
    control.Ingest(h, rows);
  }
  EXPECT_EQ(daemon.frames_applied(), static_cast<std::uint64_t>(hours));
  EXPECT_EQ(daemon.last_applied_hour(), hours - 1);
  EXPECT_EQ(daemon.health(), core::ModelHealth::kFresh);

  // The served model is bit-identical to the in-process run.
  EXPECT_EQ(ServiceBytes(replica->service()), ServiceBytes(control.current()));
  EXPECT_EQ(replica->retrainer().health_snapshot(),
            control.health_snapshot());

  // Predict over the wire == PredictShift in-process, bit for bit.
  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(30)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }
  request.excluded = {util::LinkId{0}};
  net::PredictClient predict(
      fixture.FastClientConfig(daemon.predict_port()));
  auto response = predict.Predict(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->health, core::ModelHealth::kFresh);

  core::ExclusionMask mask(fixture.wan.link_count(), false);
  mask[0] = true;
  const auto local = control.current()->PredictShift(request.flows, mask);
  ASSERT_EQ(response->prediction.shifted.size(), local.shifted.size());
  for (std::size_t i = 0; i < local.shifted.size(); ++i) {
    EXPECT_EQ(response->prediction.shifted[i].first.value(),
              local.shifted[i].first.value());
    EXPECT_EQ(response->prediction.shifted[i].second,
              local.shifted[i].second);
  }
  EXPECT_EQ(response->prediction.unpredicted_bytes, local.unpredicted_bytes);

  // /metrics serves the registry over HTTP with the daemon's counters.
  const std::string scrape = ScrapeMetrics(daemon.metrics_port());
  EXPECT_NE(scrape.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("tipsyd_net_frames_applied_total 26"),
            std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("tipsyd_net_predict_requests_total 1"),
            std::string::npos);
  EXPECT_GE(daemon.metrics_scrapes(), 1u);

  daemon.Stop();
  EXPECT_FALSE(daemon.running());
}

// The what-if RPC answers from the same published epoch as Predict: the
// ranked report list over the wire must equal a local
// cms::WhatIfSimulator sweep against the bit-identical control model.
TEST(Daemon, WhatIfSweepOverTheWireMatchesLocalSimulator) {
  NetFixture fixture;
  TempDir dir("daemon_whatif");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  core::DailyRetrainer control(&fixture.wan, &fixture.topology.metros,
                               /*window_days=*/3);
  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 26; ++h) {
    const auto rows = fixture.HourRows(h);
    ASSERT_TRUE(collector.SendHour(h, rows).ok()) << "hour " << h;
    control.Ingest(h, rows);
  }
  ASSERT_EQ(ServiceBytes(replica->service()),
            ServiceBytes(control.current()));

  net::WhatIfRequest request;
  request.rows = fixture.HourRows(30);
  request.link_loads.assign(fixture.wan.link_count(), 0.0);
  for (const auto& row : request.rows) {
    request.link_loads[row.link.value()] +=
        static_cast<double>(row.bytes);
  }
  for (std::uint32_t link = 0;
       link < static_cast<std::uint32_t>(fixture.wan.link_count());
       ++link) {
    request.candidates.push_back({util::LinkId{link}, {}});
  }
  request.candidates.push_back({util::LinkId{0}, {util::PrefixId{1}}});

  net::PredictClient client(
      fixture.FastClientConfig(daemon.predict_port()));
  auto response = client.WhatIf(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->health, core::ModelHealth::kFresh);
  EXPECT_EQ(response->drift_state, core::DriftState::kStable);
  EXPECT_EQ(daemon.whatif_requests(), 1u);

  const cms::WhatIfSimulator simulator(&fixture.wan, control.current(),
                                       cms::WhatIfOptions{});
  const auto local = simulator.Sweep(request.rows, request.link_loads,
                                     request.candidates);
  ASSERT_EQ(response->reports.size(), local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(response->reports[i].candidate_index,
              local[i].candidate_index);
    EXPECT_EQ(response->reports[i].link, local[i].link);
    EXPECT_EQ(response->reports[i].matched_bytes, local[i].matched_bytes);
    EXPECT_EQ(response->reports[i].moved_bytes, local[i].moved_bytes);
    EXPECT_EQ(response->reports[i].unpredicted_bytes,
              local[i].unpredicted_bytes);
    EXPECT_EQ(response->reports[i].safe, local[i].safe);
    ASSERT_EQ(response->reports[i].spills.size(), local[i].spills.size());
    for (std::size_t s = 0; s < local[i].spills.size(); ++s) {
      EXPECT_EQ(response->reports[i].spills[s].link,
                local[i].spills[s].link);
      EXPECT_EQ(response->reports[i].spills[s].bytes,
                local[i].spills[s].bytes);
      EXPECT_EQ(response->reports[i].spills[s].projected_utilization,
                local[i].spills[s].projected_utilization);
      EXPECT_EQ(response->reports[i].spills[s].over_headroom,
                local[i].spills[s].over_headroom);
    }
  }

  // The counter renders under the daemon prefix like every other one.
  const std::string scrape = ScrapeMetrics(daemon.metrics_port());
  EXPECT_NE(scrape.find("tipsyd_net_whatif_requests_total 1"),
            std::string::npos)
      << scrape;

  daemon.Stop();
}

// Obs counter parity (ObsCounterParity pattern): every accessor must
// equal what the registry renders — one underlying cell, no double
// bookkeeping drifting apart.
TEST(Daemon, NetCountersMatchRegistryRendering) {
  NetFixture fixture;
  TempDir dir("daemon_parity");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 5; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
  // A duplicate hour exercises the skip counter: a fresh client whose
  // handshake learns hour 4 is applied resolves 0..4 locally.
  net::CollectorClient late(fixture.FastClientConfig(daemon.ingest_port()),
                            &registry, "late_collector");
  for (util::HourIndex h = 0; h < 5; ++h) {
    ASSERT_TRUE(late.SendHour(h, fixture.HourRows(h)).ok());
  }
  EXPECT_EQ(late.hours_skipped(), 5u);
  EXPECT_EQ(late.hours_sent(), 0u);
  EXPECT_EQ(daemon.frames_applied(), 5u);

  const std::string text = registry.RenderPrometheusText();
  const auto expect_line = [&](const std::string& name, std::uint64_t value) {
    const std::string line = name + " " + std::to_string(value) + "\n";
    EXPECT_NE(text.find(line), std::string::npos)
        << "missing `" << line << "` in:\n" << text;
  };
  expect_line("tipsyd_net_frames_applied_total", daemon.frames_applied());
  expect_line("tipsyd_net_frames_skipped_total", daemon.frames_skipped());
  expect_line("tipsyd_net_connections_total", daemon.connections_accepted());
  expect_line("collector_net_hours_sent_total", collector.hours_sent());
  expect_line("late_collector_net_hours_skipped_total",
              late.hours_skipped());
  // The backoff histogram renders with bucket/sum/count series.
  EXPECT_NE(text.find("collector_net_backoff_ms_count"), std::string::npos);

  daemon.Stop();
}

// The crash/partition matrix over real sockets: the collector is driven
// through the fault proxy across reset-mid-frame, partition, refused
// connections, slow drip and delay — and the daemon's replica must come
// out bit-identical to an uninterrupted in-process run, with every hour
// applied exactly once.
TEST(Daemon, CollectorSurvivesFaultMatrixWithZeroDuplicateApplies) {
  NetFixture fixture;
  TempDir dir("daemon_faults");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  scenario::SocketFaultProxyConfig proxy_cfg;
  proxy_cfg.upstream_port = daemon.ingest_port();
  scenario::SocketFaultProxy proxy(proxy_cfg);
  ASSERT_TRUE(proxy.Start().ok());

  net::CollectorClient collector(fixture.FastClientConfig(proxy.port()),
                                 &registry, "collector");
  core::DailyRetrainer control(&fixture.wan, &fixture.topology.metros,
                               /*window_days=*/3);

  const util::HourIndex hours = 30;
  for (util::HourIndex h = 0; h < hours; ++h) {
    std::thread healer;
    switch (h) {
      case 10: {
        // Cut the connection inside a frame, then heal once it happened.
        proxy.set_mode(scenario::ProxyMode::kResetMidFrame);
        const auto resets_before = proxy.resets_injected();
        healer = std::thread([&proxy, resets_before] {
          while (proxy.resets_injected() == resets_before) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          proxy.set_mode(scenario::ProxyMode::kPass);
        });
        break;
      }
      case 15:
        // Partition: black-hole live bytes for a while, then heal.
        proxy.set_mode(scenario::ProxyMode::kPartition);
        healer = std::thread([&proxy] {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          proxy.set_mode(scenario::ProxyMode::kPass);
          proxy.DropConnections();  // the stale black-holed connection
        });
        break;
      case 20:
        // Daemon "down": connections refused, then it comes back.
        proxy.set_mode(scenario::ProxyMode::kRefuse);
        proxy.DropConnections();
        healer = std::thread([&proxy] {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
          proxy.set_mode(scenario::ProxyMode::kPass);
        });
        break;
      case 24:
        proxy.set_mode(scenario::ProxyMode::kSlowDrip);
        break;
      case 25:
        proxy.set_mode(scenario::ProxyMode::kDelay);
        break;
      case 26:
        proxy.set_mode(scenario::ProxyMode::kPass);
        break;
      default:
        break;
    }
    const auto rows = fixture.HourRows(h);
    ASSERT_TRUE(collector.SendHour(h, rows).ok()) << "hour " << h;
    control.Ingest(h, rows);
    if (healer.joinable()) healer.join();
  }

  EXPECT_GE(proxy.resets_injected(), 1u);
  EXPECT_GE(collector.reconnects(), 2u);

  // Exactly-once application: 30 hours in, 30 frames applied, and the
  // model + health counters are bit-identical to the no-network run
  // (dropped_hours included — duplicates never even reached the replica).
  EXPECT_EQ(daemon.frames_applied(), static_cast<std::uint64_t>(hours));
  EXPECT_EQ(daemon.last_applied_hour(), hours - 1);
  EXPECT_EQ(ServiceBytes(replica->service()), ServiceBytes(control.current()));
  EXPECT_EQ(replica->retrainer().health_snapshot(),
            control.health_snapshot());

  // And the journal holds exactly one record per hour, contiguous.
  daemon.Stop();
  proxy.Stop();
  auto reopened = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(reopened.ok());
  std::size_t ingest_records = 0;
  for (const auto& record : reopened->journal().recovered().records) {
    if (record.kind == ha::JournalRecordKind::kIngest) ++ingest_records;
  }
  EXPECT_EQ(ingest_records, static_cast<std::size_t>(hours));
}

TEST(Daemon, ShippingStandbyResumesFromAppliedSeqWithZeroDuplicates) {
  NetFixture fixture;
  TempDir dir("daemon_ship");
  auto primary = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "p"));
  ASSERT_TRUE(primary.ok());
  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "s"));
  ASSERT_TRUE(standby.ok());

  obs::Registry registry;
  net::Daemon daemon(&*primary, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 30; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }

  // First shipping session: catch up 0 -> 30.
  {
    net::ShippingClient shipper(&*standby,
                                fixture.FastClientConfig(daemon.ship_port()),
                                &registry, "shipper");
    shipper.Start();
    ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 30; }, 5000))
        << "caught up only to seq " << shipper.applied_seq();
    shipper.Stop();
  }
  EXPECT_EQ(standby->applied_seq(), 30u);
  EXPECT_EQ(standby->duplicate_records_skipped(), 0u);

  // The primary moves on while shipping is down.
  for (util::HourIndex h = 30; h < 50; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }

  // Second session resumes from the standby's applied_seq: only the 20
  // missing records travel, and nothing is applied twice.
  {
    net::ShippingClient shipper(&*standby,
                                fixture.FastClientConfig(daemon.ship_port()),
                                &registry, "shipper2");
    shipper.Start();
    ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 50; }, 5000))
        << "caught up only to seq " << shipper.applied_seq();
    EXPECT_EQ(shipper.records_applied(), 20u);
    shipper.Stop();
  }
  EXPECT_EQ(standby->applied_seq(), 50u);
  EXPECT_EQ(standby->duplicate_records_skipped(), 0u);
  EXPECT_EQ(ServiceBytes(standby->service()),
            ServiceBytes(primary->service()));
  EXPECT_EQ(standby->retrainer().health_snapshot(),
            primary->retrainer().health_snapshot());

  daemon.Stop();
}

TEST(Daemon, SnapshotCatchUpRestoresCompactedBaseBitIdentical) {
  // A standby whose from_seq predates the primary's compacted journal
  // base cannot be served by journal replay alone: the daemon offers a
  // chunked, CRC-gated snapshot and streams the journal tail after it.
  // The standby must end bit-identical with zero duplicate applies.
  NetFixture fixture;
  TempDir dir("daemon_snapcatch");
  auto primary_config = fixture.MakeReplicaConfig(dir, "p");
  primary_config.compact_after_snapshot = true;
  auto primary = fixture.OpenReplica(primary_config);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();

  obs::Registry registry;
  net::Daemon daemon(&*primary, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 30; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
  // The day crossing at hour 24 snapshotted and compacted: the journal
  // no longer reaches back to seq 0.
  ASSERT_GT(primary->journal().base_seq(), 0u);
  ASSERT_EQ(primary->applied_seq(), 30u);

  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "s"));
  ASSERT_TRUE(standby.ok()) << standby.status().ToString();
  net::ShippingClient shipper(&*standby,
                              fixture.FastClientConfig(daemon.ship_port()),
                              &registry, "shipper");
  shipper.Start();
  ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 30; }, 5000))
      << "caught up only to seq " << shipper.applied_seq();
  shipper.Stop();

  EXPECT_EQ(shipper.snapshot_catchups(), 1u);
  EXPECT_GT(shipper.snapshot_bytes_received(), 0u);
  // The compacted prefix arrived as state, not as replayed records.
  EXPECT_LT(shipper.records_applied(), 30u);
  EXPECT_EQ(standby->applied_seq(), 30u);
  EXPECT_EQ(standby->duplicate_records_skipped(), 0u);
  EXPECT_EQ(ServiceBytes(standby->service()),
            ServiceBytes(primary->service()));
  EXPECT_EQ(standby->retrainer().health_snapshot(),
            primary->retrainer().health_snapshot());
  daemon.Stop();
}

TEST(Daemon, BaseAdvancePastStandbyCursorForcesSnapshotPath) {
  // Session 1 ships the journal from genesis. The primary then compacts
  // past the standby's cursor while shipping is down, so session 2's
  // from_seq lands below the journal base — replay resume is impossible
  // and the daemon must fall back to a snapshot offer mid-lifecycle.
  NetFixture fixture;
  TempDir dir("daemon_base_advance");
  auto primary_config = fixture.MakeReplicaConfig(dir, "p");
  primary_config.compact_after_snapshot = true;
  auto primary = fixture.OpenReplica(primary_config);
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();
  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "s"));
  ASSERT_TRUE(standby.ok()) << standby.status().ToString();

  obs::Registry registry;
  net::Daemon daemon(&*primary, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 20; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }

  // Session 1: plain journal replay, no snapshot involved.
  {
    net::ShippingClient shipper(&*standby,
                                fixture.FastClientConfig(daemon.ship_port()),
                                &registry, "shipper");
    shipper.Start();
    ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 20; }, 5000))
        << "caught up only to seq " << shipper.applied_seq();
    shipper.Stop();
    EXPECT_EQ(shipper.snapshot_catchups(), 0u);
  }

  // The primary crosses two day boundaries while shipping is down; the
  // second checkpoint compacts the base well past the standby's seq 20.
  for (util::HourIndex h = 20; h < 50; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
  ASSERT_GT(primary->journal().base_seq(), 20u);

  // Session 2: from_seq 20 is gone from the journal — snapshot path.
  {
    net::ShippingClient shipper(&*standby,
                                fixture.FastClientConfig(daemon.ship_port()),
                                &registry, "shipper2");
    shipper.Start();
    ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 50; }, 5000))
        << "caught up only to seq " << shipper.applied_seq();
    shipper.Stop();
    EXPECT_EQ(shipper.snapshot_catchups(), 1u);
    EXPECT_GT(shipper.snapshot_bytes_received(), 0u);
  }
  EXPECT_EQ(standby->applied_seq(), 50u);
  EXPECT_EQ(standby->duplicate_records_skipped(), 0u);
  EXPECT_EQ(ServiceBytes(standby->service()),
            ServiceBytes(primary->service()));
  EXPECT_EQ(standby->retrainer().health_snapshot(),
            primary->retrainer().health_snapshot());
  daemon.Stop();
}

TEST(Daemon, BatchedAcksAmortizeFsyncsUnderCreditWindow) {
  // Pipelined collector against a 16-credit window: the daemon drains
  // whatever arrived per read as ONE journal sync + ONE ack, so acks
  // come out fewer than records and the in-flight count never exceeds
  // the advertised window.
  NetFixture fixture;
  TempDir dir("daemon_backpressure");
  auto primary = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "p"));
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();

  obs::Registry registry;
  auto daemon_config = fixture.FastDaemonConfig();
  daemon_config.ingest_window = 16;
  net::Daemon daemon(&*primary, &registry, daemon_config);
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 80; ++h) {
    ASSERT_TRUE(collector.SendHourAsync(h, fixture.HourRows(h)).ok());
    EXPECT_LE(collector.inflight_records(), 16u);
  }
  ASSERT_TRUE(collector.Flush().ok());

  EXPECT_EQ(primary->applied_seq(), 80u);
  EXPECT_EQ(collector.pending_records(), 0u);
  EXPECT_EQ(collector.last_credits(), 16u);
  // Batching really happened: multiple records per daemon drain, and a
  // single ack (single fsync) covering each batch.
  EXPECT_GT(daemon.ingest_batches(), 0u);
  EXPECT_GT(daemon.ingest_batched_records(), daemon.ingest_batches());
  EXPECT_LT(collector.acks_received(), collector.hours_sent());
  EXPECT_EQ(primary->duplicate_records_skipped(), 0u);
  daemon.Stop();
}

TEST(Daemon, ZeroCreditWindowDegradesToLockStep) {
  // ingest_window = 0: every ack advertises zero credits, so the
  // collector falls back to one-record-in-flight probing. Slower, but
  // nothing is lost and nothing is applied twice.
  NetFixture fixture;
  TempDir dir("daemon_lockstep");
  auto primary = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "p"));
  ASSERT_TRUE(primary.ok()) << primary.status().ToString();

  obs::Registry registry;
  auto daemon_config = fixture.FastDaemonConfig();
  daemon_config.ingest_window = 0;
  net::Daemon daemon(&*primary, &registry, daemon_config);
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 12; ++h) {
    ASSERT_TRUE(collector.SendHourAsync(h, fixture.HourRows(h)).ok());
    EXPECT_LE(collector.inflight_records(), 1u);
  }
  ASSERT_TRUE(collector.Flush().ok());

  EXPECT_EQ(primary->applied_seq(), 12u);
  EXPECT_EQ(collector.last_credits(), 0u);
  // Lock-step means at least one ack per record.
  EXPECT_GE(collector.acks_received(), 12u);
  EXPECT_EQ(primary->duplicate_records_skipped(), 0u);
  daemon.Stop();
}

TEST(Daemon, DarkFeedDegradesFreshStaleExpiredWhileStillServing) {
  NetFixture fixture;
  TempDir dir("daemon_dark");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 2 * util::kHoursPerDay; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
  ASSERT_EQ(daemon.health(), core::ModelHealth::kFresh);
  const std::string fresh_bytes = ServiceBytes(replica->service());
  ASSERT_FALSE(fresh_bytes.empty());

  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(99)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }
  net::PredictClient predict(
      fixture.FastClientConfig(daemon.predict_port()));

  // The collector goes dark; the embedding process keeps the clock
  // ticking. Age 2 days -> STALE.
  ASSERT_TRUE(daemon.AdvanceClock(3 * util::kHoursPerDay).ok());
  EXPECT_EQ(daemon.health(), core::ModelHealth::kStale);
  auto stale_response = predict.Predict(request);
  ASSERT_TRUE(stale_response.ok());
  EXPECT_EQ(stale_response->health, core::ModelHealth::kStale);

  // Past the validity horizon -> EXPIRED: the daemon still answers from
  // the last-good model (graceful degradation), stamping the health a
  // remote CMS needs to fall back to its legacy gate.
  ASSERT_TRUE(daemon.AdvanceClock(10 * util::kHoursPerDay).ok());
  EXPECT_EQ(daemon.health(), core::ModelHealth::kExpired);
  auto expired_response = predict.Predict(request);
  ASSERT_TRUE(expired_response.ok());
  EXPECT_EQ(expired_response->health, core::ModelHealth::kExpired);
  // The last-good model keeps serving (it re-trains as the window slides,
  // but never unloads).
  EXPECT_NE(replica->service(), nullptr);
  // A late tick behind the applied clock is ignored, not a time warp.
  ASSERT_TRUE(daemon.AdvanceClock(0).ok());
  EXPECT_EQ(daemon.health(), core::ModelHealth::kExpired);

  daemon.Stop();
}

TEST(Daemon, PredictPathSurvivesSlowDripAndPartitionHeal) {
  NetFixture fixture;
  TempDir dir("daemon_predict_faults");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry,
      "collector");
  for (util::HourIndex h = 0; h < 26; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }

  scenario::SocketFaultProxyConfig proxy_cfg;
  proxy_cfg.upstream_port = daemon.predict_port();
  scenario::SocketFaultProxy proxy(proxy_cfg);
  ASSERT_TRUE(proxy.Start().ok());

  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(50)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }

  net::PredictClient predict(fixture.FastClientConfig(proxy.port()),
                             /*max_attempts=*/2);
  // Baseline through the proxy.
  ASSERT_TRUE(predict.Predict(request).ok());

  // Slow drip: the envelope arrives one byte at a time; the daemon's
  // buffered reader must reassemble it instead of timing out away the
  // partial bytes.
  proxy.set_mode(scenario::ProxyMode::kSlowDrip);
  auto dripped = predict.Predict(request);
  EXPECT_TRUE(dripped.ok()) << dripped.status().ToString();

  // Partition: requests go unanswered and the bounded retry reports
  // kUnavailable — the caller's signal to degrade, not hang.
  proxy.set_mode(scenario::ProxyMode::kPartition);
  proxy.DropConnections();
  auto partitioned = predict.Predict(request);
  ASSERT_FALSE(partitioned.ok());
  EXPECT_EQ(partitioned.status().code(), util::StatusCode::kUnavailable);
  EXPECT_GE(predict.failures(), 1u);

  // Heal: the same client reconnects and answers again.
  proxy.set_mode(scenario::ProxyMode::kPass);
  auto healed = predict.Predict(request);
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();

  daemon.Stop();
  proxy.Stop();
}

// ------------------------------------------- heartbeat sockets and quorum

TEST(Quorum, SocketHeartbeatsDriveRankedPromotion) {
  // A fully remote quorum plane: the supervisor knows its members only
  // through heartbeats arriving over a real socket. Members 2 and 3 are
  // added standbys (the constructor pair stays empty).
  ha::SupervisorConfig sup_cfg;
  sup_cfg.heartbeat_timeout_hours = 2;
  ha::Supervisor supervisor(nullptr, nullptr, sup_cfg);
  const int member_a = supervisor.AddStandby(nullptr, /*configured_rank=*/0);
  const int member_b = supervisor.AddStandby(nullptr, /*configured_rank=*/1);
  ASSERT_EQ(member_a, 2);
  ASSERT_EQ(member_b, 3);

  net::HeartbeatListener listener([&](const net::HeartbeatReport& report) {
    supervisor.ObserveMemberHeartbeat(report.member_index, report.hour,
                                      report.applied_seq, report.health);
  });
  ASSERT_TRUE(listener.Start(/*port=*/0).ok());

  std::atomic<util::HourIndex> clock{0};
  std::atomic<bool> a_alive{true};
  net::ClientConfig hb_cfg;
  hb_cfg.port = listener.port();
  hb_cfg.connect_timeout_ms = 500;
  hb_cfg.backoff.initial_ms = 5;
  hb_cfg.backoff.max_ms = 50;

  net::HeartbeatSender sender_a(hb_cfg, /*interval_ms=*/10, [&] {
    net::HeartbeatReport report;
    report.member_index = 2;
    report.hour = clock.load();
    report.applied_seq = 100;  // more journal progress than member 3
    report.health = a_alive.load() ? core::ModelHealth::kFresh
                                   : core::ModelHealth::kNone;
    return report;
  });
  net::HeartbeatSender sender_b(hb_cfg, /*interval_ms=*/10, [&] {
    net::HeartbeatReport report;
    report.member_index = 3;
    report.hour = clock.load();
    report.applied_seq = 60;
    report.health = core::ModelHealth::kFresh;
    return report;
  });
  sender_a.Start();
  sender_b.Start();

  // Both report FRESH at equal rank: the applied_seq tiebreak elects the
  // member that lost the least journal progress.
  ASSERT_TRUE(WaitUntil(
      [&] {
        supervisor.Tick(clock.load());
        return supervisor.serving_member() == 2;
      },
      5000))
      << "serving_member=" << supervisor.serving_member();
  // Routed member is remote: the supervisor routes, queries go over that
  // member's own predict port.
  EXPECT_EQ(supervisor.service(), nullptr);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kFresh);

  // Member 2 "dies": its reports stop carrying a servable model and the
  // clock moves past the heartbeat timeout. Routing must fail over to
  // member 3 — the next-ranked standby.
  a_alive.store(false);
  sender_a.Stop();
  ASSERT_TRUE(WaitUntil(
      [&] {
        clock.fetch_add(1);
        supervisor.Tick(clock.load());
        return supervisor.serving_member() == 3;
      },
      5000))
      << "serving_member=" << supervisor.serving_member();
  EXPECT_FALSE(supervisor.IsMemberAlive(2));
  EXPECT_TRUE(supervisor.IsMemberAlive(3));
  EXPECT_GE(listener.received(), 2u);

  sender_b.Stop();
  listener.Stop();
}

// ------------------------------------------------------------- wire auth

TEST(WireAuth, KeyDerivationIsDeterministicTrimmedAndFileLoadable) {
  const auto key = net::AuthKey::FromSecret("hunter2");
  ASSERT_TRUE(key.present);
  EXPECT_EQ(key, net::AuthKey::FromSecret("hunter2"));
  // Key files routinely end in a newline; the derivation must not care.
  EXPECT_EQ(key, net::AuthKey::FromSecret("  hunter2\n"));
  EXPECT_NE(key, net::AuthKey::FromSecret("hunter3"));
  EXPECT_FALSE(net::AuthKey::FromSecret("").present);
  EXPECT_FALSE(net::AuthKey::FromSecret(" \n\t").present);

  // The MAC moves with key, and with data.
  const auto other = net::AuthKey::FromSecret("hunter3");
  EXPECT_NE(net::SipHash24(key, "payload"), net::SipHash24(other, "payload"));
  EXPECT_NE(net::SipHash24(key, "payload"), net::SipHash24(key, "payloae"));

  TempDir dir("auth_keys");
  {
    std::ofstream out(dir.File("key"));
    out << "hunter2\n";
  }
  auto loaded = net::LoadAuthKeyFile(dir.File("key"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, key);
  {
    std::ofstream out(dir.File("empty"));
    out << "  \n";
  }
  EXPECT_EQ(net::LoadAuthKeyFile(dir.File("empty")).status().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(net::LoadAuthKeyFile(dir.File("missing")).status().code(),
            util::StatusCode::kIoError);
}

TEST(WireAuth, AuthedEnvelopeRoundTripsUnderTheSameKey) {
  const auto key = net::AuthKey::FromSecret("fleet secret");
  const std::string payload = "authenticated payload";
  const std::string bytes =
      net::EncodeMessage(net::MessageType::kPredictRequest, payload, key);
  // v2 frames are one MAC wider than v1 and carry the flagged type byte.
  EXPECT_EQ(bytes.size(), net::EncodeMessage(
                              net::MessageType::kPredictRequest, payload)
                                  .size() +
                              net::kMacBytes);
  EXPECT_NE(static_cast<std::uint8_t>(bytes[4]) & net::kAuthTypeFlag, 0);
  std::size_t pos = 0;
  auto message =
      net::DecodeMessage(bytes, pos, net::kMaxMessageBytes, key);
  ASSERT_TRUE(message.ok()) << message.status().ToString();
  EXPECT_EQ(message->type, net::MessageType::kPredictRequest);
  EXPECT_EQ(message->payload, payload);
  EXPECT_EQ(pos, bytes.size());
}

// The downgrade table from net/auth.h, line by line: every mode
// mismatch is the typed kAuthFailed — never a crash, never a silent
// accept, and never mistaken for wire damage (kCorrupt).
TEST(WireAuth, DowngradeMatrixIsTypedAuthFailed) {
  const auto key = net::AuthKey::FromSecret("fleet secret");
  const auto wrong = net::AuthKey::FromSecret("stale rotated key");
  const std::string v1 =
      net::EncodeMessage(net::MessageType::kHeartbeat, "tick");
  const std::string v2 =
      net::EncodeMessage(net::MessageType::kHeartbeat, "tick", key);

  const auto decode_with = [](const std::string& bytes,
                              const net::AuthKey& endpoint) {
    std::size_t pos = 0;
    return net::DecodeMessage(bytes, pos, net::kMaxMessageBytes, endpoint);
  };
  // Keyed endpoint, v1 frame: refused.
  EXPECT_EQ(decode_with(v1, key).status().code(),
            util::StatusCode::kAuthFailed);
  // Keyed endpoint, v2 frame under a different key: refused.
  EXPECT_EQ(decode_with(v2, wrong).status().code(),
            util::StatusCode::kAuthFailed);
  // Keyless endpoint, v2 frame: refused (cannot verify what it cannot
  // key).
  EXPECT_EQ(decode_with(v2, net::AuthKey{}).status().code(),
            util::StatusCode::kAuthFailed);
  // Keyless endpoint, v1 frame: the legacy wire still works.
  EXPECT_TRUE(decode_with(v1, net::AuthKey{}).ok());
}

// The fuzz gate from the v1 envelope, upgraded: under a shared key,
// every single-bit flip anywhere in an authenticated envelope must
// surface as a typed error — kAuthFailed (MAC caught it), kCorrupt
// (CRC/type caught it), or kTruncated (length now claims more bytes).
TEST(WireAuth, AuthedEnvelopeByteFlipFuzzIsTyped) {
  const auto key = net::AuthKey::FromSecret("fuzz key");
  const std::string bytes = net::EncodeMessage(
      net::MessageType::kPredictRequest, "some payload bytes here", key);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = scenario::FlipBit(bytes, i, bit);
      std::size_t pos = 0;
      auto message =
          net::DecodeMessage(damaged, pos, net::kMaxMessageBytes, key);
      ASSERT_FALSE(message.ok())
          << "flip at byte " << i << " bit " << bit << " went undetected";
      const auto code = message.status().code();
      EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                  code == util::StatusCode::kTruncated ||
                  code == util::StatusCode::kAuthFailed)
          << "byte " << i << " bit " << bit << ": "
          << message.status().ToString();
    }
  }
}

TEST(WireAuth, AuthedEnvelopeTruncationIsTruncated) {
  const auto key = net::AuthKey::FromSecret("cut key");
  const std::string bytes =
      net::EncodeMessage(net::MessageType::kHeartbeat, "payload", key);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::size_t pos = 0;
    auto message = net::DecodeMessage(bytes.substr(0, cut), pos,
                                      net::kMaxMessageBytes, key);
    ASSERT_FALSE(message.ok()) << "cut at " << cut;
    EXPECT_EQ(message.status().code(), util::StatusCode::kTruncated)
        << "cut at " << cut << ": " << message.status().ToString();
  }
}

// End to end: a keyed fleet serves keyed peers exactly as the keyless
// wire does, refuses keyless and wrong-key peers with counted
// kAuthFailed drops, and never crashes doing either.
TEST(Daemon, AuthedFleetServesKeyedPeersAndRefusesTheRest) {
  NetFixture fixture;
  TempDir dir("daemon_auth");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  const auto key = net::AuthKey::FromSecret("fleet secret");
  obs::Registry registry;
  auto daemon_cfg = fixture.FastDaemonConfig();
  daemon_cfg.auth = key;
  net::Daemon daemon(&*replica, &registry, daemon_cfg);
  ASSERT_TRUE(daemon.Start().ok());

  // Keyed collector + predict client: business as usual.
  auto keyed_cfg = fixture.FastClientConfig(daemon.ingest_port());
  keyed_cfg.auth = key;
  net::CollectorClient collector(keyed_cfg, &registry, "collector");
  for (util::HourIndex h = 0; h < 5; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
  EXPECT_EQ(daemon.frames_applied(), 5u);

  auto keyed_predict_cfg = fixture.FastClientConfig(daemon.predict_port());
  keyed_predict_cfg.auth = key;
  net::PredictClient keyed_predict(keyed_predict_cfg, /*max_attempts=*/1);
  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(6)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }
  ASSERT_TRUE(keyed_predict.Predict(request).ok());

  // A keyless peer's v1 hello is refused before the ack: the daemon
  // counts the kAuthFailed and hangs up; the peer reads a clean close,
  // not an ack — and not a crash.
  const std::uint64_t refusals_before = daemon.auth_failures();
  {
    auto socket = net::Connect("127.0.0.1", daemon.ingest_port(), 500);
    ASSERT_TRUE(socket.ok());
    (void)socket->SetReadDeadline(500);
    ASSERT_TRUE(socket
                    ->SendAll(net::EncodeMessage(
                        net::MessageType::kIngestHello,
                        net::EncodeIngestHello({})))
                    .ok());
    auto reply = net::ReadMessage(*socket);
    EXPECT_FALSE(reply.ok());
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return daemon.auth_failures() > refusals_before; }, 2000));

  // Wrong-key predict: MAC mismatch server-side, typed refusal, the
  // client surfaces an unavailable endpoint (it can retry elsewhere).
  auto wrong_cfg = fixture.FastClientConfig(daemon.predict_port());
  wrong_cfg.auth = net::AuthKey::FromSecret("rotated-away key");
  net::PredictClient wrong_predict(wrong_cfg, /*max_attempts=*/1);
  const auto refused = wrong_predict.Predict(request);
  EXPECT_FALSE(refused.ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return daemon.auth_failures() > refusals_before + 1; }, 2000));

  // A keyed shipping standby works against the keyed primary.
  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "s"));
  ASSERT_TRUE(standby.ok());
  auto ship_cfg = fixture.FastClientConfig(daemon.ship_port());
  ship_cfg.auth = key;
  net::ShippingClient shipper(&*standby, ship_cfg, &registry, "shipper");
  shipper.Start();
  ASSERT_TRUE(WaitUntil([&] { return shipper.applied_seq() == 5; }, 5000));
  shipper.Stop();
  EXPECT_EQ(standby->duplicate_records_skipped(), 0u);

  // The refusal counter is on /metrics for operators.
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("tipsyd_net_auth_failures_total"), std::string::npos);

  daemon.Stop();
}

// The reverse downgrade: a keyed client dialing a keyless daemon is
// refused too (the daemon cannot verify v2 frames), so a half-rotated
// fleet fails loudly instead of silently serving unauthenticated.
TEST(Daemon, KeylessDaemonRefusesKeyedClients) {
  NetFixture fixture;
  TempDir dir("daemon_keyless");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  auto keyed_cfg = fixture.FastClientConfig(daemon.predict_port());
  keyed_cfg.auth = net::AuthKey::FromSecret("key the daemon lacks");
  net::PredictClient predict(keyed_cfg, /*max_attempts=*/1);
  EXPECT_FALSE(predict.Predict({}).ok());
  ASSERT_TRUE(WaitUntil([&] { return daemon.auth_failures() >= 1; }, 2000));

  daemon.Stop();
}

// ---------------------------------------------------- multi-collector

// Three collectors with distinct source identities feed one primary
// concurrently — one behind a partition that heals, one slow-dripped —
// and the daemon must come out with a contiguous journal, zero
// duplicate applies, and per-source counters that sum exactly to the
// journal's record count.
TEST(Daemon, ThreeConcurrentCollectorsSurviveFaultsWithPerSourceAttribution) {
  NetFixture fixture;
  TempDir dir("daemon_multi");
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(replica.ok());

  obs::Registry registry;
  net::Daemon daemon(&*replica, &registry, fixture.FastDaemonConfig());
  ASSERT_TRUE(daemon.Start().ok());

  // Each collector dials through its own fault proxy.
  const char* names[3] = {"alpha", "bravo", "charlie"};
  std::vector<std::unique_ptr<scenario::SocketFaultProxy>> proxies;
  for (int c = 0; c < 3; ++c) {
    scenario::SocketFaultProxyConfig proxy_cfg;
    proxy_cfg.upstream_port = daemon.ingest_port();
    proxies.push_back(
        std::make_unique<scenario::SocketFaultProxy>(proxy_cfg));
    ASSERT_TRUE(proxies.back()->Start().ok());
  }
  // bravo starts partitioned (heals mid-run); charlie drips all run.
  proxies[1]->set_mode(scenario::ProxyMode::kPartition);
  proxies[2]->set_mode(scenario::ProxyMode::kSlowDrip);
  std::thread healer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    proxies[1]->set_mode(scenario::ProxyMode::kPass);
    proxies[1]->DropConnections();
  });

  // Collector c sends hours c, c+3, ..., c+27 — strictly increasing per
  // source, interleaved across sources. The daemon's hour gate stays
  // global, so late-arriving low hours retire as skips, never as
  // duplicate applies.
  std::vector<std::thread> feeders;
  std::atomic<int> failures{0};
  for (int c = 0; c < 3; ++c) {
    feeders.emplace_back([&, c] {
      auto client_cfg = fixture.FastClientConfig(proxies[c]->port());
      client_cfg.source_id = names[c];
      net::CollectorClient collector(client_cfg, &registry, names[c]);
      for (util::HourIndex h = c; h < 30; h += 3) {
        if (!collector.SendHour(h, fixture.HourRows(h)).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& feeder : feeders) feeder.join();
  healer.join();
  EXPECT_EQ(failures.load(), 0);

  // Zero duplicate applies, by construction and by count.
  EXPECT_EQ(replica->duplicate_records_skipped(), 0u);
  const auto sources = daemon.ingest_source_stats();
  ASSERT_EQ(sources.size(), 3u);
  std::uint64_t applied_sum = 0;
  std::uint64_t skipped_sum = 0;
  for (const auto& [name, stats] : sources) {
    EXPECT_TRUE(std::string(name) == "alpha" || name == "bravo" ||
                name == "charlie")
        << name;
    applied_sum += stats.applied;
    skipped_sum += stats.skipped;
    // Note a source can legitimately end with all-zero counters: a
    // collector that reconnects after the others finished learns from
    // the resume ack that its hours are already durable and resolves
    // them client-side, never shipping a record.
  }
  EXPECT_EQ(applied_sum, daemon.frames_applied());
  EXPECT_EQ(skipped_sum, daemon.frames_skipped());
  // Every one of the 30 hours was delivered durably (applied or retired
  // against an already-applied gate) before its SendHour returned.
  EXPECT_GE(applied_sum, 1u);
  EXPECT_EQ(daemon.last_applied_hour(), 29);

  // Per-source counters land on /metrics, plus the source gauge.
  const std::string text = registry.RenderPrometheusText();
  for (const char* name : names) {
    EXPECT_NE(text.find("tipsyd_net_ingest_source_" + std::string(name) +
                        "_applied_total"),
              std::string::npos)
        << name;
  }
  EXPECT_NE(text.find("tipsyd_net_ingest_sources 3"), std::string::npos);

  daemon.Stop();
  for (auto& proxy : proxies) proxy->Stop();

  // The journal is contiguous (recovery would fail otherwise), its
  // hours strictly increase (the global gate), and its record count is
  // exactly the per-source applied sum.
  auto reopened = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "d"));
  ASSERT_TRUE(reopened.ok());
  const auto& records = reopened->journal().recovered().records;
  EXPECT_EQ(records.size(), static_cast<std::size_t>(applied_sum));
  util::HourIndex last_hour = -1;
  for (const auto& record : records) {
    EXPECT_GT(record.hour, last_hour) << "hour replayed twice";
    last_hour = record.hour;
  }
}

// ------------------------------------------------------- predict pool

// Feeds `replica` enough hours (through the daemon's wire, so the gate
// state matches) to give it a FRESH model.
void FeedFresh(net::Daemon& daemon, obs::Registry& registry,
               const NetFixture& fixture, const char* prefix) {
  net::CollectorClient collector(
      fixture.FastClientConfig(daemon.ingest_port()), &registry, prefix);
  for (util::HourIndex h = 0; h < 26; ++h) {
    ASSERT_TRUE(collector.SendHour(h, fixture.HourRows(h)).ok());
  }
}

net::PredictRequest PoolRequest(const NetFixture& fixture) {
  net::PredictRequest request;
  for (const auto& row : fixture.HourRows(30)) {
    request.flows.push_back(
        {core::FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service},
         static_cast<double>(row.bytes)});
  }
  return request;
}

TEST(PredictPool, SpreadsReadsAcrossHealthyEndpointsLeastOutstanding) {
  NetFixture fixture;
  TempDir dir("pool_spread");
  auto replica_a = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "a"));
  auto replica_b = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "b"));
  ASSERT_TRUE(replica_a.ok());
  ASSERT_TRUE(replica_b.ok());

  obs::Registry registry;
  net::Daemon daemon_a(&*replica_a, &registry,
                       fixture.FastDaemonConfig());
  auto cfg_b = fixture.FastDaemonConfig();
  cfg_b.metric_prefix = "tipsyd_b";
  net::Daemon daemon_b(&*replica_b, &registry, cfg_b);
  ASSERT_TRUE(daemon_a.Start().ok());
  ASSERT_TRUE(daemon_b.Start().ok());
  FeedFresh(daemon_a, registry, fixture, "feed_a");
  FeedFresh(daemon_b, registry, fixture, "feed_b");

  net::PredictPoolConfig pool_cfg;
  pool_cfg.endpoints = {
      fixture.FastClientConfig(daemon_a.predict_port()),
      fixture.FastClientConfig(daemon_b.predict_port()),
  };
  net::PredictPool pool(pool_cfg);

  const auto request = PoolRequest(fixture);
  for (int i = 0; i < 20; ++i) {
    auto response = pool.Predict(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->health, core::ModelHealth::kFresh);
  }
  EXPECT_EQ(pool.served(), 20u);
  EXPECT_EQ(pool.failovers(), 0u);
  // Rotation spreads the reads: both replicas took a meaningful share.
  const auto stats = pool.endpoint_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_GE(stats[0].served, 5u);
  EXPECT_GE(stats[1].served, 5u);
  EXPECT_EQ(stats[0].served + stats[1].served, 20u);
  // Both answered identically — the pool's whole premise.
  EXPECT_EQ(ServiceBytes(replica_a->service()),
            ServiceBytes(replica_b->service()));

  daemon_a.Stop();
  daemon_b.Stop();
}

TEST(PredictPool, EjectsFailedEndpointThenProbeReinstatesIt) {
  NetFixture fixture;
  TempDir dir("pool_eject");
  auto replica_a = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "a"));
  auto replica_b = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "b"));
  ASSERT_TRUE(replica_a.ok());
  ASSERT_TRUE(replica_b.ok());

  obs::Registry registry;
  net::Daemon daemon_a(&*replica_a, &registry,
                       fixture.FastDaemonConfig());
  auto cfg_b = fixture.FastDaemonConfig();
  cfg_b.metric_prefix = "tipsyd_b";
  net::Daemon daemon_b(&*replica_b, &registry, cfg_b);
  ASSERT_TRUE(daemon_a.Start().ok());
  ASSERT_TRUE(daemon_b.Start().ok());
  FeedFresh(daemon_a, registry, fixture, "feed_a");
  FeedFresh(daemon_b, registry, fixture, "feed_b");

  // Endpoint A dials through a fault proxy so it can "die" and come
  // back on the same port.
  scenario::SocketFaultProxyConfig proxy_cfg;
  proxy_cfg.upstream_port = daemon_a.predict_port();
  scenario::SocketFaultProxy proxy(proxy_cfg);
  ASSERT_TRUE(proxy.Start().ok());

  net::PredictPoolConfig pool_cfg;
  pool_cfg.endpoints = {
      fixture.FastClientConfig(proxy.port()),
      fixture.FastClientConfig(daemon_b.predict_port()),
  };
  pool_cfg.eject_ms = 50;
  pool_cfg.probe_interval_ms = 50;
  net::PredictPool pool(pool_cfg);

  const auto request = PoolRequest(fixture);
  // Warm both endpoints.
  ASSERT_TRUE(pool.Predict(request).ok());
  ASSERT_TRUE(pool.Predict(request).ok());

  // Kill A: every read keeps succeeding through B, and A is ejected.
  proxy.set_mode(scenario::ProxyMode::kRefuse);
  proxy.DropConnections();
  for (int i = 0; i < 10; ++i) {
    auto response = pool.Predict(request);
    ASSERT_TRUE(response.ok())
        << "read " << i << " failed during endpoint loss: "
        << response.status().ToString();
  }
  EXPECT_GE(pool.ejections(), 1u);
  EXPECT_GE(pool.failovers(), 1u);
  const auto down_stats = pool.endpoint_stats();
  EXPECT_TRUE(down_stats[0].ejected);
  EXPECT_GE(down_stats[0].failures, 1u);

  // Heal A: the next probe (due after probe_interval_ms) reinstates it.
  proxy.set_mode(scenario::ProxyMode::kPass);
  const std::uint64_t served_before =
      pool.endpoint_stats()[0].served;
  ASSERT_TRUE(WaitUntil(
      [&] {
        auto response = pool.Predict(request);
        return response.ok() &&
               pool.endpoint_stats()[0].served > served_before;
      },
      5000))
      << "endpoint A was never probed back into service";

  daemon_a.Stop();
  daemon_b.Stop();
  proxy.Stop();
}

// The staleness budget: once an endpoint's health stamp says it has no
// serviceable model (NONE here; EXPIRED ages the same way), routine
// reads route around it — it only sees probe traffic.
TEST(PredictPool, StalenessBudgetRoutesRoutineReadsAroundModellessReplica) {
  NetFixture fixture;
  TempDir dir("pool_budget");
  auto replica_a = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "a"));
  auto replica_b = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "b"));
  ASSERT_TRUE(replica_a.ok());
  ASSERT_TRUE(replica_b.ok());

  obs::Registry registry;
  // A never gets fed: it answers honestly with health NONE.
  net::Daemon daemon_a(&*replica_a, &registry,
                       fixture.FastDaemonConfig());
  auto cfg_b = fixture.FastDaemonConfig();
  cfg_b.metric_prefix = "tipsyd_b";
  net::Daemon daemon_b(&*replica_b, &registry, cfg_b);
  ASSERT_TRUE(daemon_a.Start().ok());
  ASSERT_TRUE(daemon_b.Start().ok());
  FeedFresh(daemon_b, registry, fixture, "feed_b");

  net::PredictPoolConfig pool_cfg;
  pool_cfg.endpoints = {
      fixture.FastClientConfig(daemon_a.predict_port()),
      fixture.FastClientConfig(daemon_b.predict_port()),
  };
  // No probes inside this test's window: once A's health is observed,
  // it must see zero routine reads.
  pool_cfg.probe_interval_ms = 60'000;
  net::PredictPool pool(pool_cfg);

  const auto request = PoolRequest(fixture);
  // Warmup: rotation touches both endpoints, observing their stamps.
  ASSERT_TRUE(pool.Predict(request).ok());
  ASSERT_TRUE(pool.Predict(request).ok());
  const std::uint64_t a_served_after_warmup =
      pool.endpoint_stats()[0].served;

  for (int i = 0; i < 20; ++i) {
    auto response = pool.Predict(request);
    ASSERT_TRUE(response.ok());
    // Every routine read lands on the FRESH replica.
    EXPECT_EQ(response->health, core::ModelHealth::kFresh);
  }
  EXPECT_EQ(pool.endpoint_stats()[0].served, a_served_after_warmup)
      << "a modeless replica kept taking routine reads";
  EXPECT_EQ(pool.endpoint_stats()[1].served, 20u + 2u - a_served_after_warmup);

  daemon_a.Stop();
  daemon_b.Stop();
}

// ------------------------------------------------- atomic-file audit

// Satellite regression: every daemon-path writer that claims crash
// safety (journal creation, snapshots, model bundles) must go through
// WriteFileAtomic, and every such write must fsync the parent directory
// — the counters advance in lockstep or a writer is cutting corners.
TEST(AtomicFileAudit, DaemonPathWritersAllFsyncTheParentDirectory) {
  NetFixture fixture;
  TempDir dir("atomic_audit");

  const std::uint64_t writes_before = util::AtomicWritesPerformed();
  const std::uint64_t fsyncs_before = util::DirectoryFsyncsPerformed();

  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "a"));
  ASSERT_TRUE(replica.ok());
  for (util::HourIndex h = 0; h < 26; ++h) {
    ASSERT_TRUE(replica->Ingest(h, fixture.HourRows(h)).ok());
  }
  ASSERT_TRUE(replica->SnapshotNow().ok());
  ASSERT_TRUE(core::SaveServiceToFile(*replica->service(),
                                      dir.File("bundle.tipsy"))
                  .ok());

  const std::uint64_t writes = util::AtomicWritesPerformed() - writes_before;
  const std::uint64_t fsyncs =
      util::DirectoryFsyncsPerformed() - fsyncs_before;
  // Journal creation + at least one snapshot (explicit or day-boundary)
  // + the model bundle.
  EXPECT_GE(writes, 3u);
  EXPECT_EQ(writes, fsyncs)
      << "an atomic write skipped the directory fsync";
}

}  // namespace
}  // namespace tipsy
