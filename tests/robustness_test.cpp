// Fault-tolerant operational layer: typed errors, checksummed formats,
// atomic saves, degraded-mode serving, and the fault-injection harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <tuple>

#include "cms/cms.h"
#include "core/online.h"
#include "core/serialize.h"
#include "pipeline/storage.h"
#include "scenario/fault_injection.h"
#include "scenario/scenario.h"
#include "topo/generator.h"
#include "util/atomic_file.h"
#include "util/checksum.h"
#include "util/status.h"

namespace tipsy {
namespace {

// ---------------------------------------------------------------- status

TEST(Status, CarriesCodeAndMessage) {
  const auto ok = util::Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), util::StatusCode::kOk);

  const auto corrupt = util::Status::Corrupt("bad bytes");
  EXPECT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.code(), util::StatusCode::kCorrupt);
  EXPECT_NE(corrupt.ToString().find("CORRUPT"), std::string::npos);
  EXPECT_NE(corrupt.ToString().find("bad bytes"), std::string::npos);
  EXPECT_EQ(corrupt, util::Status::Corrupt("bad bytes"));
  EXPECT_NE(corrupt, util::Status::Truncated("bad bytes"));
}

TEST(Status, StatusOrHoldsValueOrStatus) {
  util::StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);

  util::StatusOr<int> error = util::Status::NoData("empty window");
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), util::StatusCode::kNoData);

  util::StatusOr<std::string> moved = std::string("payload");
  EXPECT_EQ(moved->size(), 7u);
}

// -------------------------------------------------------------- checksum

TEST(Checksum, MatchesCrc32cReferenceVector) {
  // The canonical CRC-32C check value (RFC 3720 appendix et al.).
  EXPECT_EQ(util::Crc32c::Of("123456789"), 0xE3069283u);
  EXPECT_EQ(util::Crc32c::Of(""), 0u);
}

TEST(Checksum, IncrementalUpdatesMatchOneShot) {
  util::Crc32c crc;
  crc.Update("123");
  crc.Update("456");
  crc.Update("789");
  EXPECT_EQ(crc.Digest(), util::Crc32c::Of("123456789"));
  crc.Reset();
  EXPECT_EQ(crc.Digest(), util::Crc32c::Of(""));
  EXPECT_NE(util::Crc32c::Of("123456789"), util::Crc32c::Of("123456788"));
}

// ------------------------------------------------------------ atomic file

TEST(AtomicFile, RoundTripsAndReplacesAtomically) {
  const auto path = (std::filesystem::temp_directory_path() /
                     "tipsy_atomic_file_test.bin")
                        .string();
  const std::string first(1024, 'a');
  ASSERT_TRUE(util::WriteFileAtomic(path, first).ok());
  auto back = util::ReadFileToString(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, first);

  // Overwrite: the old contents are fully replaced, never blended.
  const std::string second = "short";
  ASSERT_TRUE(util::WriteFileAtomic(path, second).ok());
  back = util::ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, second);

  // No temp sibling survives a successful save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(AtomicFile, DirectoryFsyncFailureIsReported) {
  // WriteFileAtomic's durability recipe has three fsync points: the temp
  // file's data, the rename, and the *parent directory* entry. The last
  // one is the subtle one - without it the bytes are durable but the
  // name is not, and a power loss can resurrect the previous file (for
  // an HA snapshot: warm-starting from a checkpoint the journal already
  // moved past). The directory fsync's status must therefore reach the
  // caller like any other IO error. We can't make fsync fail portably in
  // a unit test, so this asserts the observable contract on both sides:
  // a writable directory succeeds end-to-end, and a target whose parent
  // directory cannot even be opened reports kIoError instead of
  // pretending the save was durable.
  const auto dir = std::filesystem::temp_directory_path() /
                   "tipsy_dirsync_test";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "artifact.bin").string();
  EXPECT_TRUE(util::WriteFileAtomic(path, "payload").ok());

  const auto denied = util::WriteFileAtomic(
      "/proc/nonexistent_tipsy_dir/artifact.bin", "payload");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), util::StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFile, MissingFileIsATypedError) {
  const auto missing = util::ReadFileToString("/nonexistent/tipsy.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kIoError);
  EXPECT_FALSE(
      util::WriteFileAtomic("/nonexistent/dir/tipsy.bin", "x").ok());
}

// ------------------------------------------------- format fixtures

core::FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                            std::uint32_t metro) {
  core::FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{0};
  flow.dest_service = wan::ServiceType::kWeb;
  return flow;
}

pipeline::AggRow MakeRow(const core::FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.dest_prefix = util::PrefixId{1};
  row.bytes = bytes;
  return row;
}

auto RowKey(const pipeline::AggRow& row) {
  return std::tuple(row.link.value(), row.src_asn.value(), row.src_prefix24,
                    row.src_metro.value(), row.dest_region.value(),
                    static_cast<int>(row.dest_service),
                    row.dest_prefix.value(), row.bytes);
}

// A trained bundle small enough that the exhaustive byte-flip sweep stays
// fast, but exercising every section of the format.
struct BundleFixture {
  BundleFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1),
        service(&wan, &topology.metros) {
    std::vector<pipeline::AggRow> rows;
    for (std::uint32_t f = 0; f < 12; ++f) {
      rows.push_back(MakeRow(MakeFlow(f % 3, f, f % 2),
                             f % static_cast<std::uint32_t>(wan.link_count()),
                             1000 + f));
    }
    service.Train(rows);
    service.FinalizeTraining();
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
  core::TipsyService service;
};

// ---------------------------------------------------- format back-compat

TEST(FormatCompat, ModelV1StillLoads) {
  core::HistoricalModel model(core::FeatureSet::kAP, 8);
  for (std::uint32_t f = 0; f < 20; ++f) {
    model.Add(MakeRow(MakeFlow(f % 5, f, 1), f % 4, 100 + f));
  }
  model.Finalize();

  std::stringstream v1;
  core::SaveModel(model, v1, /*format_version=*/1);
  const auto restored = core::LoadModel(v1);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->tuple_count(), model.tuple_count());
  for (std::uint32_t f = 0; f < 20; ++f) {
    const auto flow = MakeFlow(f % 5, f, 1);
    const auto original = model.Predict(flow, 3, nullptr);
    const auto loaded = restored->Predict(flow, 3, nullptr);
    ASSERT_EQ(original.size(), loaded.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].link, loaded[i].link);
      EXPECT_DOUBLE_EQ(original[i].probability, loaded[i].probability);
    }
  }
}

TEST(FormatCompat, BundleV1StillLoads) {
  BundleFixture fixture;
  std::stringstream v1;
  core::SaveService(fixture.service, v1, /*format_version=*/1);
  const auto restored =
      core::LoadService(v1, &fixture.wan, &fixture.topology.metros);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE((*restored)->trained());
}

TEST(FormatCompat, UnknownFutureVersionIsVersionMismatch) {
  BundleFixture fixture;
  std::stringstream current;
  core::SaveService(fixture.service, current);
  std::string bytes = current.str();
  bytes[7] = '9';  // TIPSYSV9
  std::istringstream future(bytes);
  const auto result =
      core::LoadService(future, &fixture.wan, &fixture.topology.metros);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kVersionMismatch);
}

TEST(FormatCompat, BundleSavesAtomicallyToDisk) {
  BundleFixture fixture;
  const auto path = (std::filesystem::temp_directory_path() /
                     "tipsy_bundle_test.tipsy")
                        .string();
  // Pre-existing garbage at the target is replaced wholesale.
  ASSERT_TRUE(util::WriteFileAtomic(path, "stale garbage").ok());
  ASSERT_TRUE(core::SaveServiceToFile(fixture.service, path).ok());
  const auto restored = core::LoadServiceFromFile(
      path, &fixture.wan, &fixture.topology.metros);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE((*restored)->trained());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

// -------------------------------------------------------- byte-flip fuzz

TEST(ByteFlipFuzz, EveryBundleMutationLoadsIdenticallyOrFailsCleanly) {
  BundleFixture fixture;
  std::stringstream buffer;
  core::SaveService(fixture.service, buffer);
  const std::string original = buffer.str();
  ASSERT_GT(original.size(), 32u);

  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::istringstream in(scenario::FlipBit(original, byte, bit));
      const auto loaded =
          core::LoadService(in, &fixture.wan, &fixture.topology.metros);
      if (!loaded.ok()) {
        // Clean typed failure; never a crash, hang, or huge allocation.
        const auto code = loaded.status().code();
        EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                    code == util::StatusCode::kTruncated ||
                    code == util::StatusCode::kVersionMismatch)
            << "byte " << byte << " bit " << bit << ": "
            << loaded.status().ToString();
        ++rejected;
        continue;
      }
      // If a mutation was accepted it must be semantically lossless:
      // re-serializing yields the original bytes.
      std::stringstream out;
      core::SaveService(**loaded, out);
      EXPECT_EQ(out.str(), original)
          << "silently accepted corruption at byte " << byte << " bit "
          << bit;
    }
  }
  // v2 checksums make every single-bit flip detectable.
  EXPECT_EQ(rejected, original.size() * 8);
}

TEST(ByteFlipFuzz, EveryRowFileMutationRecoversAPrefixOrFailsCleanly) {
  std::vector<std::vector<pipeline::AggRow>> hours;
  for (std::uint32_t h = 0; h < 3; ++h) {
    std::vector<pipeline::AggRow> rows;
    for (std::uint32_t f = 0; f < 8; ++f) {
      rows.push_back(MakeRow(MakeFlow(f % 4, f, f % 3), f % 5,
                             1000 * (h + 1) + f));
    }
    hours.push_back(std::move(rows));
  }
  std::stringstream buffer;
  pipeline::RowFileWriter writer(buffer);
  for (std::uint32_t h = 0; h < hours.size(); ++h) {
    writer.WriteHour(h, hours[h]);
  }
  const std::string original = buffer.str();
  const auto clean = scenario::ReadRowFileBytes(original);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  ASSERT_EQ(clean.blocks.size(), hours.size());

  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const auto recovered = scenario::ReadRowFileBytes(
          scenario::FlipBit(original, byte, bit));
      if (!recovered.status.ok()) ++rejected;
      // Whatever was recovered before the damage must be bit-honest: each
      // block identical to the clean read of the same archive prefix.
      ASSERT_LE(recovered.blocks.size(), clean.blocks.size());
      for (std::size_t b = 0; b < recovered.blocks.size(); ++b) {
        EXPECT_EQ(recovered.blocks[b].hour, clean.blocks[b].hour)
            << "byte " << byte << " bit " << bit;
        ASSERT_EQ(recovered.blocks[b].rows.size(),
                  clean.blocks[b].rows.size());
        for (std::size_t r = 0; r < recovered.blocks[b].rows.size(); ++r) {
          EXPECT_EQ(RowKey(recovered.blocks[b].rows[r]),
                    RowKey(clean.blocks[b].rows[r]));
        }
      }
    }
  }
  // Every flip damages exactly one block (header, checksum, or payload),
  // so every mutation must be detected.
  EXPECT_EQ(rejected, original.size() * 8);
}

// ------------------------------------------------------- hostile lengths

TEST(HostileLengths, HugeV1RowCountFailsWithoutAllocating) {
  std::stringstream bytes;
  bytes.write("TIPSYRF1", 8);
  pipeline::PutVarint(bytes, 10);          // zigzag(5)
  pipeline::PutVarint(bytes, 1ULL << 40);  // a trillion rows, no data
  pipeline::RowFileReader reader(bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.ReadHour().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kTruncated);
}

TEST(HostileLengths, V2CountExceedingPayloadIsCorrupt) {
  std::stringstream bytes;
  bytes.write("TIPSYRF2", 8);
  pipeline::PutVarint(bytes, 10);          // zigzag(5)
  pipeline::PutVarint(bytes, 1ULL << 40);  // declared rows
  pipeline::PutVarint(bytes, 64);          // ...in a 64-byte payload
  pipeline::RowFileReader reader(bytes);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.ReadHour().has_value());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kCorrupt);
}

TEST(HostileLengths, ImplausiblePayloadSizesAreCorrupt) {
  // Row file: a 1 TiB hour payload.
  std::stringstream rf;
  rf.write("TIPSYRF2", 8);
  pipeline::PutVarint(rf, 0);
  pipeline::PutVarint(rf, 1);
  pipeline::PutVarint(rf, 1ULL << 40);
  pipeline::RowFileReader reader(rf);
  EXPECT_FALSE(reader.ReadHour().has_value());
  EXPECT_EQ(reader.status().code(), util::StatusCode::kCorrupt);

  // Model frame: a 1 TiB declared payload must be rejected before any
  // attempt to read or allocate it.
  std::stringstream hm;
  hm.write("TIPSYHM2", 8);
  const std::uint64_t huge = 1ULL << 40;
  hm.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  const std::uint32_t crc = 0;
  hm.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  const auto model = core::LoadModel(hm);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), util::StatusCode::kCorrupt);
}

// ---------------------------------------------------- row file v1 compat

TEST(FormatCompat, RowFileV1StillReads) {
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t f = 0; f < 10; ++f) {
    rows.push_back(MakeRow(MakeFlow(f, f, 0), f % 3, 100 + f));
  }
  std::stringstream buffer;
  pipeline::RowFileWriter writer(buffer, /*format_version=*/1);
  writer.WriteHour(7, rows);
  pipeline::RowFileReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.format_version(), 1);
  const auto block = reader.ReadHour();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->hour, 7);
  EXPECT_EQ(block->rows.size(), rows.size());
  EXPECT_FALSE(reader.ReadHour().has_value());
  EXPECT_TRUE(reader.ok());  // clean EOF, not an error
}

// ------------------------------------------------- degraded-mode serving

struct RetrainerFixture {
  RetrainerFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  std::vector<pipeline::AggRow> HourRows(util::HourIndex hour) {
    std::vector<pipeline::AggRow> rows;
    for (std::uint32_t f = 0; f < 4; ++f) {
      rows.push_back(MakeRow(MakeFlow(f, f, 0),
                             f % static_cast<std::uint32_t>(wan.link_count()),
                             500 + f));
    }
    for (auto& row : rows) row.hour = hour;
    return rows;
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

TEST(DegradedMode, OutOfOrderHoursAreDroppedAndCounted) {
  RetrainerFixture fixture;
  core::DailyRetrainer retrainer(&fixture.wan, &fixture.topology.metros, 3);
  retrainer.Ingest(30, fixture.HourRows(30));
  retrainer.Ingest(5, fixture.HourRows(5));   // behind the clock: dropped
  retrainer.Ingest(12, fixture.HourRows(12)); // still behind: dropped
  retrainer.Ingest(31, fixture.HourRows(31)); // in order: accepted
  const auto health = retrainer.health_snapshot();
  EXPECT_EQ(health.dropped_hours, 2u);
  EXPECT_EQ(health.last_ingest_hour, 31);
}

TEST(DegradedMode, FailedRetrainKeepsLastGoodAndRetriesBounded) {
  RetrainerFixture fixture;
  core::RetrainPolicy policy;
  policy.max_retrain_retries = 3;
  core::DailyRetrainer retrainer(&fixture.wan, &fixture.topology.metros, 3,
                                 {}, policy);
  // Day 0 trains fine at the day-1 boundary.
  for (util::HourIndex h = 0; h < 24; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  retrainer.Ingest(24, fixture.HourRows(24));
  const auto* good = retrainer.current();
  ASSERT_NE(good, nullptr);

  // Training jobs crash at the day-2 boundary.
  retrainer.SetRetrainFault([](util::HourIndex) { return true; });
  for (util::HourIndex h = 25; h < 54; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  auto health = retrainer.health_snapshot();
  EXPECT_EQ(retrainer.current(), good);  // last-good keeps serving
  EXPECT_GE(health.retrain_failures, 1u);
  // Boundary attempt + bounded retries, not one per ingested hour.
  EXPECT_LE(health.retrain_failures, 4u);
  EXPECT_GE(health.consecutive_failures, 1u);

  // Jobs recover: the next attempt succeeds and failures reset.
  retrainer.SetRetrainFault(nullptr);
  ASSERT_TRUE(retrainer.TryRetrain().ok());
  health = retrainer.health_snapshot();
  EXPECT_NE(retrainer.current(), good);
  EXPECT_EQ(health.consecutive_failures, 0u);
  EXPECT_EQ(health.health, core::ModelHealth::kFresh);
}

TEST(DegradedMode, CollectorOutageAgesHealthThenRecovers) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 200;
  cfg.horizon = util::HourRange{0, 9 * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  // Collector dead for days 3-5 inclusive.
  scenario::FaultScheduleConfig faults;
  faults.collector_down = {
      util::HourRange{3 * util::kHoursPerDay, 6 * util::kHoursPerDay}};
  scenario::FaultInjectingRowSource source(world, faults);

  core::RetrainPolicy policy;
  policy.stale_after_days = 1;
  policy.expire_after_days = 2;  // compressed horizon to keep the test fast
  core::DailyRetrainer retrainer(&world.wan(), &world.metros(), 3, {},
                                 policy);

  std::vector<core::ModelHealth> health_by_day;
  std::vector<const core::TipsyService*> serving_by_day;
  std::vector<std::size_t> retrains_by_day;
  for (util::HourIndex day = 0; day < 9; ++day) {
    source.StreamHours(
        util::HourRange{day * util::kHoursPerDay,
                        (day + 1) * util::kHoursPerDay},
        [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
          retrainer.Ingest(hour, rows);
        });
    // The serving loop's heartbeat keeps the clock moving even when the
    // collector delivered nothing all day.
    retrainer.AdvanceTo((day + 1) * util::kHoursPerDay - 1);
    health_by_day.push_back(retrainer.health());
    serving_by_day.push_back(retrainer.current());
    retrains_by_day.push_back(retrainer.retrain_count());
  }

  EXPECT_EQ(source.hours_dropped(), 3u * util::kHoursPerDay);
  // Normal operation before the outage.
  EXPECT_EQ(health_by_day[0], core::ModelHealth::kNone);
  EXPECT_EQ(health_by_day[1], core::ModelHealth::kFresh);
  EXPECT_EQ(health_by_day[2], core::ModelHealth::kFresh);
  // Day 3's boundary still trains on day 2's data; then the model ages
  // through the blackout: FRESH -> STALE -> EXPIRED.
  EXPECT_EQ(health_by_day[3], core::ModelHealth::kFresh);
  EXPECT_EQ(health_by_day[4], core::ModelHealth::kStale);
  EXPECT_EQ(health_by_day[5], core::ModelHealth::kExpired);
  // The last-good model never stopped serving during the blackout.
  ASSERT_NE(serving_by_day[3], nullptr);
  EXPECT_EQ(serving_by_day[4], serving_by_day[3]);
  EXPECT_EQ(serving_by_day[5], serving_by_day[3]);
  // Data resumed on day 6; the day-7 boundary retrains back to FRESH.
  // Recovery is evidenced by the retrain counter, not pointer identity:
  // the blackout-era service is freed once replaced, so the allocator may
  // hand its address to a later model.
  EXPECT_EQ(health_by_day.back(), core::ModelHealth::kFresh);
  EXPECT_GT(retrains_by_day.back(), retrains_by_day[5]);

  const auto health = retrainer.health_snapshot();
  EXPECT_GE(health.missing_days, 2u);
  EXPECT_GE(health.retrain_failures, 1u);  // "no new data" boundaries
  EXPECT_EQ(health.consecutive_failures, 0u);
}

// -------------------------------------------------------- fault injector

struct InjectorFixture {
  InjectorFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1),
        outages(scenario::OutageSchedule::None(wan.link_count())) {}

  // Deterministic inner source: every hour yields `f` rows tagged with it.
  struct FakeSource : scenario::RowSource {
    explicit FakeSource(InjectorFixture* fixture) : fixture_(fixture) {}
    void StreamHours(util::HourRange range,
                     const RowSink& sink) override {
      for (util::HourIndex h = range.begin; h < range.end; ++h) {
        std::vector<pipeline::AggRow> rows;
        for (std::uint32_t f = 0; f < 6; ++f) {
          rows.push_back(MakeRow(MakeFlow(f, f, 0), f % 3, 100 + f));
          rows.back().hour = h;
        }
        sink(h, rows);
      }
    }
    [[nodiscard]] const wan::Wan& wan() const override {
      return fixture_->wan;
    }
    [[nodiscard]] const geo::MetroCatalogue& metros() const override {
      return fixture_->topology.metros;
    }
    [[nodiscard]] const scenario::OutageSchedule& outages() const override {
      return fixture_->outages;
    }
    [[nodiscard]] std::size_t EstimatedRows(
        util::HourRange range) const override {
      return static_cast<std::size_t>(range.length()) * 6;
    }
    InjectorFixture* fixture_;
  };

  topo::GeneratedTopology topology;
  wan::Wan wan;
  scenario::OutageSchedule outages;
};

TEST(FaultInjection, CollectorDownWindowsDropExactlyThoseHours) {
  InjectorFixture fixture;
  InjectorFixture::FakeSource inner(&fixture);
  scenario::FaultScheduleConfig config;
  config.collector_down = {util::HourRange{10, 14}};
  scenario::FaultInjectingRowSource source(inner, config);

  std::vector<util::HourIndex> seen;
  source.StreamHours(util::HourRange{0, 20},
                     [&](util::HourIndex hour,
                         std::span<const pipeline::AggRow> rows) {
                       seen.push_back(hour);
                       EXPECT_EQ(rows.size(), 6u);
                     });
  EXPECT_EQ(source.hours_dropped(), 4u);
  ASSERT_EQ(seen.size(), 16u);
  for (const auto hour : seen) {
    EXPECT_TRUE(hour < 10 || hour >= 14) << hour;
  }
}

TEST(FaultInjection, RowLossThinsDegradedWindows) {
  InjectorFixture fixture;
  InjectorFixture::FakeSource inner(&fixture);
  scenario::FaultScheduleConfig config;
  config.degraded = {util::HourRange{0, 10}};
  config.row_loss_rate = 1.0;  // lose everything inside the window
  scenario::FaultInjectingRowSource source(inner, config);

  std::size_t rows_in = 0;
  std::size_t hours_seen = 0;
  source.StreamHours(util::HourRange{0, 12},
                     [&](util::HourIndex hour,
                         std::span<const pipeline::AggRow> rows) {
                       ++hours_seen;
                       rows_in += rows.size();
                       if (hour >= 10) {
                         EXPECT_EQ(rows.size(), 6u);
                       }
                     });
  EXPECT_EQ(hours_seen, 12u);            // hours still delivered...
  EXPECT_EQ(rows_in, 12u);               // ...but thinned to the 2 clean ones
  EXPECT_EQ(source.rows_dropped(), 60u);
}

TEST(FaultInjection, DuplicationAndReorderAreDeterministic) {
  InjectorFixture fixture;
  InjectorFixture::FakeSource inner(&fixture);
  scenario::FaultScheduleConfig config;
  config.duplicate_hour_rate = 1.0;
  scenario::FaultInjectingRowSource duplicator(inner, config);
  std::vector<util::HourIndex> seen;
  duplicator.StreamHours(util::HourRange{0, 4},
                         [&](util::HourIndex hour,
                             std::span<const pipeline::AggRow>) {
                           seen.push_back(hour);
                         });
  EXPECT_EQ(seen, (std::vector<util::HourIndex>{0, 0, 1, 1, 2, 2, 3, 3}));
  EXPECT_EQ(duplicator.hours_duplicated(), 4u);

  config = {};
  config.reorder_rate = 1.0;
  scenario::FaultInjectingRowSource reorderer(inner, config);
  seen.clear();
  reorderer.StreamHours(util::HourRange{0, 4},
                        [&](util::HourIndex hour,
                            std::span<const pipeline::AggRow>) {
                          seen.push_back(hour);
                        });
  // Adjacent pairs swapped: 1,0,3,2.
  EXPECT_EQ(seen, (std::vector<util::HourIndex>{1, 0, 3, 2}));
  EXPECT_GE(reorderer.hours_reordered(), 2u);

  // Same seed, same fates.
  scenario::FaultInjectingRowSource again(inner, config);
  std::vector<util::HourIndex> replay;
  again.StreamHours(util::HourRange{0, 4},
                    [&](util::HourIndex hour,
                        std::span<const pipeline::AggRow>) {
                      replay.push_back(hour);
                    });
  EXPECT_EQ(replay, seen);
}

TEST(FaultInjection, EstimatedRowsAccountsForScheduledLoss) {
  InjectorFixture fixture;
  InjectorFixture::FakeSource inner(&fixture);
  const util::HourRange range{0, 20};
  const std::size_t base = inner.EstimatedRows(range);
  ASSERT_GT(base, 0u);

  // No faults: estimate passes through.
  scenario::FaultInjectingRowSource clean(inner, {});
  EXPECT_EQ(clean.EstimatedRows(range), base);

  // Collector down for half the range: estimate halves.
  scenario::FaultScheduleConfig down;
  down.collector_down = {util::HourRange{0, 10}};
  scenario::FaultInjectingRowSource halved(inner, down);
  EXPECT_EQ(halved.EstimatedRows(range), base / 2);

  // Degraded everywhere at 50% row loss: estimate halves too.
  scenario::FaultScheduleConfig thinned;
  thinned.degraded = {range};
  thinned.row_loss_rate = 0.5;
  scenario::FaultInjectingRowSource lossy(inner, thinned);
  EXPECT_EQ(lossy.EstimatedRows(range), base / 2);

  // Duplication adds rows back: outage + guaranteed duplicates.
  scenario::FaultScheduleConfig mixed;
  mixed.collector_down = {util::HourRange{0, 10}};
  mixed.duplicate_hour_rate = 1.0;
  scenario::FaultInjectingRowSource doubled(inner, mixed);
  EXPECT_EQ(doubled.EstimatedRows(range), base);

  // The injected stream actually delivers what was estimated (loss and
  // duplication are deterministic at rate 1.0 / full windows).
  std::size_t delivered = 0;
  scenario::FaultInjectingRowSource check(inner, mixed);
  check.StreamHours(range, [&](util::HourIndex,
                               std::span<const pipeline::AggRow> rows) {
    delivered += rows.size();
  });
  EXPECT_EQ(delivered, check.EstimatedRows(range));
}

// --------------------------------------------------------- cms health gate

TEST(CmsHealthGate, ExpiredModelForcesLegacyFallback) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 200;
  scenario::Scenario world(cfg);
  // A service exists but its validity horizon has passed. The gate must
  // trip before any prediction is consulted, so an empty (but finalized)
  // service stands in for the expired model.
  core::TipsyService expired(&world.wan(), &world.metros());
  expired.FinalizeTraining();

  cms::CmsConfig config;
  config.health_provider = [] { return core::ModelHealth::kExpired; };
  cms::CongestionMitigationSystem cms(&world, &expired, config);

  const util::LinkId hot{0};
  std::vector<double> loads(world.wan().link_count(), 0.0);
  loads[hot.value()] = world.wan().link(hot).CapacityBytesPerHour() * 1.2;
  pipeline::AggRow row;
  row.link = hot;
  row.src_asn = util::AsId{100};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, 1, 0), 24);
  row.src_metro = util::MetroId{0};
  const auto& destination = world.wan().destination(0);
  row.dest_region = destination.region;
  row.dest_service = destination.service;
  row.dest_prefix = destination.prefix;
  row.bytes = static_cast<std::uint64_t>(loads[hot.value()]);

  cms.ObserveHour(0, loads, std::vector<pipeline::AggRow>{row});
  ASSERT_FALSE(cms.events().empty());
  EXPECT_EQ(cms.health_fallbacks(), 1u);
  // Legacy behaviour still mitigates - it withdraws without the safety
  // check rather than doing nothing.
  EXPECT_GE(cms.withdrawals_issued(), 1u);
  world.ResetAdvertisements();
}

}  // namespace
}  // namespace tipsy
