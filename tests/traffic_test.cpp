#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geo/geoip.h"
#include "topo/generator.h"
#include "traffic/workload.h"
#include "wan/wan.h"

namespace tipsy::traffic {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
    cfg_.seed = 11;
    cfg_.flow_target = 800;
    workload_ = std::make_unique<Workload>(
        Workload::Generate(topology_, *wan_, cfg_, &geoip_));
  }
  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
  geo::GeoIpDb geoip_;
  TrafficConfig cfg_;
  std::unique_ptr<Workload> workload_;
};

TEST_F(WorkloadTest, ReachesFlowTarget) {
  EXPECT_GE(workload_->flows().size(), cfg_.flow_target);
}

TEST_F(WorkloadTest, EveryEndpointHasAFlow) {
  std::set<std::uint32_t> used;
  for (const auto& flow : workload_->flows()) used.insert(flow.endpoint);
  EXPECT_EQ(used.size(), workload_->endpoints().size());
}

TEST_F(WorkloadTest, EndpointPrefixesAreUniqueSlash24s) {
  std::set<util::Ipv4Prefix> prefixes;
  for (const auto& endpoint : workload_->endpoints()) {
    EXPECT_EQ(endpoint.prefix24.length(), 24);
    EXPECT_TRUE(prefixes.insert(endpoint.prefix24).second);
  }
}

TEST_F(WorkloadTest, GeoIpRegisteredWithGroundTruth) {
  for (const auto& endpoint : workload_->endpoints()) {
    const auto metro = geoip_.Lookup(endpoint.prefix24);
    ASSERT_TRUE(metro.has_value());
    EXPECT_EQ(*metro, endpoint.metro);
  }
}

TEST_F(WorkloadTest, EndpointMetroWithinNodePresence) {
  for (const auto& endpoint : workload_->endpoints()) {
    const auto& presence = topology_.graph.node(endpoint.node).presence;
    EXPECT_NE(std::find(presence.begin(), presence.end(), endpoint.metro),
              presence.end());
  }
}

TEST_F(WorkloadTest, NoFlowsFromPureTransitNodes) {
  for (const auto& endpoint : workload_->endpoints()) {
    const auto type = topology_.graph.node(endpoint.node).type;
    EXPECT_NE(type, topo::AsType::kTier1);
    EXPECT_NE(type, topo::AsType::kExchange);
    EXPECT_NE(type, topo::AsType::kCloudWan);
  }
}

TEST_F(WorkloadTest, BytesAtIsDeterministic) {
  for (std::size_t f = 0; f < 10; ++f) {
    EXPECT_DOUBLE_EQ(workload_->BytesAt(f, 100), workload_->BytesAt(f, 100));
  }
}

TEST_F(WorkloadTest, DiurnalPatternPeaksInLocalAfternoon) {
  // Averaged over persistent flows, bytes at local 14:00 exceed local
  // 02:00 clearly.
  double peak = 0.0, trough = 0.0;
  int counted = 0;
  for (std::size_t f = 0; f < workload_->flows().size() && counted < 200;
       ++f) {
    if (!workload_->flows()[f].persistent) continue;
    const auto& ep = workload_->endpoints()[workload_->flows()[f].endpoint];
    const double lon =
        topology_.metros.Get(ep.metro).location.lon_deg;
    // Hour h whose local solar time is 14:00 / 02:00 on day 2 (a weekday).
    const auto local_to_utc = [&](double local) {
      int h = static_cast<int>(std::fmod(local - lon / 15.0 + 48.0, 24.0));
      return 2 * 24 + h;
    };
    // Average over hours to integrate out noise.
    peak += workload_->BytesAt(f, local_to_utc(14));
    trough += workload_->BytesAt(f, local_to_utc(2));
    ++counted;
  }
  ASSERT_GT(counted, 50);
  EXPECT_GT(peak, trough * 1.5);
}

TEST_F(WorkloadTest, PersistentFlowsAlwaysActive) {
  for (std::size_t f = 0; f < workload_->flows().size(); ++f) {
    if (!workload_->flows()[f].persistent) continue;
    for (util::HourIndex h = 0; h < 14 * 24; h += 24) {
      EXPECT_GT(workload_->BytesAt(f, h + 12), 0.0);
    }
  }
}

TEST_F(WorkloadTest, IntermittentFlowsSkipDaysAtConfiguredRate) {
  std::size_t active_days = 0;
  std::size_t total_days = 0;
  for (std::size_t f = 0; f < workload_->flows().size(); ++f) {
    if (workload_->flows()[f].persistent) continue;
    for (int d = 0; d < 30; ++d) {
      ++total_days;
      if (workload_->BytesAt(f, d * 24 + 12) > 0.0) ++active_days;
    }
  }
  ASSERT_GT(total_days, 1000u);
  const double rate =
      static_cast<double>(active_days) / static_cast<double>(total_days);
  EXPECT_NEAR(rate, cfg_.daily_active_probability, 0.05);
}

TEST_F(WorkloadTest, PersistentFractionApproximatelyHonored) {
  std::size_t persistent = 0;
  for (const auto& flow : workload_->flows()) {
    if (flow.persistent) ++persistent;
  }
  const double fraction = static_cast<double>(persistent) /
                          static_cast<double>(workload_->flows().size());
  EXPECT_NEAR(fraction, cfg_.persistent_fraction, 0.06);
}

TEST_F(WorkloadTest, ScaleVolumesIsLinear) {
  const double before = workload_->BytesAt(0, 50);
  workload_->ScaleVolumes(2.0);
  EXPECT_DOUBLE_EQ(workload_->BytesAt(0, 50), before * 2.0);
}

TEST_F(WorkloadTest, ScaleFlowAffectsOnlyThatFlow) {
  const double f0 = workload_->BytesAt(0, 50);
  const double f1 = workload_->BytesAt(1, 50);
  workload_->ScaleFlow(0, 3.0);
  EXPECT_DOUBLE_EQ(workload_->BytesAt(0, 50), f0 * 3.0);
  EXPECT_DOUBLE_EQ(workload_->BytesAt(1, 50), f1);
}

TEST_F(WorkloadTest, BaseVolumesWithinConfiguredEnvelope) {
  const double max_factor =
      std::max({cfg_.enterprise_volume_factor, cfg_.cdn_volume_factor, 1.5});
  for (const auto& flow : workload_->flows()) {
    EXPECT_GE(flow.base_bytes_per_hour, cfg_.min_bytes_per_hour * 0.99);
    EXPECT_LE(flow.base_bytes_per_hour,
              cfg_.max_bytes_per_hour * max_factor * 1.01);
  }
}

TEST_F(WorkloadTest, GenerationDeterministicForSeed) {
  geo::GeoIpDb other_geoip;
  const auto again =
      Workload::Generate(topology_, *wan_, cfg_, &other_geoip);
  ASSERT_EQ(again.flows().size(), workload_->flows().size());
  for (std::size_t f = 0; f < again.flows().size(); ++f) {
    EXPECT_EQ(again.flows()[f].endpoint, workload_->flows()[f].endpoint);
    EXPECT_EQ(again.flows()[f].destination,
              workload_->flows()[f].destination);
    EXPECT_EQ(again.flows()[f].hash, workload_->flows()[f].hash);
  }
}

TEST_F(WorkloadTest, WeekendChangesEnterpriseVolume) {
  // Day 5 (Saturday) vs day 4 (Friday) at identical local hour: most
  // flows move by the weekend factor.
  std::size_t changed = 0;
  std::size_t tested = 0;
  for (std::size_t f = 0; f < workload_->flows().size() && tested < 300;
       ++f) {
    if (!workload_->flows()[f].persistent) continue;
    ++tested;
    const double friday = workload_->BytesAt(f, 4 * 24 + 12);
    const double saturday = workload_->BytesAt(f, 5 * 24 + 12);
    // Noise is ~20%; the weekend factor is 0.65 or 1.1.
    if (std::abs(saturday / friday - 1.0) > 0.15) ++changed;
  }
  EXPECT_GT(changed, tested / 2);
}

}  // namespace
}  // namespace tipsy::traffic
