// End-to-end properties of the whole stack on a tiny world: the shapes the
// paper's evaluation rests on must hold structurally, not just for one
// seed.
#include <gtest/gtest.h>

#include "cms/cms.h"
#include "scenario/experiment.h"
#include "scenario/scenario.h"

namespace tipsy {
namespace {

class EndToEndTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  scenario::ScenarioConfig Config() const {
    auto cfg = scenario::TinyScenarioConfig();
    cfg.seed = cfg.topology.seed = GetParam();
    cfg.traffic.seed = GetParam() + 1;
    cfg.outages.seed = GetParam() + 2;
    cfg.traffic.flow_target = 1200;
    cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
    return cfg;
  }
};

TEST_P(EndToEndTest, EvaluationShapeInvariants) {
  scenario::Scenario world(Config());
  const auto result =
      scenario::RunExperiment(world, scenario::PaperWindows());
  ASSERT_FALSE(result.overall.empty());

  auto top3 = [&](const char* name, const core::EvalSet& eval) {
    const auto* model = result.tipsy->Find(name);
    EXPECT_NE(model, nullptr) << name;
    return core::EvaluateModel(*model, eval).top3();
  };

  // Specific models beat the AS-only model on normal traffic.
  const double a = top3("Hist_A", result.overall);
  const double ap = top3("Hist_AP", result.overall);
  const double al = top3("Hist_AL", result.overall);
  EXPECT_GE(ap, a - 0.02);
  EXPECT_GE(al, a - 0.02);
  EXPECT_GT(ap, 0.5);

  // The oracle bounds its model.
  const auto oracle = core::BuildOracle(core::FeatureSet::kAP,
                                        result.overall);
  EXPECT_GE(core::EvaluateModel(oracle, result.overall).top3(),
            ap - 1e-9);

  // On outage-affected traffic the geographic fallback can only help.
  if (!result.outage_all.empty()) {
    EXPECT_GE(top3("Hist_AL+G", result.outage_all),
              top3("Hist_AL", result.outage_all) - 1e-9);
  }
  // Ensembles never lose to their first stage.
  EXPECT_GE(top3("Hist_AP/AL/A", result.overall), ap - 1e-9);
}

TEST_P(EndToEndTest, OutageEvaluationWellFormed) {
  scenario::Scenario world(Config());
  const auto result =
      scenario::RunExperiment(world, scenario::PaperWindows());
  if (result.outage_all.empty()) GTEST_SKIP() << "no outages this seed";
  // Every outage case carries an exclusion mask and its actual links are
  // all live under that mask (traffic cannot arrive on a down link).
  for (const auto& ec : result.outage_all.cases()) {
    EXPECT_NE(ec.mask_id, 0u);
    const auto* mask = result.outage_all.mask(ec.mask_id);
    ASSERT_NE(mask, nullptr);
    for (const auto& [link, bytes] : ec.actual) {
      EXPECT_FALSE((*mask)[link.value()]);
    }
  }
  // No model beats its oracle on the outage subset either.
  const auto* model = result.tipsy->Find("Hist_AP");
  const auto oracle =
      core::BuildOracle(core::FeatureSet::kAP, result.outage_all);
  EXPECT_GE(core::EvaluateModel(oracle, result.outage_all).top3(),
            core::EvaluateModel(*model, result.outage_all).top3() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest,
                         ::testing::Values(42, 1234, 777));

TEST(EndToEnd, CmsReducesOverloadDuration) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 1000;
  cfg.horizon = util::HourRange{0, 26 * util::kHoursPerDay};
  cfg.target_p99_utilization = 0.6;
  scenario::Scenario world(cfg);
  auto windows = scenario::PaperWindows();
  auto experiment = scenario::RunExperiment(world, windows);

  // Surge a busy link.
  const auto start = windows.test.begin;
  std::vector<double> loads(world.wan().link_count(), 0.0);
  world.SimulateHours({start, start + 1}, nullptr,
                      [&](util::HourIndex, std::span<const double> l) {
                        loads.assign(l.begin(), l.end());
                      });
  std::uint32_t victim = 0;
  double best = 0.0;
  for (std::uint32_t l = 0; l < loads.size(); ++l) {
    const double cap =
        world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
    if (cap <= 0.0) continue;
    if (loads[l] / cap > best) {
      best = loads[l] / cap;
      victim = l;
    }
  }
  ASSERT_GT(best, 0.0);
  for (std::size_t f = 0; f < world.workload().flows().size(); ++f) {
    for (const auto& share : world.ResolveFlow(f, start)) {
      if (share.link.value() == victim) {
        world.mutable_workload().ScaleFlow(f, 1.5 / best);
        break;
      }
    }
  }

  // Without CMS the victim stays hot for the whole window; with CMS the
  // withdrawal sheds load within a couple of hours.
  auto hot_hours = [&](bool with_cms) {
    world.ResetAdvertisements();
    cms::CmsConfig cms_cfg;
    cms::CongestionMitigationSystem cms(&world, experiment.tipsy.get(),
                                        cms_cfg);
    std::vector<pipeline::AggRow> hour_rows;
    std::size_t hot = 0;
    world.SimulateHours(
        {start, start + 8},
        [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
          hour_rows.assign(rows.begin(), rows.end());
        },
        [&](util::HourIndex hour, std::span<const double> l) {
          const double cap = world.wan()
                                 .link(util::LinkId{victim})
                                 .CapacityBytesPerHour();
          if (l[victim] / cap > 0.85) ++hot;
          if (with_cms) cms.ObserveHour(hour, l, hour_rows);
        });
    return hot;
  };
  const auto without = hot_hours(false);
  const auto with = hot_hours(true);
  ASSERT_GT(without, 0u) << "surge failed to congest the victim";
  EXPECT_LT(with, without);
}

TEST(EndToEnd, SuspiciousTrafficIsDetectable) {
  // The conclusion's spoofed-traffic use case: a flow claiming to be a
  // known source but arriving on a link where that source's traffic is
  // exceedingly unlikely sticks out against the model.
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 800;
  cfg.horizon = util::HourRange{0, 22 * util::kHoursPerDay};
  scenario::Scenario world(cfg);
  auto windows = scenario::PaperWindows();
  windows.test = util::HourRange{windows.train.end, windows.train.end + 1};
  const auto result = scenario::RunExperiment(world, windows);

  const auto* model = result.tipsy->Find("Hist_AP");
  const auto flow = world.FlowFeaturesOf(0);
  const auto predictions = model->Predict(flow, 8, nullptr);
  ASSERT_FALSE(predictions.empty());
  // Pick a link the model has never associated with this flow.
  std::uint32_t absurd = 0;
  for (std::uint32_t l = 0; l < world.wan().link_count(); ++l) {
    bool predicted = false;
    for (const auto& p : predictions) {
      if (p.link.value() == l) predicted = true;
    }
    if (!predicted) {
      absurd = l;
      break;
    }
  }
  double plausibility = 0.0;
  for (const auto& p : predictions) {
    if (p.link.value() == absurd) plausibility = p.probability;
  }
  EXPECT_EQ(plausibility, 0.0);
  EXPECT_GT(predictions.front().probability, 0.2);
}

}  // namespace
}  // namespace tipsy
