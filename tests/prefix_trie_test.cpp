#include <gtest/gtest.h>

#include <map>

#include "util/prefix_trie.h"
#include "util/rng.h"

namespace tipsy::util {
namespace {

TEST(PrefixTrie, EmptyLookupsMissed) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_EQ(trie.Lookup(Ipv4Addr(1, 2, 3, 4)), nullptr);
  EXPECT_FALSE(trie.LongestMatchPrefix(Ipv4Addr(1, 2, 3, 4)).has_value());
}

TEST(PrefixTrie, InsertAndExactFind) {
  PrefixTrie<int> trie;
  const Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 8);
  EXPECT_TRUE(trie.Insert(p, 7));
  EXPECT_FALSE(trie.Insert(p, 9));  // replace
  ASSERT_NE(trie.Find(p), nullptr);
  EXPECT_EQ(*trie.Find(p), 9);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Find(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 9)), nullptr);
}

TEST(PrefixTrie, LongestPrefixWins) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), 2);
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(10, 9, 9, 9)), 1);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(10, 1, 9, 9)), 2);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(10, 1, 2, 9)), 3);
  EXPECT_EQ(trie.Lookup(Ipv4Addr(11, 0, 0, 1)), nullptr);
  EXPECT_EQ(trie.LongestMatchPrefix(Ipv4Addr(10, 1, 2, 9)).value(),
            Ipv4Prefix(Ipv4Addr(10, 1, 2, 0), 24));
  EXPECT_EQ(trie.LongestMatchPrefix(Ipv4Addr(10, 9, 0, 1)).value(),
            Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8));
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Addr(0u), 0), 42);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(255, 255, 255, 255)), 42);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(0, 0, 0, 0)), 42);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Addr(1, 2, 3, 4), 32), 5);
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(1, 2, 3, 4)), 5);
  EXPECT_EQ(trie.Lookup(Ipv4Addr(1, 2, 3, 5)), nullptr);
}

TEST(PrefixTrie, RemoveRestoresShorterMatch) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), 2);
  EXPECT_TRUE(trie.Remove(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)));
  EXPECT_FALSE(trie.Remove(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)));
  EXPECT_EQ(*trie.Lookup(Ipv4Addr(10, 1, 2, 3)), 1);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(PrefixTrie, EntriesInLexicographicOrder) {
  PrefixTrie<int> trie;
  trie.Insert(Ipv4Prefix(Ipv4Addr(192, 168, 0, 0), 16), 3);
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 1);
  trie.Insert(Ipv4Prefix(Ipv4Addr(10, 128, 0, 0), 9), 2);
  const auto entries = trie.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].second, 1);
  EXPECT_EQ(entries[1].second, 2);
  EXPECT_EQ(entries[2].second, 3);
  EXPECT_EQ(entries[0].first, Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8));
}

// Property: the trie agrees with a brute-force LPM over random inserts.
class TrieFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieFuzzTest, MatchesBruteForce) {
  Rng rng(GetParam());
  PrefixTrie<std::size_t> trie;
  std::vector<Ipv4Prefix> prefixes;
  for (std::size_t i = 0; i < 300; ++i) {
    const auto length = static_cast<std::uint8_t>(rng.NextInRange(4, 28));
    const Ipv4Prefix p(
        Ipv4Addr(static_cast<std::uint32_t>(rng.Next())), length);
    // Later inserts of the same prefix overwrite; mimic in the oracle by
    // skipping duplicates.
    if (trie.Insert(p, i)) prefixes.push_back(p);
  }
  auto brute = [&](Ipv4Addr a) -> const Ipv4Prefix* {
    const Ipv4Prefix* best = nullptr;
    for (const auto& p : prefixes) {
      if (p.Contains(a) && (best == nullptr ||
                            p.length() > best->length())) {
        best = &p;
      }
    }
    return best;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    Ipv4Addr addr(static_cast<std::uint32_t>(rng.Next()));
    if (trial % 3 == 0 && !prefixes.empty()) {
      // Bias towards addresses inside known prefixes.
      const auto& p = prefixes[rng.NextBelow(prefixes.size())];
      addr = Ipv4Addr(p.address().bits() |
                      (static_cast<std::uint32_t>(rng.Next()) &
                       ~Ipv4Prefix::Mask(p.length())));
    }
    const auto expected = brute(addr);
    const auto got = trie.LongestMatchPrefix(addr);
    if (expected == nullptr) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, *expected) << addr.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieFuzzTest,
                         ::testing::Values(3, 17, 2024));

}  // namespace
}  // namespace tipsy::util
