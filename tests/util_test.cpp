#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/hash.h"
#include "util/ids.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"
#include "util/table.h"

namespace tipsy::util {
namespace {

// ---------------------------------------------------------------- ids

TEST(StrongId, DefaultIsInvalid) {
  AsId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(AsId{7}.valid());
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<AsId, LinkId>);
  EXPECT_EQ(AsId{3}, AsId{3});
  EXPECT_LT(AsId{3}, AsId{4});
}

TEST(StrongId, Hashable) {
  std::hash<LinkId> h;
  EXPECT_EQ(h(LinkId{5}), h(LinkId{5}));
  EXPECT_NE(h(LinkId{5}), h(LinkId{6}));
}

// ---------------------------------------------------------------- hash

TEST(Hash, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Single-bit input changes flip roughly half the output bits.
  const auto a = Mix64(0x1000);
  const auto b = Mix64(0x1001);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(Hash, HashAllOrderSensitive) {
  EXPECT_NE(HashAll(1, 2), HashAll(2, 1));
  EXPECT_EQ(HashAll(1, 2, 3), HashAll(1, 2, 3));
}

// ---------------------------------------------------------------- ip

TEST(Ipv4, AddressRoundTrip) {
  const Ipv4Addr a(10, 1, 2, 3);
  EXPECT_EQ(a.ToString(), "10.1.2.3");
  EXPECT_EQ(a.bits(), 0x0a010203u);
}

TEST(Ipv4, PrefixMasksHostBits) {
  const Ipv4Prefix p(Ipv4Addr(192, 168, 77, 200), 24);
  EXPECT_EQ(p.ToString(), "192.168.77.0/24");
  EXPECT_TRUE(p.Contains(Ipv4Addr(192, 168, 77, 1)));
  EXPECT_FALSE(p.Contains(Ipv4Addr(192, 168, 78, 1)));
}

TEST(Ipv4, PrefixContainsPrefix) {
  const Ipv4Prefix wide(Ipv4Addr(10, 0, 0, 0), 8);
  const Ipv4Prefix narrow(Ipv4Addr(10, 5, 0, 0), 16);
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(narrow.Contains(wide));
  EXPECT_TRUE(wide.Contains(wide));
}

TEST(Ipv4, ZeroLengthPrefixContainsEverything) {
  const Ipv4Prefix all(Ipv4Addr(1, 2, 3, 4), 0);
  EXPECT_TRUE(all.Contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), 1ULL << 32);
}

TEST(Ipv4, Slash24OfAddress) {
  EXPECT_EQ(Slash24Of(Ipv4Addr(1, 2, 3, 99)),
            Ipv4Prefix(Ipv4Addr(1, 2, 3, 0), 24));
}

class PrefixLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthTest, SizeMatchesLength) {
  const auto length = static_cast<std::uint8_t>(GetParam());
  const Ipv4Prefix p(Ipv4Addr(172, 16, 0, 0), length);
  EXPECT_EQ(p.size(), 1ULL << (32 - length));
  EXPECT_TRUE(p.Contains(p.address()));
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthTest,
                         ::testing::Values(0, 1, 8, 12, 16, 20, 24, 30, 31,
                                           32));

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, ForkIndependentButStable) {
  Rng parent(9);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  Rng f1_again = Rng(9).Fork(1);
  EXPECT_EQ(f1.Next(), f1_again.Next());
  EXPECT_NE(f1.Next(), f2.Next());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.NextBelow(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextExponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextBoundedPareto(1.0, 100.0, 1.3);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.NextPoisson(mean)));
  }
  EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 32.0, 100.0,
                                           1000.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(ZipfSampler, PmfDecreasesAndSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    total += zipf.pmf(i);
    if (i > 0) EXPECT_LE(zipf.pmf(i), zipf.pmf(i - 1) + 1e-12);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, HeadIsPopular) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(29);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  EXPECT_GT(head, 3000);  // top 1% of ranks take >30% of draws
}

TEST(WeightedPick, RespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[WeightedPick(weights, rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(WeightedPick, AllZeroReturnsSize) {
  Rng rng(37);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(WeightedPick(weights, rng), weights.size());
}

// ---------------------------------------------------------------- stats

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> values{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 25.0);
}

class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble() * 100);
  std::sort(values.begin(), values.end());
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = PercentileSorted(values, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Range(1, 6));

TEST(TukeyBox, OrderingInvariant) {
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 100};
  const auto box = MakeTukeyBox(values);
  EXPECT_LE(box.whisker_low, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.whisker_high);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers.front(), 100.0);
}

TEST(TukeyBox, NoOutliersForUniformish) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  const auto box = MakeTukeyBox(values);
  EXPECT_TRUE(box.outliers.empty());
  EXPECT_DOUBLE_EQ(box.whisker_low, 0.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 99.0);
}

TEST(WeightedCdf, EvaluateAndQuantile) {
  WeightedCdf cdf;
  cdf.Add(1.0, 10.0);
  cdf.Add(2.0, 30.0);
  cdf.Add(3.0, 60.0);
  cdf.Finalize();
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.1);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.5), 0.4);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.05), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.4), 2.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 3.0);
}

TEST(WeightedCdf, CdfIsMonotone) {
  Rng rng(41);
  WeightedCdf cdf;
  for (int i = 0; i < 500; ++i) {
    cdf.Add(rng.NextDouble() * 50, rng.NextDouble());
  }
  cdf.Finalize();
  double prev = -1.0;
  for (double x = -1.0; x <= 51.0; x += 0.5) {
    const double f = cdf.Evaluate(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.99);
  h.Add(-5.0);   // clamps to first bin
  h.Add(100.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
}

// ---------------------------------------------------------------- table

TEST(TextTable, RendersAlignedCells) {
  TextTable table({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const auto text = table.ToString();
  EXPECT_NE(text.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(text.find("| 333 | 4  |"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.ToString().find("only"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Percent(0.7654), "76.54");
  EXPECT_EQ(TextTable::Gbps(4e10), "40.0G");
  EXPECT_EQ(TextTable::Gbps(2.5e9, 2), "2.50G");
  EXPECT_EQ(TextTable::HumanBytes(2048), "2.00KB");
}

TEST(CsvWriter, QuotesOnlyWhenNeeded) {
  std::ostringstream oss;
  CsvWriter csv(oss);
  csv.Row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(oss.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

// ---------------------------------------------------------------- time

TEST(SimTime, HourArithmetic) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(25), 1);
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(23), 0);
  EXPECT_EQ(DayIndex(24), 1);
  EXPECT_EQ(DayOfWeek(0), 0);
  EXPECT_EQ(DayOfWeek(7 * 24), 0);
  EXPECT_EQ(DayOfWeek(8 * 24), 1);
}

TEST(SimTime, HourRangeSemantics) {
  const HourRange r{10, 20};
  EXPECT_EQ(r.length(), 10);
  EXPECT_TRUE(r.Contains(10));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_TRUE(r.Overlaps(HourRange{19, 30}));
  EXPECT_FALSE(r.Overlaps(HourRange{20, 30}));
}

TEST(SimTime, FormatHour) {
  EXPECT_EQ(FormatHour(0), "day 0 00:00");
  EXPECT_EQ(FormatHour(24 * 3 + 7), "day 3 07:00");
}

}  // namespace
}  // namespace tipsy::util
