#include <gtest/gtest.h>

#include "cms/cms.h"
#include "scenario/experiment.h"

namespace tipsy::cms {
namespace {

class CmsTest : public ::testing::Test {
 protected:
  CmsTest() {
    auto cfg = scenario::TinyScenarioConfig();
    cfg.traffic.flow_target = 600;
    cfg.horizon = util::HourRange{0, 26 * util::kHoursPerDay};
    world_ = std::make_unique<scenario::Scenario>(cfg);
    auto windows = scenario::PaperWindows();
    windows.train = util::HourRange{0, 14 * util::kHoursPerDay};
    windows.test = util::HourRange{windows.train.end,
                                   windows.train.end + 24};
    experiment_ = std::make_unique<scenario::ExperimentResult>(
        scenario::RunExperiment(*world_, windows));
  }

  std::unique_ptr<scenario::Scenario> world_;
  std::unique_ptr<scenario::ExperimentResult> experiment_;
};

TEST_F(CmsTest, SustainedMinutesReflectUtilization) {
  CongestionMitigationSystem cms(world_.get(), experiment_->tipsy.get(),
                                 CmsConfig{});
  // Far below the trigger: never sustained. Far above: the whole hour.
  EXPECT_EQ(cms.SustainedMinutesAbove(util::LinkId{0}, 10, 0.10), 0);
  EXPECT_EQ(cms.SustainedMinutesAbove(util::LinkId{0}, 10, 2.00), 60);
  // Near the trigger: somewhere in between, and deterministic.
  const int near = cms.SustainedMinutesAbove(util::LinkId{0}, 10, 0.86);
  EXPECT_EQ(near, cms.SustainedMinutesAbove(util::LinkId{0}, 10, 0.86));
  EXPECT_GE(near, 0);
  EXPECT_LE(near, 60);
}

TEST_F(CmsTest, QuietHoursTriggerNothing) {
  CongestionMitigationSystem cms(world_.get(), experiment_->tipsy.get(),
                                 CmsConfig{});
  const std::vector<double> idle(world_->wan().link_count(), 0.0);
  cms.ObserveHour(0, idle, {});
  EXPECT_TRUE(cms.events().empty());
  EXPECT_TRUE(cms.actions().empty());
}

TEST_F(CmsTest, OverloadTriggersWithdrawalOfTopPrefix) {
  CongestionMitigationSystem cms(world_.get(), experiment_->tipsy.get(),
                                 CmsConfig{});
  const util::LinkId hot{0};
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  loads[hot.value()] =
      world_->wan().link(hot).CapacityBytesPerHour() * 1.2;

  // One big flow on the hot link for prefix of destination 0.
  pipeline::AggRow row;
  row.hour = 0;
  row.link = hot;
  row.src_asn = util::AsId{100};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, 1, 0), 24);
  row.src_metro = util::MetroId{0};
  const auto& destination = world_->wan().destination(0);
  row.dest_region = destination.region;
  row.dest_service = destination.service;
  row.dest_prefix = destination.prefix;
  row.bytes = static_cast<std::uint64_t>(loads[hot.value()]);

  cms.ObserveHour(0, loads, std::vector<pipeline::AggRow>{row});
  ASSERT_FALSE(cms.events().empty());
  EXPECT_EQ(cms.events().front().link, hot);
  EXPECT_GE(cms.events().front().sustained_minutes, 4);
  ASSERT_GE(cms.withdrawals_issued(), 1u);
  // The prefix is actually withdrawn in the scenario's state.
  EXPECT_FALSE(world_->advertisement().IsAdvertised(hot,
                                                    destination.prefix));
  world_->ResetAdvertisements();
}

TEST_F(CmsTest, ReannouncesAfterQuietHours) {
  CmsConfig config;
  config.reannounce_quiet_hours = 2;
  CongestionMitigationSystem cms(world_.get(), experiment_->tipsy.get(),
                                 config);
  const util::LinkId hot{0};
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  loads[hot.value()] =
      world_->wan().link(hot).CapacityBytesPerHour() * 1.2;
  pipeline::AggRow row;
  row.link = hot;
  row.src_asn = util::AsId{100};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, 1, 0), 24);
  row.src_metro = util::MetroId{0};
  const auto& destination = world_->wan().destination(0);
  row.dest_region = destination.region;
  row.dest_service = destination.service;
  row.dest_prefix = destination.prefix;
  row.bytes = static_cast<std::uint64_t>(loads[hot.value()]);
  cms.ObserveHour(0, loads, std::vector<pipeline::AggRow>{row});
  ASSERT_FALSE(world_->advertisement().IsAdvertised(hot,
                                                    destination.prefix));
  // Two quiet hours later the prefix comes back.
  const std::vector<double> calm(world_->wan().link_count(), 0.0);
  cms.ObserveHour(1, calm, {});
  EXPECT_FALSE(world_->advertisement().IsAdvertised(hot,
                                                    destination.prefix));
  cms.ObserveHour(2, calm, {});
  EXPECT_TRUE(world_->advertisement().IsAdvertised(hot,
                                                   destination.prefix));
  // The re-announce is recorded as an action.
  bool reannounce_seen = false;
  for (const auto& action : cms.actions()) {
    if (action.reannounce) reannounce_seen = true;
  }
  EXPECT_TRUE(reannounce_seen);
  world_->ResetAdvertisements();
}

TEST_F(CmsTest, LegacyModeNeedsNoTipsy) {
  CmsConfig config;
  config.use_tipsy = false;
  CongestionMitigationSystem cms(world_.get(), nullptr, config);
  const std::vector<double> idle(world_->wan().link_count(), 0.0);
  cms.ObserveHour(0, idle, {});
  EXPECT_TRUE(cms.events().empty());
}

TEST_F(CmsTest, WithdrawalCapRespected) {
  CmsConfig config;
  config.max_withdrawals_per_event = 2;
  config.use_tipsy = false;
  CongestionMitigationSystem cms(world_.get(), nullptr, config);
  const util::LinkId hot{0};
  std::vector<double> loads(world_->wan().link_count(), 0.0);
  loads[hot.value()] =
      world_->wan().link(hot).CapacityBytesPerHour() * 3.0;
  // Many small prefixes on the link; the cap limits withdrawals even
  // though shedding is incomplete.
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t d = 0; d < 8; ++d) {
    pipeline::AggRow row;
    row.link = hot;
    row.src_asn = util::AsId{100};
    row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, d, 0), 24);
    row.src_metro = util::MetroId{0};
    const auto& destination = world_->wan().destination(d);
    row.dest_region = destination.region;
    row.dest_service = destination.service;
    row.dest_prefix = destination.prefix;
    row.bytes = static_cast<std::uint64_t>(loads[hot.value()] / 20.0);
    rows.push_back(row);
  }
  cms.ObserveHour(0, loads, rows);
  EXPECT_LE(cms.withdrawals_issued(), 2u);
  world_->ResetAdvertisements();
}

}  // namespace
}  // namespace tipsy::cms
