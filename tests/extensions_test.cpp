// Tests for the paper's extension features: suspicious-ingress detection,
// daily retraining, and de-peering analysis.
#include <gtest/gtest.h>

#include "core/anomaly.h"
#include "core/online.h"
#include "risk/depeering.h"
#include "scenario/scenario.h"
#include "topo/generator.h"

namespace tipsy {
namespace {

core::FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                            std::uint32_t metro) {
  core::FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{0};
  flow.dest_service = wan::ServiceType::kWeb;
  return flow;
}

pipeline::AggRow MakeRow(const core::FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes, util::HourIndex hour = 0) {
  pipeline::AggRow row;
  row.hour = hour;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.bytes = bytes;
  return row;
}

// ---------------------------------------------------------------- anomaly

class AnomalyTest : public ::testing::Test {
 protected:
  AnomalyTest() : model_(core::FeatureSet::kAP) {
    flow_ = MakeFlow(1, 2, 3);
    model_.Add(MakeRow(flow_, 0, 9000));
    model_.Add(MakeRow(flow_, 1, 1000));
    model_.Finalize();
  }
  core::HistoricalModel model_;
  core::FlowFeatures flow_;
};

TEST_F(AnomalyTest, KnownLinksArePlausible) {
  core::SuspiciousIngressDetector detector(&model_);
  const auto verdict = detector.Check(flow_, util::LinkId{0});
  EXPECT_TRUE(verdict.known_flow);
  EXPECT_FALSE(verdict.suspicious);
  EXPECT_NEAR(verdict.plausibility, 0.9, 1e-12);
}

TEST_F(AnomalyTest, NeverSeenLinkIsSuspicious) {
  core::SuspiciousIngressDetector detector(&model_);
  const auto verdict = detector.Check(flow_, util::LinkId{42});
  EXPECT_TRUE(verdict.known_flow);
  EXPECT_TRUE(verdict.suspicious);
  EXPECT_DOUBLE_EQ(verdict.plausibility, 0.0);
}

TEST_F(AnomalyTest, UnknownFlowGivesNoVerdict) {
  core::SuspiciousIngressDetector detector(&model_);
  const auto verdict = detector.Check(MakeFlow(9, 9, 9), util::LinkId{0});
  EXPECT_FALSE(verdict.known_flow);
  EXPECT_FALSE(verdict.suspicious);
}

TEST_F(AnomalyTest, ThresholdControlsSensitivity) {
  core::AnomalyConfig strict;
  strict.min_probability = 0.5;  // even the 10% link becomes suspicious
  core::SuspiciousIngressDetector detector(&model_, strict);
  EXPECT_TRUE(detector.Check(flow_, util::LinkId{1}).suspicious);
  EXPECT_FALSE(detector.Check(flow_, util::LinkId{0}).suspicious);
}

TEST_F(AnomalyTest, ScanFlagsAndRanksByVolume) {
  core::SuspiciousIngressDetector detector(&model_);
  const std::vector<pipeline::AggRow> rows{
      MakeRow(flow_, 0, 500),    // plausible
      MakeRow(flow_, 7, 100),    // spoofed, small
      MakeRow(flow_, 8, 900),    // spoofed, big
      MakeRow(MakeFlow(9, 9, 9), 7, 1000),  // unknown flow: ignored
  };
  const auto flagged = detector.Scan(rows);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0].link, util::LinkId{8});
  EXPECT_EQ(flagged[1].link, util::LinkId{7});
}

TEST_F(AnomalyTest, MinBytesFiltersNoise) {
  core::AnomalyConfig config;
  config.min_bytes = 500.0;
  core::SuspiciousIngressDetector detector(&model_, config);
  const std::vector<pipeline::AggRow> rows{MakeRow(flow_, 7, 100)};
  EXPECT_TRUE(detector.Scan(rows).empty());
}

// ----------------------------------------------------------------- online

class OnlineTest : public ::testing::Test {
 protected:
  OnlineTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
  }
  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
};

TEST_F(OnlineTest, RetrainsOnDayBoundaries) {
  core::DailyRetrainer retrainer(wan_.get(), &topology_.metros, 3);
  EXPECT_EQ(retrainer.current(), nullptr);
  const auto flow = MakeFlow(1, 2, 3);
  retrainer.Ingest(0, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 100)});
  retrainer.Ingest(5, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 100)});
  EXPECT_EQ(retrainer.retrain_count(), 0u);  // day 0 not complete yet
  retrainer.Ingest(24, std::vector<pipeline::AggRow>{MakeRow(flow, 1, 1)});
  EXPECT_EQ(retrainer.retrain_count(), 1u);
  ASSERT_NE(retrainer.current(), nullptr);
  // The day-0 data is in the current model.
  const auto* hist = retrainer.current()->Find("Hist_AP");
  const auto predictions = hist->Predict(flow, 1, nullptr);
  ASSERT_FALSE(predictions.empty());
  EXPECT_EQ(predictions[0].link, util::LinkId{0});
}

TEST_F(OnlineTest, WindowDropsStaleDays) {
  core::DailyRetrainer retrainer(wan_.get(), &topology_.metros,
                                 /*window_days=*/2);
  const auto old_flow = MakeFlow(1, 2, 3);
  const auto new_flow = MakeFlow(1, 5, 3);
  retrainer.Ingest(0, std::vector<pipeline::AggRow>{
                          MakeRow(old_flow, 0, 100, 0)});
  for (int day = 1; day <= 3; ++day) {
    retrainer.Ingest(day * 24, std::vector<pipeline::AggRow>{MakeRow(
                                   new_flow, 1, 100, day * 24)});
  }
  retrainer.Retrain();
  EXPECT_LE(retrainer.buffered_days(), 2u);
  const auto* hist = retrainer.current()->Find("Hist_AP");
  // Day 0 aged out of the 2-day window.
  EXPECT_TRUE(hist->Predict(old_flow, 1, nullptr).empty());
  EXPECT_FALSE(hist->Predict(new_flow, 1, nullptr).empty());
}

TEST_F(OnlineTest, CurrentServiceStableUntilNextBoundary) {
  core::DailyRetrainer retrainer(wan_.get(), &topology_.metros, 3);
  const auto flow = MakeFlow(1, 2, 3);
  retrainer.Ingest(0, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 1)});
  retrainer.Ingest(24, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 1)});
  const auto* service = retrainer.current();
  retrainer.Ingest(25, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 1)});
  retrainer.Ingest(30, std::vector<pipeline::AggRow>{MakeRow(flow, 0, 1)});
  EXPECT_EQ(retrainer.current(), service);  // same day, no retrain
}

// -------------------------------------------------------------- depeering

class DepeeringTest : public ::testing::Test {
 protected:
  DepeeringTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
    tipsy_ = std::make_unique<core::TipsyService>(wan_.get(),
                                                  &topology_.metros);
  }

  // Two peers with distinct ASNs and at least one link each.
  std::pair<const wan::PeeringLink*, const wan::PeeringLink*> TwoPeers() {
    const wan::PeeringLink* first = &wan_->link(util::LinkId{0});
    for (const auto& link : wan_->links()) {
      if (link.peer_asn != first->peer_asn) return {first, &link};
    }
    return {first, nullptr};
  }

  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
  std::unique_ptr<core::TipsyService> tipsy_;
};

TEST_F(DepeeringTest, RedundantPeerRanksAsCandidate) {
  const auto [peer_a, peer_b] = TwoPeers();
  ASSERT_NE(peer_b, nullptr);
  // Flow X arrives on BOTH peers' links: withdrawing peer A's links still
  // leaves a prediction. Flow Y arrives only on peer B: peer B is
  // load-bearing for it.
  const auto flow_x = MakeFlow(1, 2, 3);
  // Distinct AS and metro so no tuple-level transfer learning can re-home
  // flow_y once peer B is gone.
  const auto flow_y = MakeFlow(2, 7, 9);
  std::vector<pipeline::AggRow> training{
      MakeRow(flow_x, peer_a->id.value(), 600),
      MakeRow(flow_x, peer_b->id.value(), 400),
      MakeRow(flow_y, peer_b->id.value(), 5000),
  };
  tipsy_->Train(training);
  tipsy_->FinalizeTraining();

  risk::DepeeringAnalyzer analyzer(wan_.get(), tipsy_.get());
  analyzer.Observe(training);
  const auto ranking = analyzer.Rank();
  ASSERT_EQ(ranking.size(), 2u);
  // Peer A first: all of its observed traffic can re-home to peer B.
  EXPECT_EQ(ranking[0].asn, peer_a->peer_asn);
  EXPECT_NEAR(ranking[0].predicted_retention, 1.0, 1e-9);
  EXPECT_NEAR(ranking[0].stranded_bytes, 0.0, 1e-9);
  // Peer B strands flow_y's bytes (its only known ingress).
  EXPECT_EQ(ranking[1].asn, peer_b->peer_asn);
  EXPECT_GT(ranking[1].stranded_bytes, 4000.0);
  EXPECT_EQ(analyzer.total_bytes(), 6000.0);
}

TEST_F(DepeeringTest, LinkCountsAndTypesFilled) {
  tipsy_->Train({});
  tipsy_->FinalizeTraining();
  risk::DepeeringAnalyzer analyzer(wan_.get(), tipsy_.get());
  const auto flow = MakeFlow(1, 2, 3);
  analyzer.Observe(std::vector<pipeline::AggRow>{MakeRow(flow, 0, 10)});
  const auto ranking = analyzer.Rank();
  ASSERT_EQ(ranking.size(), 1u);
  std::size_t expected_links = 0;
  for (const auto& link : wan_->links()) {
    if (link.peer_asn == wan_->link(util::LinkId{0}).peer_asn) {
      ++expected_links;
    }
  }
  EXPECT_EQ(ranking[0].link_count, expected_links);
}

}  // namespace
}  // namespace tipsy
