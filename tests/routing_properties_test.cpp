// Property tests over the BGP substrate using traced resolution: every
// path the simulator produces must be a valid Internet path.
#include <gtest/gtest.h>

#include "bgp/routing.h"
#include "scenario/scenario.h"
#include "topo/generator.h"

namespace tipsy::bgp {
namespace {

// Relationship of `from` towards `to` along an existing adjacency.
std::optional<topo::Relationship> RelOf(const topo::AsGraph& graph,
                                        NodeId from, NodeId to) {
  for (const auto& adj : graph.node(from).adjacencies) {
    if (adj.neighbor == to) return adj.rel;
  }
  return std::nullopt;
}

class TracedPathTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  TracedPathTest() {
    topo::GeneratorConfig cfg;
    cfg.seed = GetParam();
    cfg.metro_count = 30;
    cfg.tier1_count = 5;
    cfg.regionals_per_continent = 3;
    cfg.access_isp_count = 40;
    cfg.cdn_count = 3;
    cfg.enterprise_count = 60;
    cfg.exchange_count = 3;
    cfg.wan_metro_count = 14;
    topology_ = topo::GenerateTopology(cfg);
    engine_ = std::make_unique<RoutingEngine>(
        &topology_.graph, &topology_.metros, &topology_.peering_links,
        /*prefix_count=*/4);
  }

  topo::GeneratedTopology topology_;
  std::unique_ptr<RoutingEngine> engine_;
};

TEST_P(TracedPathTest, AllPathsAreValleyFree) {
  AdvertisementState state(topology_.peering_links.size(), 4);
  std::size_t paths_checked = 0;
  for (const auto& node : topology_.graph.nodes()) {
    if (node.type == topo::AsType::kCloudWan) continue;
    if (node.presence.empty()) continue;
    const auto traced = engine_->ResolveIngressTraced(
        node.id, node.presence.front(), PrefixId{0},
        /*flow_hash=*/node.id.value() * 77 + 5, /*day=*/0, state);
    for (const auto& share : traced) {
      ASSERT_FALSE(share.as_path.empty());
      EXPECT_EQ(share.as_path.front(), node.id);
      // Traffic direction labels: sending to provider = "up" (0),
      // peer = "flat" (1), customer = "down" (2). A valid path is
      // up* flat? down*, with the final WAN hop being flat or down.
      int stage = 0;
      for (std::size_t i = 0; i < share.as_path.size(); ++i) {
        const NodeId from = share.as_path[i];
        const NodeId to = i + 1 < share.as_path.size()
                              ? share.as_path[i + 1]
                              : topology_.wan;
        const auto rel = RelOf(topology_.graph, from, to);
        ASSERT_TRUE(rel.has_value())
            << "path hop without adjacency: " << from.value() << "->"
            << to.value();
        int label = 0;
        switch (*rel) {
          case topo::Relationship::kProvider: label = 0; break;
          case topo::Relationship::kPeer: label = 1; break;
          case topo::Relationship::kCustomer: label = 2; break;
        }
        EXPECT_GE(label, stage)
            << "valley in path at hop " << i << " (seed " << GetParam()
            << ")";
        if (label == 1) {
          // At most one peer edge: advance past "flat" immediately.
          EXPECT_LT(stage, 2) << "peer edge after going down";
          stage = 2;
        } else {
          stage = std::max(stage, label);
        }
      }
      ++paths_checked;
    }
  }
  EXPECT_GT(paths_checked, 50u);
}

TEST_P(TracedPathTest, PathsMatchAdvertisedLinksOnly) {
  AdvertisementState state(topology_.peering_links.size(), 4);
  // Withdraw prefix 1 everywhere on the first third of links.
  for (std::uint32_t l = 0; l < topology_.peering_links.size() / 3; ++l) {
    state.Withdraw(PrefixId{1}, LinkId{l});
  }
  for (const auto& node : topology_.graph.nodes()) {
    if (node.type != topo::AsType::kEnterprise) continue;
    const auto traced = engine_->ResolveIngressTraced(
        node.id, node.presence.front(), PrefixId{1},
        node.id.value(), 0, state);
    for (const auto& share : traced) {
      EXPECT_TRUE(state.IsAdvertised(share.link, PrefixId{1}));
      EXPECT_TRUE(engine_->SessionAccepts(share.link, PrefixId{1}));
    }
  }
}

TEST_P(TracedPathTest, TracedAndMergedAgree) {
  AdvertisementState state(topology_.peering_links.size(), 4);
  for (const auto& node : topology_.graph.nodes()) {
    if (node.type != topo::AsType::kEnterprise) continue;
    if (node.id.value() % 7 != 0) continue;  // sample
    const auto merged = engine_->ResolveIngress(
        node.id, node.presence.front(), PrefixId{0}, 42, 1, state);
    const auto traced = engine_->ResolveIngressTraced(
        node.id, node.presence.front(), PrefixId{0}, 42, 1, state);
    // Every merged link appears among the traced shares, and the traced
    // total per link is at least the merged (renormalized) share's basis.
    double traced_total = 0.0;
    for (const auto& t : traced) traced_total += t.fraction;
    if (merged.empty()) {
      EXPECT_TRUE(traced.empty());
      continue;
    }
    EXPECT_NEAR(traced_total, 1.0, 0.05);
    for (const auto& m : merged) {
      double link_total = 0.0;
      for (const auto& t : traced) {
        if (t.link == m.link) link_total += t.fraction;
      }
      EXPECT_GT(link_total, 0.0);
    }
  }
}

TEST_P(TracedPathTest, PathLengthMatchesRoutingDistance) {
  AdvertisementState state(topology_.peering_links.size(), 4);
  const auto& routing = engine_->Routing(PrefixId{0}, state);
  for (const auto& node : topology_.graph.nodes()) {
    if (node.type != topo::AsType::kEnterprise) continue;
    const auto& route = routing.per_node[node.id.value()];
    if (!route.reachable()) continue;
    const auto traced = engine_->ResolveIngressTraced(
        node.id, node.presence.front(), PrefixId{0}, 9, 0, state);
    for (const auto& share : traced) {
      // Path includes the source but not the WAN: hops == as_path_len.
      EXPECT_EQ(share.as_path.size(),
                static_cast<std::size_t>(route.as_path_len))
          << "node " << node.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TracedPathTest,
                         ::testing::Values(11, 29, 47));

TEST(CollectorLoss, ReducesRowsProportionally) {
  auto base_cfg = scenario::TinyScenarioConfig();
  base_cfg.traffic.flow_target = 600;
  auto lossy_cfg = base_cfg;
  lossy_cfg.collector_loss_rate = 0.4;
  scenario::Scenario base(base_cfg);
  scenario::Scenario lossy(lossy_cfg);
  std::size_t base_rows = 0, lossy_rows = 0;
  base.SimulateHours({10, 14}, [&](util::HourIndex,
                                   std::span<const pipeline::AggRow> r) {
    base_rows += r.size();
  });
  lossy.SimulateHours({10, 14}, [&](util::HourIndex,
                                    std::span<const pipeline::AggRow> r) {
    lossy_rows += r.size();
  });
  ASSERT_GT(base_rows, 100u);
  const double kept = static_cast<double>(lossy_rows) /
                      static_cast<double>(base_rows);
  EXPECT_NEAR(kept, 0.6, 0.08);
}

}  // namespace
}  // namespace tipsy::bgp
