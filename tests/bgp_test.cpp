#include <gtest/gtest.h>

#include <cmath>

#include "bgp/advertisement.h"
#include "bgp/routing.h"
#include "topo/as_graph.h"

namespace tipsy::bgp {
namespace {

using topo::AsGraph;
using topo::AsType;
using topo::InterconnectPoint;
using topo::NodeId;
using topo::Relationship;
using util::AsId;
using util::LinkId;
using util::MetroId;
using util::PrefixId;

// ------------------------------------------------- advertisement state

TEST(AdvertisementState, DefaultsToFullyAdvertised) {
  AdvertisementState state(3, 2);
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (std::uint32_t p = 0; p < 2; ++p) {
      EXPECT_TRUE(state.IsAdvertised(LinkId{l}, PrefixId{p}));
    }
  }
  EXPECT_EQ(state.down_link_count(), 0u);
  EXPECT_EQ(state.withdrawn_pair_count(), 0u);
}

TEST(AdvertisementState, WithdrawAndReannounce) {
  AdvertisementState state(2, 2);
  const auto v0 = state.PrefixVersion(PrefixId{0});
  state.Withdraw(PrefixId{0}, LinkId{1});
  EXPECT_FALSE(state.IsAdvertised(LinkId{1}, PrefixId{0}));
  EXPECT_TRUE(state.IsAdvertised(LinkId{0}, PrefixId{0}));
  EXPECT_TRUE(state.IsAdvertised(LinkId{1}, PrefixId{1}));
  EXPECT_NE(state.PrefixVersion(PrefixId{0}), v0);
  state.Announce(PrefixId{0}, LinkId{1});
  EXPECT_TRUE(state.IsAdvertised(LinkId{1}, PrefixId{0}));
}

TEST(AdvertisementState, IdempotentOperationsDoNotBumpVersion) {
  AdvertisementState state(2, 1);
  state.Withdraw(PrefixId{0}, LinkId{0});
  const auto v = state.PrefixVersion(PrefixId{0});
  state.Withdraw(PrefixId{0}, LinkId{0});  // already withdrawn
  EXPECT_EQ(state.PrefixVersion(PrefixId{0}), v);
  state.Announce(PrefixId{0}, LinkId{1});  // was never withdrawn
  EXPECT_EQ(state.PrefixVersion(PrefixId{0}), v);
}

TEST(AdvertisementState, LinkDownSuppressesAllPrefixes) {
  AdvertisementState state(2, 2);
  state.SetLinkUp(LinkId{0}, false);
  EXPECT_FALSE(state.IsAdvertised(LinkId{0}, PrefixId{0}));
  EXPECT_FALSE(state.IsAdvertised(LinkId{0}, PrefixId{1}));
  EXPECT_FALSE(state.IsLinkUp(LinkId{0}));
  EXPECT_EQ(state.down_link_count(), 1u);
  state.SetLinkUp(LinkId{0}, true);
  EXPECT_TRUE(state.IsAdvertised(LinkId{0}, PrefixId{0}));
}

TEST(AdvertisementState, CopiesHaveDistinctVersions) {
  // Regression: two states with identical edit counts must never share a
  // cache key, or the routing engine would serve stale routes.
  AdvertisementState a(2, 1);
  AdvertisementState b(a);
  a.Withdraw(PrefixId{0}, LinkId{0});
  b.Withdraw(PrefixId{0}, LinkId{1});
  EXPECT_NE(a.PrefixVersion(PrefixId{0}), b.PrefixVersion(PrefixId{0}));
}

// --------------------------------------------------------- fixture

// Hand-built world:
//
//   metros: M0 (0E), M1 (20E), M2 (40E), M3 (60E), all on the equator.
//
//   WAN presence {M0, M1, M2}
//   T1  tier1, presence {M0, M1, M3}; WAN buys transit from it.
//       links: L0 @ M0, L1 @ M1
//   P1  peer of the WAN, presence {M2, M3}; link L2 @ M2.
//   C1  enterprise, presence {M3}; customer of T1 and of P1.
class RoutingFixture : public ::testing::Test {
 protected:
  RoutingFixture() {
    m0_ = metros_.Add("M0", {0.0, 0.0}, geo::Continent::kEurope, 1.0);
    m1_ = metros_.Add("M1", {0.0, 20.0}, geo::Continent::kEurope, 1.0);
    m2_ = metros_.Add("M2", {0.0, 40.0}, geo::Continent::kEurope, 1.0);
    m3_ = metros_.Add("M3", {0.0, 60.0}, geo::Continent::kEurope, 1.0);

    wan_ = graph_.AddNode(AsId{8075}, AsType::kCloudWan, "wan",
                          {m0_, m1_, m2_});
    t1_ = graph_.AddNode(AsId{100}, AsType::kTier1, "t1", {m0_, m1_, m3_});
    p1_ = graph_.AddNode(AsId{200}, AsType::kRegionalTransit, "p1",
                         {m2_, m3_});
    c1_ = graph_.AddNode(AsId{300}, AsType::kEnterprise, "c1", {m3_});

    links_ = {
        topo::PeeringLinkSpec{LinkId{0}, t1_, AsId{100}, AsType::kTier1,
                              m0_, 100.0, "M0-a"},
        topo::PeeringLinkSpec{LinkId{1}, t1_, AsId{100}, AsType::kTier1,
                              m1_, 100.0, "M1-a"},
        topo::PeeringLinkSpec{LinkId{2}, p1_, AsId{200},
                              AsType::kRegionalTransit, m2_, 100.0,
                              "M2-a"},
    };
    // T1 <-> WAN: WAN is T1's customer (T1 sells the WAN transit).
    graph_.AddAdjacency(t1_, wan_, Relationship::kCustomer,
                        {InterconnectPoint{m0_, {LinkId{0}}},
                         InterconnectPoint{m1_, {LinkId{1}}}});
    // P1 <-> WAN: settlement-free peering.
    graph_.AddAdjacency(p1_, wan_, Relationship::kPeer,
                        {InterconnectPoint{m2_, {LinkId{2}}}});
    // C1 buys transit from both T1 and P1 (interconnect at M3).
    graph_.AddAdjacency(c1_, t1_, Relationship::kProvider,
                        {InterconnectPoint{m3_, {}}});
    graph_.AddAdjacency(c1_, p1_, Relationship::kProvider,
                        {InterconnectPoint{m3_, {}}});
    EXPECT_EQ(graph_.Validate(), "");
  }

  // Noise-free resolution so outcomes are exactly predictable.
  ResolveConfig CleanConfig() const {
    ResolveConfig cfg;
    cfg.flow_jitter = 0.0;
    cfg.static_bias_km = 0.0;
    cfg.slow_bias_km = 0.0;
    cfg.daily_bias_km = 0.0;
    cfg.session_filter_rate = 0.0;
    cfg.tau_km = 1.0;  // near-hard hot-potato choice
    return cfg;
  }

  RoutingEngine MakeEngine() {
    return RoutingEngine(&graph_, &metros_, &links_, /*prefix_count=*/2,
                         CleanConfig());
  }

  geo::MetroCatalogue metros_;
  AsGraph graph_;
  NodeId wan_, t1_, p1_, c1_;
  MetroId m0_, m1_, m2_, m3_;
  std::vector<topo::PeeringLinkSpec> links_;
};

TEST_F(RoutingFixture, ClassesAndDistances) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  const auto& routing = engine.Routing(PrefixId{0}, state);

  // T1 sees the WAN as its customer: customer route, 1 hop.
  EXPECT_EQ(routing.per_node[t1_.value()].cls, RouteClass::kCustomer);
  EXPECT_EQ(routing.per_node[t1_.value()].as_path_len, 1);
  // P1 peers: peer route, 1 hop.
  EXPECT_EQ(routing.per_node[p1_.value()].cls, RouteClass::kPeer);
  EXPECT_EQ(routing.per_node[p1_.value()].as_path_len, 1);
  // C1 reaches via a provider, 2 hops. Note: P1's best route is a peer
  // route, which it still exports to its customer C1, so C1 has two
  // provider candidates.
  EXPECT_EQ(routing.per_node[c1_.value()].cls, RouteClass::kProvider);
  EXPECT_EQ(routing.per_node[c1_.value()].as_path_len, 2);
  EXPECT_EQ(routing.per_node[c1_.value()].candidates.size(), 2u);
}

TEST_F(RoutingFixture, AsDistance) {
  auto engine = MakeEngine();
  EXPECT_EQ(engine.AsDistance(t1_).value(), 1);
  EXPECT_EQ(engine.AsDistance(p1_).value(), 1);
  EXPECT_EQ(engine.AsDistance(c1_).value(), 2);
  EXPECT_EQ(engine.AsDistance(wan_).value(), 0);
}

TEST_F(RoutingFixture, SharesSumToOne) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  const auto shares =
      engine.ResolveIngress(c1_, m3_, PrefixId{0}, 123, 0, state);
  ASSERT_FALSE(shares.empty());
  double total = 0.0;
  for (const auto& share : shares) total += share.fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(RoutingFixture, HotPotatoPicksNearestExit) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  // A flow sourced inside T1 at M0 exits at M0's link; at M1, at M1's.
  const auto at_m0 =
      engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, state);
  ASSERT_FALSE(at_m0.empty());
  EXPECT_EQ(at_m0.front().link, LinkId{0});
  EXPECT_GT(at_m0.front().fraction, 0.95);
  const auto at_m1 =
      engine.ResolveIngress(t1_, m1_, PrefixId{0}, 1, 0, state);
  EXPECT_EQ(at_m1.front().link, LinkId{1});
}

TEST_F(RoutingFixture, WithdrawalMovesTrafficToSiblingLink) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  state.Withdraw(PrefixId{0}, LinkId{0});
  const auto shares =
      engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, state);
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(shares.front().link, LinkId{1});
  // The other prefix is unaffected.
  const auto other =
      engine.ResolveIngress(t1_, m0_, PrefixId{1}, 1, 0, state);
  EXPECT_EQ(other.front().link, LinkId{0});
}

TEST_F(RoutingFixture, FullWithdrawalRemovesNeighborRoute) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  state.Withdraw(PrefixId{0}, LinkId{0});
  state.Withdraw(PrefixId{0}, LinkId{1});
  const auto& routing = engine.Routing(PrefixId{0}, state);
  // T1 lost its direct advertisement. Its only remaining route would be
  // via its customer C1 -> P1, but C1 has no customer route to export, so
  // T1 is unreachable... unless it learns from a peer/customer. In this
  // topology T1 ends up with no route.
  EXPECT_FALSE(routing.per_node[t1_.value()].reachable());
  // C1 still reaches via P1.
  EXPECT_TRUE(routing.per_node[c1_.value()].reachable());
  const auto shares =
      engine.ResolveIngress(c1_, m3_, PrefixId{0}, 1, 0, state);
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(shares.front().link, LinkId{2});
}

TEST_F(RoutingFixture, OutageBehavesLikeFullWithdrawal) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  state.SetLinkUp(LinkId{0}, false);
  state.SetLinkUp(LinkId{1}, false);
  const auto& routing = engine.Routing(PrefixId{1}, state);
  EXPECT_FALSE(routing.per_node[t1_.value()].reachable());
  EXPECT_TRUE(routing.per_node[c1_.value()].reachable());
}

TEST_F(RoutingFixture, CacheInvalidatesAcrossStates) {
  auto engine = MakeEngine();
  AdvertisementState full(3, 2);
  AdvertisementState withdrawn(3, 2);
  withdrawn.Withdraw(PrefixId{0}, LinkId{0});
  // Interleave queries against both states; each must see its own world.
  EXPECT_EQ(engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, full)
                .front()
                .link,
            LinkId{0});
  EXPECT_EQ(engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, withdrawn)
                .front()
                .link,
            LinkId{1});
  EXPECT_EQ(engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, full)
                .front()
                .link,
            LinkId{0});
}

TEST_F(RoutingFixture, DeterministicResolution) {
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  const auto a = engine.ResolveIngress(c1_, m3_, PrefixId{0}, 99, 3, state);
  const auto b = engine.ResolveIngress(c1_, m3_, PrefixId{0}, 99, 3, state);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link, b[i].link);
    EXPECT_DOUBLE_EQ(a[i].fraction, b[i].fraction);
  }
}

TEST_F(RoutingFixture, SharesSortedDescending) {
  ResolveConfig cfg = CleanConfig();
  cfg.tau_km = 5000.0;  // soft choice: multiple exits share traffic
  RoutingEngine engine(&graph_, &metros_, &links_, 2, cfg);
  AdvertisementState state(3, 2);
  const auto shares =
      engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, state);
  ASSERT_GE(shares.size(), 2u);
  for (std::size_t i = 1; i < shares.size(); ++i) {
    EXPECT_GE(shares[i - 1].fraction, shares[i].fraction);
  }
}

TEST_F(RoutingFixture, SessionFilterIsDeterministicAndRateBounded) {
  ResolveConfig cfg = CleanConfig();
  cfg.session_filter_rate = 0.3;
  RoutingEngine engine(&graph_, &metros_, &links_, 2, cfg);
  RoutingEngine engine2(&graph_, &metros_, &links_, 2, cfg);
  int filtered = 0;
  int total = 0;
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (std::uint32_t p = 0; p < 2; ++p) {
      ++total;
      EXPECT_EQ(engine.SessionAccepts(LinkId{l}, PrefixId{p}),
                engine2.SessionAccepts(LinkId{l}, PrefixId{p}));
      if (!engine.SessionAccepts(LinkId{l}, PrefixId{p})) ++filtered;
    }
  }
  EXPECT_LT(filtered, total);  // not everything filtered
}

TEST_F(RoutingFixture, UnreachableSourceGivesEmptyShares) {
  // An isolated node with no adjacencies cannot deliver traffic.
  const auto island = graph_.AddNode(AsId{400}, AsType::kEnterprise,
                                     "island", {m3_});
  auto engine = MakeEngine();
  AdvertisementState state(3, 2);
  EXPECT_TRUE(
      engine.ResolveIngress(island, m3_, PrefixId{0}, 1, 0, state).empty());
}

TEST_F(RoutingFixture, PolicyDriftChangesChoicesAcrossDays) {
  ResolveConfig cfg = CleanConfig();
  cfg.daily_bias_km = 4000.0;  // exaggerate daily drift
  RoutingEngine engine(&graph_, &metros_, &links_, 2, cfg);
  AdvertisementState state(3, 2);
  // Over many days the chosen link must flip at least once.
  bool flipped = false;
  const auto first =
      engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, 0, state);
  for (int day = 1; day < 30 && !flipped; ++day) {
    const auto shares =
        engine.ResolveIngress(t1_, m0_, PrefixId{0}, 1, day, state);
    if (!shares.empty() && shares.front().link != first.front().link) {
      flipped = true;
    }
  }
  EXPECT_TRUE(flipped);
}

}  // namespace
}  // namespace tipsy::bgp
