// Tests for the parallel execution substrate (util/parallel.h): pool
// primitives, serial fallback, exception propagation, nesting, and the
// deterministic fold order that the sharded-training merge relies on.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace tipsy::util {
namespace {

TEST(ParallelConfig, ResolveDefaultsToHardwareConcurrency) {
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ParallelConfig{}.Resolve(), hw == 0 ? 1 : hw);
  EXPECT_EQ((ParallelConfig{.threads = 3}).Resolve(), 3u);
  EXPECT_EQ((ParallelConfig{.threads = 1}).Resolve(), 1u);
}

TEST(ParallelConfig, FromEnvParsesTipsyThreads) {
  ::setenv("TIPSY_THREADS", "5", 1);
  EXPECT_EQ(ParallelConfig::FromEnv().Resolve(), 5u);
  ::setenv("TIPSY_THREADS", "not-a-number", 1);
  EXPECT_EQ(ParallelConfig::FromEnv().threads, 0u);  // falls back to auto
  ::unsetenv("TIPSY_THREADS");
  EXPECT_EQ(ParallelConfig::FromEnv().threads, 0u);
}

TEST(ThreadPool, SerialPoolNeverStartsWorkers) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  pool.Run(4, [&](std::size_t chunk) {
    seen[chunk] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
  EXPECT_FALSE(pool.started());  // serial fallback: no thread ever spawned
}

TEST(ThreadPool, RunCoversEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 64;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.Run(kChunks, [&](std::size_t chunk) { hits[chunk].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(pool.started());
}

TEST(ThreadPool, FirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.Run(16,
               [&](std::size_t chunk) {
                 if (chunk % 2 == 1) {
                   throw std::runtime_error("chunk failed");
                 }
               }),
      std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> total{0};
  pool.Run(8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

TEST(ParallelFor, CoversAllIndicesInContiguousChunks) {
  ScopedPool sp(4);
  constexpr std::size_t kN = 1003;  // deliberately not a multiple of 4
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ScopedPool sp(4);
  bool called = false;
  ParallelFor(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ScopedPool sp(4);
  std::atomic<int> inner_total{0};
  ParallelFor(8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      // A nested parallel call from a worker must not deadlock; it runs
      // inline on the worker.
      ParallelFor(3, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 3);
}

TEST(ParallelMap, ResultsIndexedByChunk) {
  ScopedPool sp(4);
  const auto out =
      ParallelMap(std::size_t{32}, [](std::size_t chunk) { return chunk * chunk; });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapReduce, FoldsInChunkOrder) {
  ScopedPool sp(4);
  // String concatenation is order-sensitive: the fold must visit chunks
  // 0, 1, 2, ... regardless of which thread finished first.
  const auto joined = ParallelMapReduce(
      std::size_t{10},
      [](std::size_t chunk) { return std::to_string(chunk); },
      [](std::string& acc, std::string&& part) { acc += part; });
  EXPECT_EQ(joined, "0123456789");
}

TEST(ParallelMapReduce, ZeroChunksYieldsDefault) {
  ScopedPool sp(4);
  const auto sum = ParallelMapReduce(
      std::size_t{0}, [](std::size_t) { return 7; },
      [](int& acc, int&& part) { acc += part; });
  EXPECT_EQ(sum, 0);
}

TEST(ScopedPool, OverridesCurrentPoolOnThisThreadOnly) {
  {
    ScopedPool outer(2);
    EXPECT_EQ(&CurrentPool(), &outer.pool());
    {
      ScopedPool inner(3);
      EXPECT_EQ(&CurrentPool(), &inner.pool());
      EXPECT_EQ(CurrentPool().thread_count(), 3u);
    }
    EXPECT_EQ(&CurrentPool(), &outer.pool());
    // Another thread sees the default pool, not this thread's override.
    ThreadPool* seen = nullptr;
    std::thread probe([&] { seen = &CurrentPool(); });
    probe.join();
    EXPECT_EQ(seen, &ThreadPool::Default());
  }
  EXPECT_EQ(&CurrentPool(), &ThreadPool::Default());
}

TEST(ParallelFor, DistributesWorkAcrossThreadsWhenParallel) {
  ScopedPool sp(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  // Many chunks with a small sleep so workers get a chance to claim some;
  // the caller participates, so at least one id is always present.
  ParallelFor(64, [&](std::size_t, std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), 4u);
}

}  // namespace
}  // namespace tipsy::util
