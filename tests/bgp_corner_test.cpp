// Corner cases of the Gao-Rexford propagation on a deeper hand-built
// topology: preference inversions, peer-route export restrictions, and
// multi-tier provider chains.
#include <gtest/gtest.h>

#include "bgp/routing.h"
#include "topo/as_graph.h"

namespace tipsy::bgp {
namespace {

using topo::AsGraph;
using topo::AsType;
using topo::InterconnectPoint;
using topo::NodeId;
using topo::Relationship;
using util::AsId;
using util::LinkId;
using util::MetroId;
using util::PrefixId;

// Chain world:
//
//   WAN at M0.
//   T1 sells the WAN transit (customer route), link L0 @ M0.
//   P1 peers with the WAN, link L1 @ M0.
//   MID is T1's customer and P1's customer.
//   LEAF is MID's customer.
//   LONE peers with MID (and has no other connectivity).
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() {
    m0_ = metros_.Add("M0", {0.0, 0.0}, geo::Continent::kEurope, 1.0);
    wan_ = graph_.AddNode(AsId{8075}, AsType::kCloudWan, "wan", {m0_});
    t1_ = graph_.AddNode(AsId{1}, AsType::kTier1, "t1", {m0_});
    p1_ = graph_.AddNode(AsId{2}, AsType::kRegionalTransit, "p1", {m0_});
    mid_ = graph_.AddNode(AsId{3}, AsType::kAccessIsp, "mid", {m0_});
    leaf_ = graph_.AddNode(AsId{4}, AsType::kEnterprise, "leaf", {m0_});
    lone_ = graph_.AddNode(AsId{5}, AsType::kAccessIsp, "lone", {m0_});

    links_ = {
        topo::PeeringLinkSpec{LinkId{0}, t1_, AsId{1}, AsType::kTier1, m0_,
                              100.0, "M0-a"},
        topo::PeeringLinkSpec{LinkId{1}, p1_, AsId{2},
                              AsType::kRegionalTransit, m0_, 100.0,
                              "M0-b"},
    };
    graph_.AddAdjacency(t1_, wan_, Relationship::kCustomer,
                        {InterconnectPoint{m0_, {LinkId{0}}}});
    graph_.AddAdjacency(p1_, wan_, Relationship::kPeer,
                        {InterconnectPoint{m0_, {LinkId{1}}}});
    graph_.AddAdjacency(mid_, t1_, Relationship::kProvider,
                        {InterconnectPoint{m0_, {}}});
    graph_.AddAdjacency(mid_, p1_, Relationship::kProvider,
                        {InterconnectPoint{m0_, {}}});
    graph_.AddAdjacency(leaf_, mid_, Relationship::kProvider,
                        {InterconnectPoint{m0_, {}}});
    graph_.AddAdjacency(lone_, mid_, Relationship::kPeer,
                        {InterconnectPoint{m0_, {}}});
    EXPECT_EQ(graph_.Validate(), "");
  }

  ResolveConfig CleanConfig() const {
    ResolveConfig cfg;
    cfg.flow_jitter = 0.0;
    cfg.static_bias_km = 0.0;
    cfg.slow_bias_km = 0.0;
    cfg.daily_bias_km = 0.0;
    cfg.session_filter_rate = 0.0;
    return cfg;
  }

  geo::MetroCatalogue metros_;
  AsGraph graph_;
  NodeId wan_, t1_, p1_, mid_, leaf_, lone_;
  MetroId m0_;
  std::vector<topo::PeeringLinkSpec> links_;
};

TEST_F(ChainFixture, ProviderChainDistances) {
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  const auto& routing = engine.Routing(PrefixId{0}, state);
  // MID: two provider routes at distance 2 (via T1 and via P1).
  EXPECT_EQ(routing.per_node[mid_.value()].cls, RouteClass::kProvider);
  EXPECT_EQ(routing.per_node[mid_.value()].as_path_len, 2);
  EXPECT_EQ(routing.per_node[mid_.value()].candidates.size(), 2u);
  // LEAF: one more provider hop.
  EXPECT_EQ(routing.per_node[leaf_.value()].cls, RouteClass::kProvider);
  EXPECT_EQ(routing.per_node[leaf_.value()].as_path_len, 3);
}

TEST_F(ChainFixture, PeerDoesNotExportProviderRoutes) {
  // LONE peers with MID, whose best route is a provider route. Gao-Rexford
  // forbids exporting provider routes to peers, so LONE is unreachable.
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  const auto& routing = engine.Routing(PrefixId{0}, state);
  EXPECT_FALSE(routing.per_node[lone_.value()].reachable());
  EXPECT_TRUE(
      engine.ResolveIngress(lone_, m0_, PrefixId{0}, 1, 0, state).empty());
}

TEST_F(ChainFixture, PeerRoutePreferredOverShorterProviderRoute) {
  // Give LEAF a direct peer adjacency to T1. T1's best route is a
  // customer route (distance 1), which it exports to peers, giving LEAF a
  // peer route at distance 2 - preferred over the provider route at
  // distance 3, AND over a provider route even if that one were shorter.
  graph_.AddAdjacency(leaf_, t1_, Relationship::kPeer,
                      {InterconnectPoint{m0_, {}}});
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  const auto& routing = engine.Routing(PrefixId{0}, state);
  EXPECT_EQ(routing.per_node[leaf_.value()].cls, RouteClass::kPeer);
  EXPECT_EQ(routing.per_node[leaf_.value()].as_path_len, 2);
  // And LONE now reaches nothing still (unchanged).
  EXPECT_FALSE(routing.per_node[lone_.value()].reachable());
}

TEST_F(ChainFixture, WithdrawalCascadesThroughChain) {
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  // Withdraw at T1's link: everything must converge on P1's link L1.
  state.Withdraw(PrefixId{0}, LinkId{0});
  for (NodeId node : {mid_, leaf_}) {
    const auto shares =
        engine.ResolveIngress(node, m0_, PrefixId{0}, 1, 0, state);
    ASSERT_FALSE(shares.empty());
    EXPECT_EQ(shares.front().link, LinkId{1});
  }
  // Withdraw at both: the world goes dark.
  state.Withdraw(PrefixId{0}, LinkId{1});
  for (NodeId node : {t1_, p1_, mid_, leaf_}) {
    EXPECT_TRUE(
        engine.ResolveIngress(node, m0_, PrefixId{0}, 1, 0, state).empty());
  }
  // Re-announce restores everything.
  state.Announce(PrefixId{0}, LinkId{0});
  EXPECT_FALSE(
      engine.ResolveIngress(leaf_, m0_, PrefixId{0}, 1, 0, state).empty());
}

TEST_F(ChainFixture, TracedPathFollowsChain) {
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  const auto traced =
      engine.ResolveIngressTraced(leaf_, m0_, PrefixId{0}, 1, 0, state);
  ASSERT_FALSE(traced.empty());
  for (const auto& share : traced) {
    ASSERT_EQ(share.as_path.size(), 3u);
    EXPECT_EQ(share.as_path[0], leaf_);
    EXPECT_EQ(share.as_path[1], mid_);
    EXPECT_TRUE(share.as_path[2] == t1_ || share.as_path[2] == p1_);
  }
}

TEST_F(ChainFixture, CustomerRoutePreferredAtTier1) {
  // Add a peer adjacency T1 <-> P1: T1 must keep its customer route (via
  // the WAN) rather than anything learned from its peer.
  graph_.AddAdjacency(t1_, p1_, Relationship::kPeer,
                      {InterconnectPoint{m0_, {}}});
  RoutingEngine engine(&graph_, &metros_, &links_, 1, CleanConfig());
  AdvertisementState state(2, 1);
  const auto& routing = engine.Routing(PrefixId{0}, state);
  EXPECT_EQ(routing.per_node[t1_.value()].cls, RouteClass::kCustomer);
  EXPECT_EQ(routing.per_node[t1_.value()].as_path_len, 1);
  // Even after losing its own link, T1 prefers the peer route via P1 to
  // nothing (P1's best is a peer route, which P1 does NOT export to its
  // peer T1 - so T1 actually goes dark).
  state.Withdraw(PrefixId{0}, LinkId{0});
  const auto& after = engine.Routing(PrefixId{0}, state);
  EXPECT_FALSE(after.per_node[t1_.value()].reachable());
}

}  // namespace
}  // namespace tipsy::bgp
