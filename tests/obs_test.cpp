// Observability layer: metrics primitives, registry/exporters, trace
// spans, concurrent scrape (the TSan target), and — the contract that
// matters for operators — parity between the legacy ad-hoc counters and
// their registry-served replacements through a degraded-mode scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cms/cms.h"
#include "core/online.h"
#include "ha/replica.h"
#include "ha/supervisor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/fault_injection.h"
#include "scenario/scenario.h"
#include "topo/generator.h"
#include "util/parallel.h"

namespace tipsy {
namespace {

// ------------------------------------------------------------ primitives

TEST(ObsCounter, IncrementsFoldAndReset) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset(7);
  EXPECT_EQ(counter.value(), 7u);
  counter.Increment();
  EXPECT_EQ(counter.value(), 8u);
}

TEST(ObsCounter, CopyFoldsTheSource) {
  obs::Counter a;
  a.Increment(10);
  obs::Counter b(a);
  EXPECT_EQ(b.value(), 10u);
  b.Increment();
  EXPECT_EQ(b.value(), 11u);
  EXPECT_EQ(a.value(), 10u);  // independent after the copy
  a = b;
  EXPECT_EQ(a.value(), 11u);
}

TEST(ObsGauge, SetAndAdd) {
  obs::Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.5);
}

TEST(ObsHistogram, PlacesObservationsInBuckets) {
  obs::Histogram hist({0.1, 1.0, 10.0});
  hist.Observe(0.05);   // <= 0.1
  hist.Observe(0.1);    // boundary belongs to its bucket (le semantics)
  hist.Observe(0.5);    // <= 1.0
  hist.Observe(100.0);  // overflow (+Inf)
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 100.65);
}

TEST(ObsHistogram, UnsortedBoundsAreSortedAndDeduped) {
  obs::Histogram hist({5.0, 1.0, 5.0});
  ASSERT_EQ(hist.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(hist.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[1], 5.0);
}

TEST(ObsHistogram, CopyPreservesFoldedState) {
  obs::Histogram a({1.0});
  a.Observe(0.5);
  a.Observe(2.0);
  obs::Histogram b(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.sum(), 2.5);
  b.Observe(0.25);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_EQ(a.count(), 2u);
}

TEST(ObsScopedTimer, ObservesElapsedSeconds) {
  obs::Histogram hist;
  { obs::ScopedTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
  { obs::ScopedTimer disabled(nullptr); }  // null histogram: no-op
  EXPECT_EQ(hist.count(), 1u);
}

// -------------------------------------------------------------- registry

TEST(ObsRegistry, SnapshotIsSortedAndTyped) {
  obs::Registry registry;
  obs::Counter counter;
  counter.Increment(3);
  obs::Histogram hist({1.0});
  hist.Observe(0.5);
  auto r1 = registry.RegisterCounter("b_total", "a counter", &counter);
  auto r2 = registry.RegisterGauge("a_gauge", "a gauge", [] { return 1.5; });
  auto r3 = registry.RegisterHistogram("c_hist", "a histogram", &hist);
  EXPECT_EQ(registry.size(), 3u);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a_gauge");
  EXPECT_EQ(snapshot[0].type, obs::MetricType::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 1.5);
  EXPECT_EQ(snapshot[1].name, "b_total");
  EXPECT_EQ(snapshot[1].type, obs::MetricType::kCounter);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 3.0);
  EXPECT_EQ(snapshot[2].name, "c_hist");
  EXPECT_EQ(snapshot[2].type, obs::MetricType::kHistogram);
  EXPECT_EQ(snapshot[2].count, 1u);
  ASSERT_EQ(snapshot[2].buckets.size(), 2u);
  EXPECT_EQ(snapshot[2].buckets[0], 1u);
}

TEST(ObsRegistry, RegistrationHandleUnregistersOnDestruction) {
  obs::Registry registry;
  obs::Counter counter;
  {
    auto handle = registry.RegisterCounter("x_total", "", &counter);
    EXPECT_EQ(registry.size(), 1u);
    // Moving the handle must not unregister.
    obs::Registration moved = std::move(handle);
    EXPECT_EQ(registry.size(), 1u);
  }
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ObsRegistry, PrometheusRendering) {
  obs::Registry registry;
  obs::Counter counter;
  counter.Increment(5);
  obs::Histogram hist({0.5, 1.0});
  hist.Observe(0.25);
  hist.Observe(0.75);
  hist.Observe(2.0);
  auto r1 = registry.RegisterCounter("tipsy_q_total", "queries", &counter);
  auto r2 =
      registry.RegisterHistogram("tipsy_lat_seconds", "latency", &hist);

  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# HELP tipsy_q_total queries\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tipsy_q_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("tipsy_q_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tipsy_lat_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative.
  EXPECT_NE(text.find("tipsy_lat_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tipsy_lat_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("tipsy_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("tipsy_lat_seconds_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("tipsy_lat_seconds_count 3\n"), std::string::npos);
}

TEST(ObsRegistry, JsonRenderingFollowsBenchConventions) {
  obs::Registry registry;
  obs::Counter counter;
  counter.Increment();
  auto r = registry.RegisterCounter("tipsy_x_total", "x", &counter);
  const std::string json = registry.RenderJsonText();
  // tools/check_bench_json.py accepts unknown BENCH artifacts that carry
  // a "bench" key and at least one non-empty list — the scrape follows
  // the same convention.
  EXPECT_NE(json.find("\"bench\": \"obs_scrape\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"tipsy_x_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1"), std::string::npos);
}

// ----------------------------------------------------------------- spans

TEST(ObsTrace, SpansRecordDurationAndDepth) {
  obs::Tracer tracer(8);
  obs::Histogram hist;
  {
    obs::Span outer(&tracer, "outer", &hist);
    obs::Span inner(&tracer, "inner", nullptr);
  }
  const auto events = tracer.Recent();
  ASSERT_EQ(events.size(), 2u);
  // Spans record on close: inner first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_LE(events[0].duration_ns, events[1].duration_ns);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_NE(tracer.RenderJsonText().find("\"bench\": \"obs_trace\""),
            std::string::npos);
}

TEST(ObsTrace, RingKeepsTheNewestSpans) {
  obs::Tracer tracer(3);
  for (int i = 0; i < 5; ++i) {
    obs::Span span(&tracer, "s" + std::to_string(i), nullptr);
  }
  EXPECT_EQ(tracer.total_recorded(), 5u);
  const auto events = tracer.Recent();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "s2");  // oldest surviving
  EXPECT_EQ(events[2].name, "s4");
}

// ------------------------------------------------- concurrent scrape (TSan)

TEST(ObsConcurrency, WritersAndScrapersRace) {
  obs::Registry registry;
  obs::Counter counter;
  obs::Histogram hist({1e-6, 1e-3, 1.0});
  auto r1 = registry.RegisterCounter("tipsy_race_total", "", &counter);
  auto r2 = registry.RegisterHistogram("tipsy_race_seconds", "", &hist);

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&counter, &hist] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.Increment();
        hist.Observe(1e-4);
      }
    });
  }
  // A scraper folds the stripes while the writers hammer them.
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      const auto text = registry.RenderPrometheusText();
      EXPECT_NE(text.find("tipsy_race_total"), std::string::npos);
    }
  });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
}

// ------------------------------------------------ prediction-path wiring

core::FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                            std::uint32_t metro) {
  core::FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{0};
  flow.dest_service = wan::ServiceType::kWeb;
  return flow;
}

pipeline::AggRow MakeRow(const core::FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.dest_prefix = util::PrefixId{1};
  row.bytes = bytes;
  return row;
}

struct ServiceFixture {
  ServiceFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1),
        service(&wan, &topology.metros) {
    std::vector<pipeline::AggRow> rows;
    for (std::uint32_t f = 0; f < 12; ++f) {
      rows.push_back(MakeRow(MakeFlow(f % 3, f, f % 2),
                             f % static_cast<std::uint32_t>(wan.link_count()),
                             1000 + f));
    }
    service.Train(rows);
    service.FinalizeTraining();
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
  core::TipsyService service;
};

TEST(ObsServiceWiring, PredictShiftFeedsCountersAndRegistry) {
  ServiceFixture fixture;
  obs::Registry registry;
  const auto handles =
      fixture.service.RegisterMetrics(registry, "tipsy_service");

  std::vector<core::TipsyService::ShiftQueryFlow> flows;
  flows.push_back({MakeFlow(0, 0, 0), 100.0});
  flows.push_back({MakeFlow(1, 1, 1), 200.0});
  const core::ExclusionMask excluded(fixture.wan.link_count(), false);
  for (int i = 0; i < 20; ++i) {
    (void)fixture.service.PredictShift(flows, excluded);
  }

#ifdef TIPSY_NO_OBS
  // Compiled-out mode: the instrumentation must cost nothing and count
  // nothing — the metrics stay frozen at zero.
  EXPECT_EQ(fixture.service.predict_queries(), 0u);
  EXPECT_EQ(fixture.service.predict_flows(), 0u);
  EXPECT_EQ(fixture.service.predict_latency().count(), 0u);
#else
  EXPECT_EQ(fixture.service.predict_queries(), 20u);
  EXPECT_EQ(fixture.service.predict_flows(), 40u);
  // 1-in-64 sampling: of 20 queries only call 0 samples the clock.
  EXPECT_EQ(fixture.service.predict_latency().count(), 1u);
#endif

  // Accessors and the registry fold the same cells.
  const auto snapshot = registry.Snapshot();
  for (const auto& metric : snapshot) {
    if (metric.name == "tipsy_service_predict_queries_total") {
      EXPECT_DOUBLE_EQ(
          metric.value,
          static_cast<double>(fixture.service.predict_queries()));
    }
    if (metric.name == "tipsy_service_predict_flows_total") {
      EXPECT_DOUBLE_EQ(
          metric.value,
          static_cast<double>(fixture.service.predict_flows()));
    }
  }
  // The ensemble stage counters registered under sanitized names.
  EXPECT_NE(registry.RenderPrometheusText().find(
                "tipsy_service_ensemble_hist_ap_al_a_stage0_hits_total"),
            std::string::npos);
}

TEST(ObsServiceWiring, EnsembleStageHitsFollowLastStage) {
  ServiceFixture fixture;
  const auto* ensemble = dynamic_cast<const core::SequentialEnsemble*>(
      fixture.service.Find("Hist_AP/AL/A"));
  ASSERT_NE(ensemble, nullptr);

  const core::ExclusionMask excluded(fixture.wan.link_count(), false);
  // A flow the finest stage has seen answers at stage 0.
  (void)ensemble->Predict(MakeFlow(0, 0, 0), 3, &excluded);
  const int answered = ensemble->last_stage();
#ifdef TIPSY_NO_OBS
  EXPECT_EQ(ensemble->stage_hits(0), 0u);
  EXPECT_EQ(ensemble->miss_count(), 0u);
#else
  ASSERT_GE(answered, 0);
  EXPECT_EQ(ensemble->stage_hits(static_cast<std::size_t>(answered)), 1u);
  std::uint64_t total = ensemble->miss_count();
  for (std::size_t s = 0; s < ensemble->stage_count(); ++s) {
    total += ensemble->stage_hits(s);
  }
  EXPECT_EQ(total, 1u);
#endif
}

// ---------------------------------------- legacy-counter parity (satellite)
//
// The acceptance bar: migrating the ad-hoc counters onto the registry
// must not change a single value. Replays the PR 2 degraded-mode
// scenario (collector blackout ages the model FRESH -> STALE -> EXPIRED
// while the CMS health gate trips) and checks every legacy accessor
// against the registry snapshot.

double RegistryValue(const obs::Registry& registry, const std::string& name) {
  for (const auto& metric : registry.Snapshot()) {
    if (metric.name == name) return metric.value;
  }
  ADD_FAILURE() << "metric not registered: " << name;
  return -1.0;
}

TEST(ObsCounterParity, DegradedModeScenarioMatchesLegacyAccessors) {
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 200;
  cfg.horizon = util::HourRange{0, 9 * util::kHoursPerDay};
  scenario::Scenario world(cfg);

  scenario::FaultScheduleConfig faults;
  faults.collector_down = {
      util::HourRange{3 * util::kHoursPerDay, 6 * util::kHoursPerDay}};
  scenario::FaultInjectingRowSource source(world, faults);

  core::RetrainPolicy policy;
  policy.stale_after_days = 1;
  policy.expire_after_days = 2;
  core::DailyRetrainer retrainer(&world.wan(), &world.metros(), 3, {},
                                 policy);
  obs::Registry registry;
  const auto retrainer_handles =
      retrainer.RegisterMetrics(registry, "tipsy_retrainer");

  // The CMS gates on the retrainer's live health, exactly as an online
  // deployment wires it.
  core::TipsyService expired(&world.wan(), &world.metros());
  expired.FinalizeTraining();
  cms::CmsConfig cms_config;
  cms_config.health_provider = [&retrainer] { return retrainer.health(); };
  cms::CongestionMitigationSystem cms(&world, &expired, cms_config);
  const auto cms_handles = cms.RegisterMetrics(registry, "tipsy_cms");

  for (util::HourIndex day = 0; day < 9; ++day) {
    source.StreamHours(
        util::HourRange{day * util::kHoursPerDay,
                        (day + 1) * util::kHoursPerDay},
        [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
          retrainer.Ingest(hour, rows);
        });
    retrainer.AdvanceTo((day + 1) * util::kHoursPerDay - 1);
  }
  // Late replays arrive after the outage: dropped-and-counted.
  retrainer.Ingest(2, {});
  retrainer.Ingest(3, {});

  // Drive one congested hour against the (now FRESH again) gate, then
  // force an EXPIRED reading to trip the fallback path.
  const util::LinkId hot{0};
  std::vector<double> loads(world.wan().link_count(), 0.0);
  loads[hot.value()] = world.wan().link(hot).CapacityBytesPerHour() * 1.2;
  pipeline::AggRow row;
  row.link = hot;
  row.src_asn = util::AsId{100};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(1, 1, 1, 0), 24);
  row.src_metro = util::MetroId{0};
  const auto& destination = world.wan().destination(0);
  row.dest_region = destination.region;
  row.dest_service = destination.service;
  row.dest_prefix = destination.prefix;
  row.bytes = static_cast<std::uint64_t>(loads[hot.value()]);
  cms_config.health_provider = [] { return core::ModelHealth::kExpired; };
  cms::CongestionMitigationSystem gated(&world, &expired, cms_config);
  const auto gated_handles = gated.RegisterMetrics(registry, "tipsy_gated");
  gated.ObserveHour(0, loads, std::vector<pipeline::AggRow>{row});
  ASSERT_FALSE(gated.events().empty());

  // The scenario exercised the counters (they are not trivially zero).
  const auto health = retrainer.health_snapshot();
  EXPECT_GE(health.missing_days, 2u);
  EXPECT_GE(health.retrain_failures, 1u);
  EXPECT_EQ(health.dropped_hours, 2u);
  EXPECT_GT(retrainer.retrain_count(), 0u);
  EXPECT_GT(retrainer.incremental_retrains(), 0u);
  EXPECT_EQ(gated.health_fallbacks(), 1u);

  // Parity: legacy accessor == health snapshot field == registry value.
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_retrain_total"),
            static_cast<double>(health.retrain_count));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_retrainer_retrain_failures_total"),
      static_cast<double>(health.retrain_failures));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_dropped_hours_total"),
            static_cast<double>(health.dropped_hours));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_missing_days_total"),
            static_cast<double>(health.missing_days));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_partial_days_total"),
            static_cast<double>(health.partial_days));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_retrainer_incremental_retrains_total"),
      static_cast<double>(retrainer.incremental_retrains()));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_retrainer_incremental_rebuilds_total"),
      static_cast<double>(retrainer.incremental_rebuilds()));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_consecutive_failures"),
            static_cast<double>(health.consecutive_failures));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_buffered_days"),
            static_cast<double>(health.buffered_days));
  EXPECT_EQ(RegistryValue(registry, "tipsy_retrainer_model_health"),
            static_cast<double>(retrainer.health()));
  EXPECT_EQ(RegistryValue(registry, "tipsy_gated_health_fallbacks_total"),
            static_cast<double>(gated.health_fallbacks()));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_gated_unsafe_withdrawals_skipped_total"),
      static_cast<double>(gated.unsafe_withdrawals_skipped()));
  world.ResetAdvertisements();
}

TEST(ObsCounterParity, ReplicaDuplicateSkipAndJournalAppends) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "tipsy_obs_replica_parity";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 150;
  scenario::Scenario world(cfg);

  ha::ReplicaConfig replica_config;
  replica_config.journal_path = (dir / "hours.journal").string();
  replica_config.snapshot_path = (dir / "state.snapshot").string();
  replica_config.fsync_appends = false;
  auto opened = ha::Replica::Open(&world.wan(), &world.metros(), 3, {}, {},
                                  replica_config);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ha::Replica replica = *std::move(opened);

  obs::Registry registry;
  const auto handles = replica.RegisterMetrics(registry, "tipsy_replica");

  std::vector<ha::JournalRecord> shipped;
  world.StreamHours(
      util::HourRange{0, 30},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        ASSERT_TRUE(replica.Ingest(hour, rows).ok());
        ha::JournalRecord record;
        record.seq = shipped.size();
        record.hour = hour;
        record.rows.assign(rows.begin(), rows.end());
        shipped.push_back(std::move(record));
      });
  ASSERT_TRUE(replica.SnapshotNow().ok());

  // Re-ship the whole stream: every record is already applied, so all of
  // them are duplicate-skipped.
  ASSERT_TRUE(replica.Replay(shipped).ok());
  EXPECT_EQ(replica.duplicate_records_skipped(), shipped.size());
  EXPECT_EQ(replica.journal().appends(), shipped.size());
  EXPECT_GT(replica.journal().append_bytes(), 0u);
  EXPECT_GE(replica.snapshots_taken(), 1u);

  EXPECT_EQ(
      RegistryValue(registry, "tipsy_replica_replay_duplicates_skipped_total"),
      static_cast<double>(replica.duplicate_records_skipped()));
  EXPECT_EQ(RegistryValue(registry, "tipsy_replica_journal_appends_total"),
            static_cast<double>(replica.journal().appends()));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_replica_journal_append_bytes_total"),
      static_cast<double>(replica.journal().append_bytes()));
  EXPECT_EQ(RegistryValue(registry, "tipsy_replica_snapshots_total"),
            static_cast<double>(replica.snapshots_taken()));
  EXPECT_EQ(RegistryValue(registry, "tipsy_replica_applied_seq"),
            static_cast<double>(replica.applied_seq()));

  // The retrainer metrics ride along under the replica's prefix.
  EXPECT_EQ(RegistryValue(registry, "tipsy_replica_retrain_total"),
            static_cast<double>(replica.retrainer().retrain_count()));
  std::filesystem::remove_all(dir);
}

TEST(ObsCounterParity, SupervisorStatsMatchRegistry) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "tipsy_obs_supervisor_parity";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 150;
  scenario::Scenario world(cfg);

  auto open_replica = [&](const std::string& name) {
    ha::ReplicaConfig replica_config;
    replica_config.journal_path = (dir / (name + ".journal")).string();
    replica_config.snapshot_path = (dir / (name + ".snapshot")).string();
    replica_config.fsync_appends = false;
    return ha::Replica::Open(&world.wan(), &world.metros(), 3, {}, {},
                             replica_config);
  };
  auto primary = open_replica("primary");
  auto standby = open_replica("standby");
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE(standby.ok());

  ha::Supervisor supervisor(&*primary, &*standby);
  obs::Registry registry;
  const auto handles =
      supervisor.RegisterMetrics(registry, "tipsy_supervisor");

  // Both replicas ingest two days; the primary then goes dark and the
  // supervisor fails over to the standby.
  world.StreamHours(
      util::HourRange{0, 2 * util::kHoursPerDay + 2},
      [&](util::HourIndex hour, std::span<const pipeline::AggRow> rows) {
        ASSERT_TRUE(primary->Ingest(hour, rows).ok());
        ASSERT_TRUE(standby->Ingest(hour, rows).ok());
        supervisor.ObserveHeartbeat(ha::ReplicaRole::kPrimary, hour);
        supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, hour);
        supervisor.Tick(hour);
      });
  ASSERT_EQ(supervisor.serving(), ha::ServingSource::kPrimary);
  const util::HourIndex dark_start = 2 * util::kHoursPerDay + 2;
  for (util::HourIndex hour = dark_start; hour < dark_start + 6; ++hour) {
    ASSERT_TRUE(standby->Heartbeat(hour).ok());
    supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, hour);
    supervisor.Tick(hour);
  }
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kStandby);

  const auto stats = supervisor.stats();
  EXPECT_GT(stats.heartbeats_observed, 0u);
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_supervisor_heartbeats_observed_total"),
      static_cast<double>(stats.heartbeats_observed));
  EXPECT_EQ(RegistryValue(registry, "tipsy_supervisor_failovers_total"),
            static_cast<double>(stats.failovers));
  EXPECT_EQ(RegistryValue(registry, "tipsy_supervisor_failbacks_total"),
            static_cast<double>(stats.failbacks));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_supervisor_promote_attempts_total"),
      static_cast<double>(stats.promote_attempts));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_supervisor_promote_failures_total"),
      static_cast<double>(stats.promote_failures));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_supervisor_unavailable_hours_total"),
      static_cast<double>(stats.unavailable_hours));
  EXPECT_EQ(
      RegistryValue(registry, "tipsy_supervisor_stale_served_hours_total"),
      static_cast<double>(stats.stale_served_hours));
  EXPECT_EQ(RegistryValue(registry, "tipsy_supervisor_serving_source"),
            static_cast<double>(supervisor.serving()));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------- thread-pool metrics

TEST(ObsPoolWiring, QueueDepthAndBatchCountersAreRegistrable) {
  util::ScopedPool scoped(4);
  util::ThreadPool& pool = scoped.pool();
  obs::Registry registry;
  auto r1 = registry.RegisterGauge(
      "tipsy_pool_queue_depth", "Fork-join batches queued",
      [&pool] { return static_cast<double>(pool.queue_depth()); });
  auto r2 = registry.RegisterGauge(
      "tipsy_pool_batches_run", "Fork-join batches executed",
      [&pool] { return static_cast<double>(pool.batches_run()); });

  const std::uint64_t before = pool.batches_run();
  pool.Run(8, [](std::size_t) {});
  EXPECT_EQ(pool.batches_run(), before + 1);
  EXPECT_GE(pool.chunks_run(), 8u);
  EXPECT_EQ(pool.queue_depth(), 0u);  // drained after the join
  EXPECT_EQ(RegistryValue(registry, "tipsy_pool_batches_run"),
            static_cast<double>(pool.batches_run()));
}

}  // namespace
}  // namespace tipsy
