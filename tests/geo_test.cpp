#include <gtest/gtest.h>

#include "geo/geo.h"
#include "geo/geoip.h"
#include "util/rng.h"

namespace tipsy::geo {
namespace {

TEST(Distance, KnownCityPairs) {
  const GeoPoint london{51.51, -0.13};
  const GeoPoint new_york{40.71, -74.01};
  const GeoPoint sydney{-33.87, 151.21};
  // Great-circle distances with generous tolerance.
  EXPECT_NEAR(DistanceKm(london, new_york), 5570.0, 60.0);
  EXPECT_NEAR(DistanceKm(london, sydney), 16990.0, 120.0);
}

TEST(Distance, ZeroForIdenticalPoints) {
  const GeoPoint p{10.0, 20.0};
  EXPECT_DOUBLE_EQ(DistanceKm(p, p), 0.0);
}

TEST(Distance, Symmetric) {
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint a{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
    const GeoPoint b{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
    EXPECT_NEAR(DistanceKm(a, b), DistanceKm(b, a), 1e-9);
  }
}

TEST(Distance, TriangleInequality) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint a{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
    const GeoPoint b{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
    const GeoPoint c{rng.NextDouble() * 180 - 90, rng.NextDouble() * 360 - 180};
    EXPECT_LE(DistanceKm(a, c), DistanceKm(a, b) + DistanceKm(b, c) + 1e-6);
  }
}

TEST(MetroCatalogue, WorldHasAllContinents) {
  const auto world = MetroCatalogue::World();
  EXPECT_GE(world.size(), 70u);
  for (int c = 0; c < 6; ++c) {
    EXPECT_FALSE(world.InContinent(static_cast<Continent>(c)).empty())
        << "continent " << c;
  }
}

TEST(MetroCatalogue, IdsAreDenseIndices) {
  const auto world = MetroCatalogue::World();
  for (std::size_t i = 0; i < world.size(); ++i) {
    EXPECT_EQ(world.metros()[i].id.value(), i);
    EXPECT_EQ(&world.Get(MetroId{static_cast<std::uint32_t>(i)}),
              &world.metros()[i]);
  }
}

TEST(MetroCatalogue, SubsetKeepsHighestWeights) {
  const auto world = MetroCatalogue::World();
  const auto subset = MetroCatalogue::WorldSubset(10);
  ASSERT_EQ(subset.size(), 10u);
  // Every subset metro's weight is at least the 10th highest world weight.
  std::vector<double> weights;
  for (const auto& m : world.metros()) weights.push_back(m.weight);
  std::sort(weights.rbegin(), weights.rend());
  for (const auto& m : subset.metros()) {
    EXPECT_GE(m.weight, weights[9]);
  }
}

TEST(MetroCatalogue, ByDistanceFromSortedAndExcludesSelf) {
  const auto world = MetroCatalogue::WorldSubset(20);
  const MetroId from{0};
  const auto order = world.ByDistanceFrom(from);
  ASSERT_EQ(order.size(), world.size() - 1);
  double prev = 0.0;
  for (MetroId m : order) {
    EXPECT_NE(m, from);
    const double d = world.DistanceKmBetween(from, m);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

TEST(MetroCatalogue, AddSyntheticMetro) {
  auto world = MetroCatalogue::WorldSubset(5);
  const auto id = world.Add("TestCity", GeoPoint{1.0, 2.0},
                            Continent::kAfrica, 0.5);
  EXPECT_EQ(world.Get(id).name, "TestCity");
  EXPECT_EQ(world.size(), 6u);
}

TEST(GeoIpDb, AssignAndLookup) {
  GeoIpDb db;
  const util::Ipv4Prefix p(util::Ipv4Addr(1, 2, 3, 0), 24);
  EXPECT_FALSE(db.Lookup(p).has_value());
  db.Assign(p, MetroId{7});
  EXPECT_EQ(db.Lookup(p).value(), MetroId{7});
  EXPECT_EQ(db.Lookup(util::Ipv4Addr(1, 2, 3, 99)).value(), MetroId{7});
  EXPECT_FALSE(db.Lookup(util::Ipv4Addr(1, 2, 4, 99)).has_value());
}

TEST(GeoIpDb, LastWriterWins) {
  GeoIpDb db;
  const util::Ipv4Prefix p(util::Ipv4Addr(9, 9, 9, 0), 24);
  db.Assign(p, MetroId{1});
  db.Assign(p, MetroId{2});
  EXPECT_EQ(db.Lookup(p).value(), MetroId{2});
  EXPECT_EQ(db.size(), 1u);
}

class GeoIpNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(GeoIpNoiseTest, ErrorRateApproximatelyHonored) {
  const double rate = GetParam();
  const auto metros = MetroCatalogue::WorldSubset(20);
  GeoIpDb db;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    db.Assign(util::Ipv4Prefix(util::Ipv4Addr(i << 8), 24),
              MetroId{i % 20});
  }
  const auto noisy = db.WithNoise(metros, rate, util::Rng(5));
  std::size_t changed = 0;
  for (std::uint32_t i = 0; i < 4000; ++i) {
    const util::Ipv4Prefix p(util::Ipv4Addr(i << 8), 24);
    ASSERT_TRUE(noisy.Lookup(p).has_value());
    if (noisy.Lookup(p) != db.Lookup(p)) ++changed;
  }
  EXPECT_NEAR(static_cast<double>(changed) / 4000.0, rate,
              0.03 + rate * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Rates, GeoIpNoiseTest,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

TEST(GeoIpDb, NoiseNeverMapsToSameMetroWhenChanging) {
  // With rate 1.0 every entry must move somewhere else.
  const auto metros = MetroCatalogue::WorldSubset(5);
  GeoIpDb db;
  for (std::uint32_t i = 0; i < 500; ++i) {
    db.Assign(util::Ipv4Prefix(util::Ipv4Addr(i << 8), 24), MetroId{i % 5});
  }
  const auto noisy = db.WithNoise(metros, 1.0, util::Rng(6));
  for (std::uint32_t i = 0; i < 500; ++i) {
    const util::Ipv4Prefix p(util::Ipv4Addr(i << 8), 24);
    EXPECT_NE(noisy.Lookup(p), db.Lookup(p));
  }
}

}  // namespace
}  // namespace tipsy::geo
