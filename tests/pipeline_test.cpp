#include <gtest/gtest.h>

#include "geo/geoip.h"
#include "pipeline/aggregate.h"
#include "pipeline/encoding.h"
#include "pipeline/link_hour.h"
#include "topo/generator.h"
#include "wan/wan.h"

namespace tipsy::pipeline {
namespace {

// ----------------------------------------------------------- dictionary

TEST(Dictionary, EncodesInFirstSeenOrder) {
  Dictionary<std::string> dict;
  EXPECT_EQ(dict.Encode("a"), 0u);
  EXPECT_EQ(dict.Encode("b"), 1u);
  EXPECT_EQ(dict.Encode("a"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Decode(1), "b");
}

TEST(Dictionary, FindDoesNotInsert) {
  Dictionary<int> dict;
  dict.Encode(10);
  EXPECT_FALSE(dict.Find(20).has_value());
  EXPECT_EQ(dict.Find(10).value(), 0u);
  EXPECT_EQ(dict.size(), 1u);
}

// ------------------------------------------------------------ aggregate

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
    geoip_.Assign(p24_, util::MetroId{2});
  }

  telemetry::IpfixRecord Record(std::uint32_t link, std::uint32_t dest,
                                std::uint64_t bytes) const {
    telemetry::IpfixRecord r;
    r.hour = 5;
    r.link = util::LinkId{link};
    r.src_prefix24 = p24_;
    r.src_asn = util::AsId{777};
    r.dest_addr = wan_->destination(dest).address;
    r.scaled_bytes = bytes;
    return r;
  }

  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
  geo::GeoIpDb geoip_;
  util::Ipv4Prefix p24_{util::Ipv4Addr(10, 1, 1, 0), 24};
};

TEST_F(AggregateTest, MergesIdenticalKeysSummingBytes) {
  HourlyAggregator agg(wan_.get(), &geoip_);
  const std::vector<telemetry::IpfixRecord> records{
      Record(0, 0, 100), Record(0, 0, 50), Record(1, 0, 10)};
  const auto rows = agg.Aggregate(records);
  ASSERT_EQ(rows.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& row : rows) {
    total += row.bytes;
    if (row.link == util::LinkId{0}) EXPECT_EQ(row.bytes, 150u);
  }
  EXPECT_EQ(total, 160u);
  EXPECT_EQ(agg.stats().raw_records, 3u);
  EXPECT_EQ(agg.stats().aggregated_rows, 2u);
  EXPECT_LT(agg.stats().CompressionRatio(), 1.0);
}

TEST_F(AggregateTest, JoinsMetadata) {
  HourlyAggregator agg(wan_.get(), &geoip_);
  const std::vector<telemetry::IpfixRecord> records{Record(0, 3, 100)};
  const auto rows = agg.Aggregate(records);
  ASSERT_EQ(rows.size(), 1u);
  const auto& destination = wan_->destination(3);
  EXPECT_EQ(rows[0].dest_region, destination.region);
  EXPECT_EQ(rows[0].dest_service, destination.service);
  EXPECT_EQ(rows[0].dest_prefix, destination.prefix);
  EXPECT_EQ(rows[0].src_metro, util::MetroId{2});
  EXPECT_EQ(rows[0].src_asn.value(), 777u);
  EXPECT_EQ(rows[0].hour, 5);
}

TEST_F(AggregateTest, GeoIpMissKeepsRowWithInvalidMetro) {
  HourlyAggregator agg(wan_.get(), &geoip_);
  auto record = Record(0, 0, 100);
  record.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(99, 9, 9, 0), 24);
  const auto rows =
      agg.Aggregate(std::vector<telemetry::IpfixRecord>{record});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].src_metro.valid());
  EXPECT_EQ(agg.stats().geoip_misses, 1u);
}

TEST_F(AggregateTest, DistinctDestinationsDoNotMerge) {
  HourlyAggregator agg(wan_.get(), &geoip_);
  // Destinations 0 and 1 differ in service type -> different rows.
  const std::vector<telemetry::IpfixRecord> records{Record(0, 0, 100),
                                                    Record(0, 1, 100)};
  EXPECT_EQ(agg.Aggregate(records).size(), 2u);
}

// ------------------------------------------------------------ link-hour

TEST(LinkHourTable, AccumulatesPerHour) {
  LinkHourTable table(4);
  table.AddBytes(util::LinkId{1}, 10, 100.0);
  table.AddBytes(util::LinkId{1}, 10, 50.0);
  table.AddBytes(util::LinkId{1}, 11, 5.0);
  EXPECT_DOUBLE_EQ(table.Bytes(util::LinkId{1}, 10), 150.0);
  EXPECT_DOUBLE_EQ(table.Bytes(util::LinkId{1}, 11), 5.0);
  EXPECT_DOUBLE_EQ(table.Bytes(util::LinkId{0}, 10), 0.0);
  EXPECT_DOUBLE_EQ(table.Bytes(util::LinkId{1}, 99), 0.0);
  EXPECT_EQ(table.Hours(), (std::vector<util::HourIndex>{10, 11}));
}

class OutageInferenceTest : public ::testing::Test {
 protected:
  // Link 0: active with a 3-hour gap. Link 1: always active. Link 2:
  // never active. Link 3: active with a 30-hour gap (too long).
  OutageInferenceTest() : table_(4) {
    for (util::HourIndex h = 0; h < 48; ++h) {
      if (h < 10 || h >= 13) table_.AddBytes(util::LinkId{0}, h, 1.0);
      table_.AddBytes(util::LinkId{1}, h, 1.0);
      if (h < 5 || h >= 35) table_.AddBytes(util::LinkId{3}, h, 1.0);
    }
  }
  LinkHourTable table_;
};

TEST_F(OutageInferenceTest, DetectsBoundedGaps) {
  const auto outages = InferOutages(table_, {0, 48});
  ASSERT_EQ(outages.size(), 1u);
  EXPECT_EQ(outages[0].link, util::LinkId{0});
  EXPECT_EQ(outages[0].hours.begin, 10);
  EXPECT_EQ(outages[0].hours.end, 13);
}

TEST_F(OutageInferenceTest, LongGapsExcludedByDefault) {
  OutageInferenceConfig cfg;
  cfg.max_duration_hours = 48;
  const auto outages = InferOutages(table_, {0, 48}, cfg);
  // With the cap raised, link 3's 30-hour gap also appears.
  ASSERT_EQ(outages.size(), 2u);
  EXPECT_EQ(outages[1].link, util::LinkId{3});
  EXPECT_EQ(outages[1].hours.length(), 30);
}

TEST_F(OutageInferenceTest, InactiveLinksIgnored) {
  for (const auto& outage : InferOutages(table_, {0, 48})) {
    EXPECT_NE(outage.link, util::LinkId{2});
  }
  OutageInferenceConfig cfg;
  cfg.require_activity = false;
  cfg.max_duration_hours = 100;
  bool found_link2 = false;
  for (const auto& outage : InferOutages(table_, {0, 48}, cfg)) {
    if (outage.link == util::LinkId{2}) found_link2 = true;
  }
  EXPECT_TRUE(found_link2);
}

TEST_F(OutageInferenceTest, WindowBoundariesRespected) {
  // Restrict to [0, 12): link 0's gap [10, 13) is clipped to [10, 12),
  // and link 3's long gap is clipped to [5, 12), which now fits under the
  // 24-hour cap. Both runs touch the window end and are kept.
  const auto outages = InferOutages(table_, {0, 12});
  ASSERT_EQ(outages.size(), 2u);
  EXPECT_EQ(outages[0].link, util::LinkId{0});
  EXPECT_EQ(outages[0].hours.begin, 10);
  EXPECT_EQ(outages[0].hours.end, 12);
  EXPECT_EQ(outages[1].link, util::LinkId{3});
  EXPECT_EQ(outages[1].hours.begin, 5);
  EXPECT_EQ(outages[1].hours.end, 12);
}

TEST_F(OutageInferenceTest, MinDurationFilters) {
  OutageInferenceConfig cfg;
  cfg.min_duration_hours = 5;
  EXPECT_TRUE(InferOutages(table_, {0, 48}, cfg).empty());
}

TEST(LinksWithOutage, FlagsOnlyOverlapping) {
  std::vector<OutageInterval> outages{
      {util::LinkId{0}, {5, 8}},
      {util::LinkId{2}, {20, 25}},
  };
  const auto flags = LinksWithOutage(outages, 4, {0, 10});
  EXPECT_TRUE(flags[0]);
  EXPECT_FALSE(flags[1]);
  EXPECT_FALSE(flags[2]);  // outside the window
}

}  // namespace
}  // namespace tipsy::pipeline
