// Serving-core correctness: the flat-table backend must be bit-identical
// to the legacy hash-map backend in everything it serves, across direct
// training, export round trips, and snapshot warm-starts; the batched
// PredictShift must equal the per-flow loop byte for byte; and the epoch
// swap must let readers predict concurrently with a publisher (the TSan
// leg of tools/run_sanitized_fuzz.sh runs this binary to prove the swap
// is race-free without the hot path taking a lock).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/historical.h"
#include "core/online.h"
#include "core/tipsy_service.h"
#include "topo/generator.h"

namespace tipsy {
namespace {

using core::FeatureSet;
using core::FlowFeatures;
using core::HistoricalModel;
using core::ServingBackend;

FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                      std::uint32_t metro, std::uint32_t region = 0,
                      wan::ServiceType service = wan::ServiceType::kWeb) {
  FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{region};
  flow.dest_service = service;
  return flow;
}

pipeline::AggRow MakeRow(const FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes) {
  pipeline::AggRow row;
  row.hour = 0;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.bytes = bytes;
  return row;
}

// A randomized training window: a few dozen distinct tuples, byte counts
// spread over a handful of links, deterministic per seed.
std::vector<pipeline::AggRow> RandomWindow(std::uint64_t seed,
                                           std::size_t rows = 400) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> asn(1, 12);
  std::uniform_int_distribution<std::uint32_t> prefix(1, 20);
  std::uniform_int_distribution<std::uint32_t> metro(0, 3);
  std::uniform_int_distribution<std::uint32_t> region(0, 2);
  std::uniform_int_distribution<std::uint32_t> link(0, 12);
  std::uniform_int_distribution<std::uint64_t> bytes(1, 1'000'000);
  std::vector<pipeline::AggRow> window;
  window.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto flow =
        MakeFlow(asn(rng), prefix(rng), metro(rng), region(rng),
                 i % 3 == 0 ? wan::ServiceType::kStorage
                            : wan::ServiceType::kWeb);
    window.push_back(MakeRow(flow, link(rng), bytes(rng)));
  }
  return window;
}

HistoricalModel TrainModel(FeatureSet fs, ServingBackend backend,
                           const std::vector<pipeline::AggRow>& window,
                           std::size_t max_links = 16) {
  HistoricalModel model(fs, max_links, /*weight_by_bytes=*/true, backend);
  for (const auto& row : window) model.Add(row);
  model.Finalize();
  return model;
}

// Exact (bit-level) equality of two export tables.
void ExpectExportsIdentical(const HistoricalModel& flat,
                            const HistoricalModel& legacy) {
  const auto a = flat.ExportTable();
  const auto b = legacy.ExportTable();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].key == b[i].key) << "entry " << i;
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes) << "entry " << i;
    ASSERT_EQ(a[i].ranked.size(), b[i].ranked.size()) << "entry " << i;
    for (std::size_t j = 0; j < a[i].ranked.size(); ++j) {
      EXPECT_EQ(a[i].ranked[j].first, b[i].ranked[j].first);
      EXPECT_EQ(a[i].ranked[j].second, b[i].ranked[j].second);
    }
  }
}

// Exact equality of Predict and PredictInto across the two models for a
// query stream of seen, unseen and unkeyable flows, with and without
// exclusions.
void ExpectPredictionsIdentical(const HistoricalModel& flat,
                                const HistoricalModel& legacy,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<std::uint32_t> asn(1, 16);  // some unseen
  std::uniform_int_distribution<std::uint32_t> prefix(1, 24);
  std::uniform_int_distribution<std::uint32_t> metro(0, 4);
  std::uniform_int_distribution<std::uint32_t> region(0, 2);
  core::ExclusionMask excluded(16, false);
  excluded[2] = excluded[7] = true;
  for (int q = 0; q < 500; ++q) {
    auto flow = MakeFlow(asn(rng), prefix(rng), metro(rng), region(rng));
    if (q % 17 == 0) flow.src_metro = util::MetroId{};  // unkeyable for AL
    const auto* mask = q % 3 == 0 ? &excluded : nullptr;
    const std::size_t k = 1 + q % 5;
    EXPECT_EQ(flat.Knows(flow), legacy.Knows(flow));
    const auto a = flat.Predict(flow, k, mask);
    const auto b = legacy.Predict(flow, k, mask);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].link, b[i].link);
      EXPECT_EQ(a[i].probability, b[i].probability);  // bit-exact
    }
    std::vector<core::Prediction> into(k);
    const std::size_t n = flat.PredictInto(flow, k, mask, into);
    ASSERT_EQ(n, a.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(into[i].link, a[i].link);
      EXPECT_EQ(into[i].probability, a[i].probability);
    }
  }
}

// ------------------------------------------------- flat vs legacy backend

TEST(ServingCore, FlatAndLegacyBitIdenticalOverRandomWindows) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const auto window = RandomWindow(seed);
    for (const auto fs :
         {FeatureSet::kA, FeatureSet::kAP, FeatureSet::kAL}) {
      const auto flat = TrainModel(fs, ServingBackend::kFlat, window);
      const auto legacy =
          TrainModel(fs, ServingBackend::kLegacyMap, window);
      ASSERT_EQ(flat.tuple_count(), legacy.tuple_count());
      EXPECT_NE(flat.flat_table(), nullptr);
      EXPECT_EQ(legacy.flat_table(), nullptr);
      ExpectExportsIdentical(flat, legacy);
      ExpectPredictionsIdentical(flat, legacy, seed);
    }
  }
}

TEST(ServingCore, TruncationIdenticalAcrossBackends) {
  // A small max_links_per_tuple forces the ranking truncation path; both
  // backends must keep exactly the same survivors.
  const auto window = RandomWindow(99, /*rows=*/800);
  for (const auto fs : {FeatureSet::kA, FeatureSet::kAL}) {
    const auto flat = TrainModel(fs, ServingBackend::kFlat, window,
                                 /*max_links=*/3);
    const auto legacy = TrainModel(fs, ServingBackend::kLegacyMap, window,
                                   /*max_links=*/3);
    ExpectExportsIdentical(flat, legacy);
    ExpectPredictionsIdentical(flat, legacy, 99);
  }
}

TEST(ServingCore, FromExportRoundTripRebuildsFlatTable) {
  const auto window = RandomWindow(5);
  const auto trained =
      TrainModel(FeatureSet::kAL, ServingBackend::kFlat, window);
  const auto exported = trained.ExportTable();

  const auto flat = HistoricalModel::FromExport(
      FeatureSet::kAL, 16, true, exported, ServingBackend::kFlat);
  const auto legacy = HistoricalModel::FromExport(
      FeatureSet::kAL, 16, true, exported, ServingBackend::kLegacyMap);
  EXPECT_NE(flat.flat_table(), nullptr);
  EXPECT_EQ(legacy.flat_table(), nullptr);
  ExpectExportsIdentical(flat, legacy);
  ExpectPredictionsIdentical(flat, legacy, 5);

  // And the round trip itself is lossless: re-export equals the original.
  const auto reexported = flat.ExportTable();
  ASSERT_EQ(reexported.size(), exported.size());
  for (std::size_t i = 0; i < exported.size(); ++i) {
    EXPECT_TRUE(reexported[i].key == exported[i].key);
    EXPECT_EQ(reexported[i].total_bytes, exported[i].total_bytes);
    EXPECT_EQ(reexported[i].ranked, exported[i].ranked);
  }
}

TEST(ServingCore, FlatTableExposesBuildDiagnostics) {
  const auto window = RandomWindow(11);
  const auto model =
      TrainModel(FeatureSet::kAP, ServingBackend::kFlat, window);
  const core::FlatTupleTable* table = model.flat_table();
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->size(), model.tuple_count());
  EXPECT_GT(table->bucket_count(), table->size());  // load factor < 1
  EXPECT_GT(table->link_count(), 0u);
  EXPECT_GT(table->MemoryFootprintBytes(), 0u);
  EXPECT_GE(table->max_probe_length(), 1u);
}

// ------------------------------------------------------ service fixtures

struct ServiceFixture {
  ServiceFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  [[nodiscard]] std::vector<pipeline::AggRow> HourRows(
      util::HourIndex hour) const {
    std::vector<pipeline::AggRow> rows;
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (std::uint32_t f = 0; f < 6; ++f) {
      auto flow = MakeFlow(100 + f, f + 1, f % 2);
      rows.push_back(MakeRow(
          flow, (f + static_cast<std::uint32_t>(hour)) % links,
          500 + 13 * f + 7 * static_cast<std::uint64_t>(hour)));
      rows.back().hour = hour;
    }
    return rows;
  }

  [[nodiscard]] std::shared_ptr<core::TipsyService> TrainService(
      ServingBackend backend, int days = 3) const {
    core::TipsyConfig config;
    config.serving_backend = backend;
    auto service = std::make_shared<core::TipsyService>(
        &wan, &topology.metros, config);
    for (util::HourIndex hour = 0; hour < days * util::kHoursPerDay;
         ++hour) {
      service->Train(HourRows(hour));
    }
    service->FinalizeTraining();
    return service;
  }

  [[nodiscard]] std::vector<core::TipsyService::ShiftQueryFlow> QueryFlows()
      const {
    std::vector<core::TipsyService::ShiftQueryFlow> flows;
    for (util::HourIndex hour = 0; hour < 5; ++hour) {
      for (const auto& row : HourRows(hour)) {
        flows.push_back(core::TipsyService::ShiftQueryFlow{
            FlowFeatures{row.src_asn, row.src_prefix24, row.src_metro,
                         row.dest_region, row.dest_service},
            static_cast<double>(row.bytes)});
      }
    }
    // A couple of flows the model has never seen (unpredicted path).
    flows.push_back(
        core::TipsyService::ShiftQueryFlow{MakeFlow(999, 99, 0), 1234.0});
    flows.push_back(
        core::TipsyService::ShiftQueryFlow{MakeFlow(998, 98, 1), 777.0});
    return flows;
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

// ----------------------------------------------------- batched PredictShift

TEST(ServingCore, BatchedPredictShiftMatchesPerFlowLoop) {
  ServiceFixture fixture;
  const auto flows = fixture.QueryFlows();
  for (const auto backend :
       {ServingBackend::kFlat, ServingBackend::kLegacyMap}) {
    const auto service = fixture.TrainService(backend);
    core::ExclusionMask excluded(fixture.wan.link_count(), false);
    if (!excluded.empty()) excluded[0] = true;
    for (const std::size_t k : {1u, 3u, 8u}) {
      const auto batched = service->PredictShift(flows, excluded, k);
      // The naive loop: one single-flow batch per flow, accumulated per
      // link in flow order - exactly the contract the batched path
      // promises to reproduce bit for bit.
      std::map<util::LinkId, double> expected;
      double expected_unpredicted = 0.0;
      for (const auto& flow : flows) {
        const auto one =
            service->PredictShift(std::span(&flow, 1), excluded, k);
        for (const auto& [link, bytes] : one.shifted) {
          expected[link] += bytes;
        }
        expected_unpredicted += one.unpredicted_bytes;
      }
      EXPECT_EQ(batched.unpredicted_bytes, expected_unpredicted);
      ASSERT_EQ(batched.shifted.size(), expected.size());
      auto it = expected.begin();
      for (const auto& [link, bytes] : batched.shifted) {
        EXPECT_EQ(link, it->first);       // sorted by link id
        EXPECT_EQ(bytes, it->second);     // bit-exact accumulation
        EXPECT_EQ(batched.BytesFor(link), bytes);
        ++it;
      }
      EXPECT_EQ(batched.BytesFor(util::LinkId{0}), 0.0);  // excluded link
    }
  }
}

TEST(ServingCore, FlatAndLegacyServicesShiftIdentically) {
  ServiceFixture fixture;
  const auto flat = fixture.TrainService(ServingBackend::kFlat);
  const auto legacy = fixture.TrainService(ServingBackend::kLegacyMap);
  const auto flows = fixture.QueryFlows();
  const core::ExclusionMask excluded(fixture.wan.link_count(), false);
  const auto a = flat->PredictShift(flows, excluded, 3);
  const auto b = legacy->PredictShift(flows, excluded, 3);
  EXPECT_EQ(a.unpredicted_bytes, b.unpredicted_bytes);
  ASSERT_EQ(a.shifted.size(), b.shifted.size());
  for (std::size_t i = 0; i < a.shifted.size(); ++i) {
    EXPECT_EQ(a.shifted[i].first, b.shifted[i].first);
    EXPECT_EQ(a.shifted[i].second, b.shifted[i].second);
  }
  EXPECT_GT(a.shifted.size(), 0u);
}

TEST(ServingCore, PredictShiftNoMetricsMatchesInstrumented) {
  ServiceFixture fixture;
  const auto service = fixture.TrainService(ServingBackend::kFlat);
  const auto flows = fixture.QueryFlows();
  const core::ExclusionMask excluded(fixture.wan.link_count(), false);
  const auto instrumented = service->PredictShift(flows, excluded, 3);
  const auto bare = service->PredictShiftNoMetrics(flows, excluded, 3);
  EXPECT_EQ(instrumented.unpredicted_bytes, bare.unpredicted_bytes);
  ASSERT_EQ(instrumented.shifted.size(), bare.shifted.size());
  for (std::size_t i = 0; i < instrumented.shifted.size(); ++i) {
    EXPECT_EQ(instrumented.shifted[i], bare.shifted[i]);
  }
}

// -------------------------------------------------- snapshot warm-start

TEST(ServingCore, SnapshotWarmStartRebuildsFlatTables) {
  ServiceFixture fixture;
  core::DailyRetrainer original(&fixture.wan, &fixture.topology.metros,
                                /*window_days=*/3);
  for (util::HourIndex hour = 0; hour < 4 * util::kHoursPerDay; ++hour) {
    original.Ingest(hour, fixture.HourRows(hour));
  }
  ASSERT_NE(original.current(), nullptr);

  core::DailyRetrainer restored(&fixture.wan, &fixture.topology.metros,
                                /*window_days=*/3);
  ASSERT_TRUE(restored.RestoreState(original.ExportState()).ok());
  ASSERT_NE(restored.current(), nullptr);

  // The model bundle round-trips through core::SaveService/LoadService;
  // the restored service must come back up on the flat backend with the
  // flat tables rebuilt, serving bit-identically.
  for (const auto fs :
       {FeatureSet::kA, FeatureSet::kAP, FeatureSet::kAL}) {
    const auto& a = original.current()->hist(fs);
    const auto& b = restored.current()->hist(fs);
    EXPECT_NE(b.flat_table(), nullptr);
    ExpectExportsIdentical(b, a);
  }
  const auto flows = fixture.QueryFlows();
  const core::ExclusionMask excluded(fixture.wan.link_count(), false);
  const auto before = original.current()->PredictShift(flows, excluded, 3);
  const auto after = restored.current()->PredictShift(flows, excluded, 3);
  EXPECT_EQ(before.unpredicted_bytes, after.unpredicted_bytes);
  ASSERT_EQ(before.shifted.size(), after.shifted.size());
  for (std::size_t i = 0; i < before.shifted.size(); ++i) {
    EXPECT_EQ(before.shifted[i], after.shifted[i]);
  }
}

// ------------------------------------------------------------ epoch swap

TEST(ServingCore, RetrainerPublishesToAttachedEpoch) {
  ServiceFixture fixture;
  core::ModelEpoch epoch;
  core::DailyRetrainer retrainer(&fixture.wan, &fixture.topology.metros,
                                 /*window_days=*/3);
  retrainer.PublishTo(&epoch);
  EXPECT_EQ(epoch.epoch(), 1u);          // attach publishes immediately
  EXPECT_EQ(epoch.Acquire(), nullptr);   // nothing trained yet
  for (util::HourIndex hour = 0; hour < 3 * util::kHoursPerDay; ++hour) {
    retrainer.Ingest(hour, fixture.HourRows(hour));
  }
  EXPECT_GT(epoch.epoch(), 1u);
  EXPECT_EQ(epoch.Acquire().get(), retrainer.current());
}

// The TSan target: readers keep predicting on acquired snapshots while a
// publisher swaps epochs underneath them. The old epoch must stay alive
// until its last reader drops the snapshot, and no access may race.
// (GCC 12's std::atomic<std::shared_ptr> itself predates libstdc++'s
// TSan mutex annotations, so tools/run_sanitized_fuzz.sh loads
// tools/tsan.supp to silence that one library-internal report.)
TEST(ServingCoreTsan, EpochSwapUnderConcurrentReaders) {
  ServiceFixture fixture;
  const auto model_a = fixture.TrainService(ServingBackend::kFlat, 2);
  const auto model_b = fixture.TrainService(ServingBackend::kFlat, 3);
  const auto flows = fixture.QueryFlows();
  const core::ExclusionMask excluded(fixture.wan.link_count(), false);

  core::ModelEpoch epoch;
  epoch.Publish(model_a);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snapshot = epoch.Acquire();
        ASSERT_NE(snapshot, nullptr);
        const auto result = snapshot->PredictShift(flows, excluded, 3);
        ASSERT_FALSE(result.shifted.empty());
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread publisher([&] {
    for (int i = 0; i < 400; ++i) {
      epoch.Publish(i % 2 == 0 ? model_b : model_a);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  publisher.join();
  for (auto& reader : readers) reader.join();

  EXPECT_GE(epoch.epoch(), 401u);
  EXPECT_GT(batches.load(), 0u);
  // Both models survive the churn and still serve.
  EXPECT_FALSE(
      epoch.Acquire()->PredictShift(flows, excluded, 3).shifted.empty());
}

}  // namespace
}  // namespace tipsy
