#include <gtest/gtest.h>

#include "telemetry/bmp.h"
#include "telemetry/ipfix.h"
#include "util/stats.h"

namespace tipsy::telemetry {
namespace {

TEST(IpfixSampler, ZeroBytesNeverSampled) {
  IpfixSampler sampler({});
  EXPECT_FALSE(sampler.SampleBytes(0.0, 1).has_value());
}

TEST(IpfixSampler, Deterministic) {
  IpfixSampler sampler({});
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(sampler.SampleBytes(5e6, key), sampler.SampleBytes(5e6, key));
  }
}

TEST(IpfixSampler, LargeFlowsAlwaysDetected) {
  IpfixSampler sampler({});
  // 1e12 bytes -> ~244k expected samples; detection is certain.
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_TRUE(sampler.SampleBytes(1e12, key).has_value());
  }
}

TEST(IpfixSampler, TinyFlowsUsuallyMissed) {
  IpfixSampler sampler({});
  // 100KB at 1/4096 with 1000B packets: mean sampled ~ 0.024.
  int detected = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (sampler.SampleBytes(1e5, key).has_value()) ++detected;
  }
  EXPECT_LT(detected, 100);
}

class SamplerUnbiasednessTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplerUnbiasednessTest, ScaledEstimateIsUnbiased) {
  const double true_bytes = GetParam();
  IpfixSampler sampler({});
  // Average the estimate over many flow keys INCLUDING the zero
  // estimates of undetected flows - the estimator is unbiased overall.
  double total = 0.0;
  const int trials = 30000;
  for (int key = 0; key < trials; ++key) {
    total += static_cast<double>(
        sampler.SampleBytes(true_bytes, static_cast<std::uint64_t>(key))
            .value_or(0));
  }
  EXPECT_NEAR(total / trials / true_bytes, 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SamplerUnbiasednessTest,
                         ::testing::Values(1e7, 1e8, 1e9, 1e10));

TEST(IpfixSampler, HigherRateMissesMore) {
  IpfixConfig coarse;
  coarse.sampling_rate = 1 << 20;
  IpfixConfig fine;
  fine.sampling_rate = 256;
  const IpfixSampler coarse_sampler(coarse);
  const IpfixSampler fine_sampler(fine);
  int coarse_hits = 0, fine_hits = 0;
  for (std::uint64_t key = 0; key < 2000; ++key) {
    if (coarse_sampler.SampleBytes(5e7, key)) ++coarse_hits;
    if (fine_sampler.SampleBytes(5e7, key)) ++fine_hits;
  }
  EXPECT_LT(coarse_hits, fine_hits);
  EXPECT_EQ(fine_hits, 2000);
}

TEST(IpfixSampler, EstimateGranularityIsRateTimesPacket) {
  IpfixSampler sampler({});
  const auto estimate = sampler.SampleBytes(1e9, 7);
  ASSERT_TRUE(estimate.has_value());
  const auto granularity = static_cast<std::uint64_t>(4096 * 1000);
  EXPECT_EQ(*estimate % granularity, 0u);
}

TEST(BmpFeed, RecordAndQuery) {
  BmpFeed feed;
  feed.Record({1, util::LinkId{0}, util::PrefixId{3},
               BmpEventType::kWithdraw});
  feed.Record({5, util::LinkId{1}, util::PrefixId{},
               BmpEventType::kSessionDown});
  feed.Record({9, util::LinkId{1}, util::PrefixId{},
               BmpEventType::kSessionUp});
  EXPECT_EQ(feed.size(), 3u);
  EXPECT_EQ(feed.CountOf(BmpEventType::kWithdraw), 1u);
  EXPECT_EQ(feed.CountOf(BmpEventType::kSessionDown), 1u);
  EXPECT_EQ(feed.CountOf(BmpEventType::kAnnounce), 0u);
  const auto in_range = feed.InRange(util::HourRange{0, 6});
  ASSERT_EQ(in_range.size(), 2u);
  EXPECT_EQ(in_range[1].hour, 5);
}

}  // namespace
}  // namespace tipsy::telemetry
