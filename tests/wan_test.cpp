#include <gtest/gtest.h>

#include <set>

#include "geo/geo.h"
#include "topo/generator.h"
#include "wan/wan.h"

namespace tipsy::wan {
namespace {

class WanTest : public ::testing::Test {
 protected:
  WanTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence,
        /*prefix_count=*/8, /*seed=*/1);
  }
  topo::GeneratedTopology topology_;
  std::unique_ptr<Wan> wan_;
};

TEST_F(WanTest, LinksMatchSpecs) {
  ASSERT_EQ(wan_->link_count(), topology_.peering_links.size());
  for (std::size_t i = 0; i < wan_->link_count(); ++i) {
    const auto& link = wan_->link(util::LinkId{
        static_cast<std::uint32_t>(i)});
    EXPECT_EQ(link.id.value(), i);
    EXPECT_EQ(link.metro, topology_.peering_links[i].metro);
    EXPECT_GT(link.capacity_gbps, 0.0);
  }
}

TEST_F(WanTest, CapacityConversion) {
  const auto& link = wan_->link(util::LinkId{0});
  // capacity_gbps Gbit/s * 3600 s / 8 bits-per-byte.
  EXPECT_DOUBLE_EQ(link.CapacityBytesPerHour(),
                   link.capacity_gbps * 1e9 / 8.0 * 3600.0);
}

TEST_F(WanTest, DestinationsCoverEveryRegionServicePair) {
  EXPECT_EQ(wan_->destination_count(),
            wan_->region_count() * kServiceTypeCount);
  std::set<std::pair<std::uint32_t, int>> seen;
  for (const auto& dest : wan_->destinations()) {
    EXPECT_TRUE(
        seen.emplace(dest.region.value(), static_cast<int>(dest.service))
            .second);
    EXPECT_LT(dest.prefix.value(), wan_->prefix_count());
    EXPECT_EQ(dest.region_metro, wan_->region_metro(dest.region));
  }
}

TEST_F(WanTest, DestinationsOfPrefixIsInverseMapping) {
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < wan_->prefix_count(); ++p) {
    for (std::size_t d : wan_->DestinationsOfPrefix(util::PrefixId{p})) {
      EXPECT_EQ(wan_->destination(d).prefix.value(), p);
      ++total;
    }
  }
  EXPECT_EQ(total, wan_->destination_count());
}

TEST_F(WanTest, LinksOfAsnByDistanceSortedAndExcluding) {
  // Find an ASN with at least 3 links.
  util::AsId asn;
  for (const auto& link : wan_->links()) {
    std::size_t count = 0;
    for (const auto& other : wan_->links()) {
      if (other.peer_asn == link.peer_asn) ++count;
    }
    if (count >= 3) {
      asn = link.peer_asn;
      break;
    }
  }
  ASSERT_TRUE(asn.valid()) << "tiny topology has no multi-link peer";
  // Anchor at the first link of that ASN.
  const PeeringLink* anchor = nullptr;
  for (const auto& link : wan_->links()) {
    if (link.peer_asn == asn) {
      anchor = &link;
      break;
    }
  }
  const auto ranked = wan_->LinksOfAsnByDistance(asn, anchor->metro,
                                                 topology_.metros,
                                                 anchor->id);
  ASSERT_GE(ranked.size(), 2u);
  double prev = -1.0;
  for (auto id : ranked) {
    EXPECT_NE(id, anchor->id);
    EXPECT_EQ(wan_->link(id).peer_asn, asn);
    const double d = topology_.metros.DistanceKmBetween(
        anchor->metro, wan_->link(id).metro);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

TEST_F(WanTest, UtilizationTracker) {
  UtilizationTracker tracker(wan_->link_count());
  const util::LinkId link{0};
  const double cap = wan_->link(link).CapacityBytesPerHour();
  tracker.AddBytes(link, cap / 2.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(link, *wan_), 0.5);
  tracker.AddBytes(link, cap / 4.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(link, *wan_), 0.75);
  tracker.Reset();
  EXPECT_DOUBLE_EQ(tracker.Utilization(link, *wan_), 0.0);
}

TEST_F(WanTest, AnnouncedPrefixesDisjointAndVariableLength) {
  std::set<std::uint8_t> lengths;
  for (std::uint32_t p = 0; p < wan_->prefix_count(); ++p) {
    const auto a = wan_->AnnouncedPrefix(util::PrefixId{p});
    lengths.insert(a.length());
    EXPECT_GE(a.length(), 10);
    EXPECT_LE(a.length(), 14);
    for (std::uint32_t q = 0; q < p; ++q) {
      const auto b = wan_->AnnouncedPrefix(util::PrefixId{q});
      EXPECT_FALSE(a.Contains(b) || b.Contains(a))
          << a.ToString() << " overlaps " << b.ToString();
    }
  }
  EXPECT_GE(lengths.size(), 2u);  // genuinely variable-length
}

TEST_F(WanTest, DestinationAddressesResolveToTheirPrefix) {
  for (std::size_t d = 0; d < wan_->destination_count(); ++d) {
    const auto& dest = wan_->destination(d);
    EXPECT_TRUE(wan_->AnnouncedPrefix(dest.prefix).Contains(dest.address));
    EXPECT_EQ(wan_->PrefixOfAddress(dest.address), dest.prefix);
    EXPECT_EQ(wan_->DestinationOfAddress(dest.address).value(), d);
  }
  // An address outside WAN space resolves to nothing.
  EXPECT_FALSE(wan_->PrefixOfAddress(util::Ipv4Addr(8, 8, 8, 8)).valid());
  EXPECT_FALSE(
      wan_->DestinationOfAddress(util::Ipv4Addr(8, 8, 8, 8)).has_value());
}

TEST(ServiceType, NamesAreDistinct) {
  std::set<std::string> names;
  for (std::size_t s = 0; s < kServiceTypeCount; ++s) {
    names.insert(ToString(static_cast<ServiceType>(s)));
  }
  EXPECT_EQ(names.size(), kServiceTypeCount);
}

TEST(Wan, DeterministicPrefixPlanForSeed) {
  const auto topology = topo::GenerateTinyTopology();
  const auto presence = topology.graph.node(topology.wan).presence;
  const Wan a(topology.peering_links, presence, 8, 99);
  const Wan b(topology.peering_links, presence, 8, 99);
  const Wan c(topology.peering_links, presence, 8, 100);
  ASSERT_EQ(a.destination_count(), b.destination_count());
  bool any_differs_from_c = false;
  for (std::size_t i = 0; i < a.destination_count(); ++i) {
    EXPECT_EQ(a.destination(i).prefix, b.destination(i).prefix);
    if (a.destination(i).prefix != c.destination(i).prefix) {
      any_differs_from_c = true;
    }
  }
  EXPECT_TRUE(any_differs_from_c);
}

}  // namespace
}  // namespace tipsy::wan
