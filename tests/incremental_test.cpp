// Incremental per-day-shard retraining (core/day_shard.h + the
// DailyRetrainer's window aggregate).
//
// The load-bearing property throughout is *bit-identity*: a retrainer
// maintaining mergeable day shards and refreshing the window by
// merge-newest / subtract-expired must serve, at every day boundary and
// after every ingest imperfection (duplicate re-delivery, out-of-order
// hours, day gaps, snapshot warm-start), exactly the model a from-scratch
// window rebuild serves - compared as core::SaveService bytes - and
// report exactly the same ServiceHealth.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "core/day_shard.h"
#include "core/online.h"
#include "core/serialize.h"
#include "core/tipsy_service.h"
#include "ha/snapshot.h"
#include "topo/generator.h"
#include "util/status.h"

namespace tipsy {
namespace {

// ---------------------------------------------------------------- fixtures

pipeline::AggRow MakeRow(std::uint32_t f, std::uint32_t link,
                         util::HourIndex hour, std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = util::AsId{100 + f};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(f << 8), 24);
  row.src_metro = util::MetroId{f % 2};
  row.dest_region = util::RegionId{f % 3};
  row.dest_service =
      f % 2 == 0 ? wan::ServiceType::kWeb : wan::ServiceType::kStorage;
  row.dest_prefix = util::PrefixId{1 + f % 3};
  row.bytes = bytes;
  row.hour = hour;
  return row;
}

std::string ServiceBytes(const core::TipsyService* service) {
  if (service == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*service, out);
  return out.str();
}

struct IncrementalFixture {
  IncrementalFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  // A small but non-trivial hour: several tuples, link choice rotating
  // with the hour so day shards genuinely differ from each other.
  [[nodiscard]] std::vector<pipeline::AggRow> HourRows(
      util::HourIndex hour) const {
    std::vector<pipeline::AggRow> rows;
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (std::uint32_t f = 0; f < 5; ++f) {
      rows.push_back(MakeRow(f, (f + static_cast<std::uint32_t>(hour)) % links,
                             hour, 500 + 13 * f + 7 * hour));
    }
    return rows;
  }

  [[nodiscard]] core::DailyRetrainer MakeRetrainer(
      int window_days, bool incremental,
      core::TipsyConfig config = {}) const {
    core::RetrainPolicy policy;
    policy.incremental_retrain = incremental;
    return core::DailyRetrainer(&wan, &topology.metros, window_days, config,
                                policy);
  }

  [[nodiscard]] core::DailyRetrainer MakeRetrainer(
      int window_days, core::RetrainPolicy policy) const {
    return core::DailyRetrainer(&wan, &topology.metros, window_days, {},
                                policy);
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

// Drives an incremental and a full-rebuild retrainer through the same
// event stream, asserting bit-identical serving + health after every
// event. Events: ingest of HourRows(hour), or a bare heartbeat.
struct Event {
  util::HourIndex hour = 0;
  bool heartbeat = false;
};

void RunLockstep(const IncrementalFixture& fixture, int window_days,
                 const std::vector<Event>& events) {
  auto incremental = fixture.MakeRetrainer(window_days, true);
  auto full = fixture.MakeRetrainer(window_days, false);
  ASSERT_TRUE(incremental.incremental_enabled());
  ASSERT_FALSE(full.incremental_enabled());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    if (event.heartbeat) {
      incremental.AdvanceTo(event.hour);
      full.AdvanceTo(event.hour);
    } else {
      const auto rows = fixture.HourRows(event.hour);
      incremental.Ingest(event.hour, rows);
      full.Ingest(event.hour, rows);
    }
    ASSERT_EQ(ServiceBytes(incremental.current()),
              ServiceBytes(full.current()))
        << "diverged after event " << i << " (hour " << event.hour << ")";
    ASSERT_EQ(incremental.health_snapshot(), full.health_snapshot())
        << "health diverged after event " << i;
  }
  // Every successful retrain of the incremental retrainer took the
  // incremental path, and the window aggregate never had to self-heal.
  EXPECT_EQ(incremental.incremental_retrains(), incremental.retrain_count());
  EXPECT_EQ(incremental.incremental_rebuilds(), 0u);
  EXPECT_GT(incremental.retrain_count(), 0u);
}

std::vector<Event> InOrderHours(util::HourIndex begin, util::HourIndex end) {
  std::vector<Event> events;
  for (util::HourIndex h = begin; h < end; ++h) events.push_back({h, false});
  return events;
}

// --------------------------------------------------- count table algebra

TEST(TupleCountTable, MergeMatchesSerialAdd) {
  IncrementalFixture fixture;
  core::TupleCountTable serial(core::FeatureSet::kAP);
  core::TupleCountTable first(core::FeatureSet::kAP);
  core::TupleCountTable second(core::FeatureSet::kAP);
  for (util::HourIndex h = 0; h < 48; ++h) {
    for (const auto& row : fixture.HourRows(h)) {
      serial.Add(row);
      (h < 24 ? first : second).Add(row);
    }
  }
  core::TupleCountTable merged = first;
  merged.Merge(second);
  EXPECT_TRUE(merged.SameCounts(serial));
  // Merge appends links in first-seen order, exactly like the serial
  // pass, so even the exported link order is identical.
  const auto a = merged.Export();
  const auto b = serial.Export();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
    ASSERT_EQ(a[i].links.size(), b[i].links.size());
    for (std::size_t j = 0; j < a[i].links.size(); ++j) {
      EXPECT_EQ(a[i].links[j].link, b[i].links[j].link);
      EXPECT_EQ(a[i].links[j].bytes, b[i].links[j].bytes);
    }
  }
}

TEST(TupleCountTable, SubtractInvertsMergeAndErasesZeros) {
  IncrementalFixture fixture;
  core::TupleCountTable day1(core::FeatureSet::kAL);
  core::TupleCountTable day2(core::FeatureSet::kAL);
  for (util::HourIndex h = 0; h < 24; ++h) {
    for (const auto& row : fixture.HourRows(h)) day1.Add(row);
  }
  for (util::HourIndex h = 24; h < 48; ++h) {
    for (const auto& row : fixture.HourRows(h)) day2.Add(row);
  }
  core::TupleCountTable window = day1;
  window.Merge(day2);
  ASSERT_TRUE(window.Subtract(day1).ok());
  // Exactly day2 remains: every day1-only link and tuple hit 0.0 and was
  // erased, none of day2's mass was touched.
  EXPECT_TRUE(window.SameCounts(day2));
  EXPECT_EQ(window.tuple_count(), day2.tuple_count());
}

TEST(TupleCountTable, SubtractingUnknownMassIsTypedAndNonDestructive) {
  IncrementalFixture fixture;
  core::TupleCountTable table(core::FeatureSet::kA);
  for (const auto& row : fixture.HourRows(3)) table.Add(row);
  const auto before = table.Export();

  // A tuple this table never saw.
  core::TupleCountTable foreign(core::FeatureSet::kA);
  foreign.Add(MakeRow(99, 0, 3, 1000));
  const auto unknown = table.Subtract(foreign);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), util::StatusCode::kInvalidArgument);

  // A known tuple with more byte mass than the table holds (underflow).
  core::TupleCountTable doubled(core::FeatureSet::kA);
  for (const auto& row : fixture.HourRows(3)) {
    doubled.Add(row);
    doubled.Add(row);
  }
  const auto underflow = table.Subtract(doubled);
  ASSERT_FALSE(underflow.ok());
  EXPECT_EQ(underflow.code(), util::StatusCode::kInvalidArgument);

  // Both failures validated before mutating: the table is untouched.
  const auto after = table.Export();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].total_bytes, before[i].total_bytes);
  }
}

TEST(TupleCountTable, ExportRoundTrips) {
  IncrementalFixture fixture;
  core::TupleCountTable table(core::FeatureSet::kAP);
  for (util::HourIndex h = 0; h < 24; ++h) {
    for (const auto& row : fixture.HourRows(h)) table.Add(row);
  }
  const auto restored = core::TupleCountTable::FromExport(
      core::FeatureSet::kAP, true, table.Export());
  EXPECT_TRUE(restored.SameCounts(table));
  EXPECT_EQ(restored.tuple_count(), table.tuple_count());
}

TEST(DayShard, BuildMatchesIncrementalAddRows) {
  IncrementalFixture fixture;
  core::DayShard incremental;
  incremental.day = 0;
  std::vector<pipeline::AggRow> all;
  for (util::HourIndex h = 0; h < 24; ++h) {
    const auto rows = fixture.HourRows(h);
    incremental.AddRows(rows);
    all.insert(all.end(), rows.begin(), rows.end());
  }
  const auto built = core::DayShard::Build(0, all);
  EXPECT_EQ(built.row_count, incremental.row_count);
  EXPECT_TRUE(built.tables.a.SameCounts(incremental.tables.a));
  EXPECT_TRUE(built.tables.ap.SameCounts(incremental.tables.ap));
  EXPECT_TRUE(built.tables.al.SameCounts(incremental.tables.al));
}

// ------------------------------------------- retrainer window edge cases

TEST(IncrementalRetrain, BitIdenticalAtEveryBoundaryThroughWindowTurnover) {
  IncrementalFixture fixture;
  // 10 days through a 3-day window: the ring fills, then turns over seven
  // times, exercising merge-newest + subtract-expired on most boundaries.
  RunLockstep(fixture, /*window_days=*/3, InOrderHours(0, 240));
}

TEST(IncrementalRetrain, ColdStartWindowShorterThanHorizon) {
  IncrementalFixture fixture;
  // Only 4 days into a 21-day window: every boundary merges, nothing has
  // expired yet, and the early-window models must still match.
  RunLockstep(fixture, /*window_days=*/21, InOrderHours(0, 96));
}

TEST(IncrementalRetrain, DuplicateHourRedeliveryStaysIdentical) {
  IncrementalFixture fixture;
  // A journal replay that overlaps the live stream re-delivers hours at
  // the ingest clock; the retrainer accepts them (not behind the clock),
  // so both paths must double-count identically.
  std::vector<Event> events;
  for (util::HourIndex h = 0; h < 72; ++h) {
    events.push_back({h, false});
    if (h % 10 == 9) events.push_back({h, false});  // duplicate delivery
  }
  RunLockstep(fixture, /*window_days=*/3, events);
}

TEST(IncrementalRetrain, OutOfOrderAndGappedDaysStayIdentical) {
  IncrementalFixture fixture;
  std::vector<Event> events;
  for (util::HourIndex h = 0; h < 48; ++h) events.push_back({h, false});
  events.push_back({20, false});   // late replay from day 0: dropped
  for (util::HourIndex h = 96; h < 120; ++h) {
    events.push_back({h, false});  // days 2-3 never arrive (collector gap)
  }
  events.push_back({50, false});   // late replay from the gap: dropped
  events.push_back({130, true});   // heartbeat crosses a boundary, no data
  for (util::HourIndex h = 144; h < 192; ++h) events.push_back({h, false});
  RunLockstep(fixture, /*window_days=*/3, events);
}

TEST(IncrementalRetrain, NaiveBayesConfigFallsBackToFullRebuild) {
  IncrementalFixture fixture;
  core::TipsyConfig config;
  config.train_naive_bayes = true;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true, config);
  // Naive Bayes is trained from the buffered rows only; the policy flag
  // must not put a NB-configured retrainer on the incremental path.
  EXPECT_FALSE(retrainer.incremental_enabled());
  for (util::HourIndex h = 0; h < 72; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  EXPECT_NE(retrainer.current(), nullptr);
  EXPECT_GT(retrainer.retrain_count(), 0u);
  EXPECT_EQ(retrainer.incremental_retrains(), 0u);
}

// ------------------------------------------------- snapshot warm starts

// Runs `hours` of in-order ingest and returns the retrainer's state.
core::RetrainerState TrainedState(const IncrementalFixture& fixture,
                                  core::DailyRetrainer& retrainer,
                                  util::HourIndex hours) {
  for (util::HourIndex h = 0; h < hours; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  return retrainer.ExportState();
}

TEST(IncrementalSnapshot, V2RoundTripsDayShardsExactly) {
  IncrementalFixture fixture;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  // 100 hours: mid-day handoff, so the newest day's shard is unfolded.
  state.retrainer = TrainedState(fixture, retrainer, 100);
  state.applied_seq = 100;

  const std::string bytes = ha::EncodeSnapshot(state);
  auto decoded = ha::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->retrainer.days.size(), state.retrainer.days.size());
  for (std::size_t i = 0; i < state.retrainer.days.size(); ++i) {
    const auto& original = state.retrainer.days[i];
    const auto& restored = decoded->retrainer.days[i];
    EXPECT_EQ(restored.shard_row_count, original.rows.size());
    ASSERT_EQ(restored.shard_ap.size(), original.shard_ap.size());
    for (std::size_t t = 0; t < original.shard_ap.size(); ++t) {
      EXPECT_EQ(restored.shard_ap[t].key, original.shard_ap[t].key);
      EXPECT_EQ(restored.shard_ap[t].total_bytes,
                original.shard_ap[t].total_bytes);
      ASSERT_EQ(restored.shard_ap[t].links.size(),
                original.shard_ap[t].links.size());
      for (std::size_t l = 0; l < original.shard_ap[t].links.size(); ++l) {
        EXPECT_EQ(restored.shard_ap[t].links[l].link,
                  original.shard_ap[t].links[l].link);
        EXPECT_EQ(restored.shard_ap[t].links[l].bytes,
                  original.shard_ap[t].links[l].bytes);
      }
    }
  }
  // Re-encoding the decoded state reproduces the snapshot byte for byte.
  EXPECT_EQ(ha::EncodeSnapshot(*decoded), bytes);
}

// Warm-starts a fresh retrainer from `bytes` and runs it lockstep against
// the uninterrupted original for two more days of ingest.
void ContinueBitIdentically(const IncrementalFixture& fixture,
                            core::DailyRetrainer& original,
                            const std::string& bytes,
                            util::HourIndex resume_hour) {
  auto decoded = ha::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto restored = fixture.MakeRetrainer(/*window_days=*/3, true);
  ASSERT_TRUE(restored.RestoreState(decoded->retrainer).ok());
  ASSERT_EQ(ServiceBytes(restored.current()),
            ServiceBytes(original.current()));
  for (util::HourIndex h = resume_hour; h < resume_hour + 48; ++h) {
    const auto rows = fixture.HourRows(h);
    original.Ingest(h, rows);
    restored.Ingest(h, rows);
    ASSERT_EQ(ServiceBytes(restored.current()),
              ServiceBytes(original.current()))
        << "diverged at hour " << h;
    ASSERT_EQ(restored.health_snapshot(), original.health_snapshot());
  }
  // The warm-started replica is on the incremental path, not silently
  // re-aggregating the window each boundary.
  EXPECT_TRUE(restored.incremental_enabled());
  EXPECT_GT(restored.incremental_retrains(), 0u);
  EXPECT_EQ(restored.incremental_rebuilds(), 0u);
}

TEST(IncrementalSnapshot, WarmStartContinuesIncrementally) {
  IncrementalFixture fixture;
  auto original = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, original, 100);
  ContinueBitIdentically(fixture, original, ha::EncodeSnapshot(state), 100);
}

TEST(IncrementalSnapshot, V1SnapshotRebuildsShardsBitIdentically) {
  IncrementalFixture fixture;
  auto original = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, original, 100);
  // A v1 snapshot (pre-shard format) carries rows only; restore rebuilds
  // every day shard from them and the replica continues incrementally,
  // bit-identical to the exporter.
  const std::string v1 = ha::EncodeSnapshot(state, /*format_version=*/1);
  auto decoded = ha::DecodeSnapshot(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  for (const auto& day : decoded->retrainer.days) {
    EXPECT_EQ(day.shard_row_count, 0u);
    EXPECT_TRUE(day.shard_a.empty());
    EXPECT_TRUE(day.shard_ap.empty());
    EXPECT_TRUE(day.shard_al.empty());
  }
  ContinueBitIdentically(fixture, original, v1, 100);
}

TEST(IncrementalSnapshot, HostileShardLengthsAreRejectedWithoutAllocating) {
  IncrementalFixture fixture;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, retrainer, 30);
  const std::string bytes = ha::EncodeSnapshot(state);
  ASSERT_TRUE(ha::DecodeSnapshot(bytes).ok());
  // Truncating inside the shard section must be caught (the CRC no longer
  // matches the shortened payload) - typed, not a crash or a bad alloc.
  for (std::size_t cut = 1; cut <= 64; cut += 7) {
    auto truncated = ha::DecodeSnapshot(bytes.substr(0, bytes.size() - cut));
    ASSERT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.status().code(), util::StatusCode::kTruncated);
  }
}

// ------------------------------------------- decayed window aggregate

core::RetrainPolicy DecayPolicy(double half_life_days) {
  core::RetrainPolicy policy;
  policy.incremental_retrain = true;
  policy.decay_half_life_days = half_life_days;
  return policy;
}

// The canonical fold the decayed aggregate is DEFINED to equal
// (core/online.h): days ascending, bring the aggregate to the incoming
// day's decay generation before merging, final decay to now_day's
// generation, with now_day's own rows overlaid unfolded. Floor-halving
// is not distributive over merge, so this fold order IS the reference -
// the retrainer must reproduce it from incremental state at every
// boundary. All days ever ingested participate: decay mode never
// subtracts, expired day buffers only fall off the ring.
std::string DecayReference(
    const IncrementalFixture& fixture,
    const std::map<util::HourIndex, std::vector<pipeline::AggRow>>& days,
    util::HourIndex now_day, double half_life_days) {
  const auto half_life_hours =
      std::max<std::int64_t>(1, std::llround(half_life_days * 24.0));
  const auto generation = [&](util::HourIndex day) {
    return static_cast<std::int64_t>(day) * 24 / half_life_hours;
  };
  core::ShardTables window;
  std::int64_t folded_generation = 0;
  core::ShardTables overlay_tables;
  const core::ShardTables* overlay = nullptr;
  for (const auto& [day, rows] : days) {
    if (day < now_day) {
      window.Decay(static_cast<int>(generation(day) - folded_generation));
      folded_generation = generation(day);
      window.Merge(core::DayShard::Build(day, rows).tables);
    } else if (day == now_day) {
      overlay_tables = core::DayShard::Build(day, rows).tables;
      overlay = &overlay_tables;
    }
  }
  window.Decay(
      static_cast<int>(generation(now_day) - folded_generation));
  const auto service = core::TipsyService::FromWindowCounts(
      &fixture.wan, &fixture.topology.metros, core::TipsyConfig{}, window,
      overlay);
  return ServiceBytes(service.get());
}

// Streams `hours` of in-order ingest through a decayed retrainer,
// checking every published model against the canonical fold. Publishes
// are detected by retrain_count(): the cadence is day-granular
// (a mid-day explicit retrain consumes the day, so the next boundary is
// a deliberate no-op), so the checks key off actual publishes rather
// than assuming one per boundary. A publish inside Ingest(h) ran before
// hour h's rows were buffered, with the ingest clock still on the
// previous hour; an explicit TryRetrain after Ingest(h) sees hour h.
void RunDecayLockstep(const IncrementalFixture& fixture, int window_days,
                      double half_life_days, util::HourIndex hours) {
  auto retrainer =
      fixture.MakeRetrainer(window_days, DecayPolicy(half_life_days));
  ASSERT_TRUE(retrainer.decay_enabled());
  std::map<util::HourIndex, std::vector<pipeline::AggRow>> all_days;
  std::uint64_t published = 0;
  std::size_t publishes_checked = 0;
  for (util::HourIndex h = 0; h < hours; ++h) {
    const auto rows = fixture.HourRows(h);
    retrainer.Ingest(h, rows);
    if (retrainer.retrain_count() != published) {
      published = retrainer.retrain_count();
      ++publishes_checked;
      ASSERT_EQ(ServiceBytes(retrainer.current()),
                DecayReference(fixture, all_days, util::DayIndex(h - 1),
                               half_life_days))
          << "diverged from the canonical fold at hour " << h;
    }
    auto& day_rows = all_days[util::DayIndex(h)];
    day_rows.insert(day_rows.end(), rows.begin(), rows.end());
    if (util::DayIndex(h) % 3 == 1 && h % util::kHoursPerDay == 11) {
      // Mid-day explicit retrain: today's partial rows (hour h included,
      // the open slot folds at retrain entry) ride as overlay. NoData is
      // legitimate when an hourly retry already consumed today's data
      // and no half-life boundary has passed since.
      const std::string before = ServiceBytes(retrainer.current());
      const auto status = retrainer.TryRetrain();
      if (status.ok()) {
        published = retrainer.retrain_count();
        ++publishes_checked;
        ASSERT_EQ(ServiceBytes(retrainer.current()),
                  DecayReference(fixture, all_days, util::DayIndex(h),
                                 half_life_days))
            << "mid-day overlay diverged at hour " << h;
      } else {
        ASSERT_EQ(status.code(), util::StatusCode::kNoData)
            << "hour " << h << ": " << status.ToString();
        ASSERT_EQ(ServiceBytes(retrainer.current()), before);
      }
    }
  }
  EXPECT_GT(publishes_checked, 4u);
  EXPECT_EQ(retrainer.incremental_rebuilds(), 0u);
}

TEST(DecayedRetrain, MatchesCanonicalFoldAtEveryBoundary) {
  IncrementalFixture fixture;
  // 10 days, half-life 2 days, 3-day ring: several halving boundaries
  // and several ring turnovers (whose decayed residue must persist).
  RunDecayLockstep(fixture, /*window_days=*/3, /*half_life_days=*/2.0,
                   /*hours=*/240);
}

TEST(DecayedRetrain, SubDayHalfLifeHalvesMultiplePerBoundary) {
  IncrementalFixture fixture;
  // Half-life 6 hours: every day boundary advances four generations, so
  // each fold step applies multiple exact halvings at once.
  RunDecayLockstep(fixture, /*window_days=*/3, /*half_life_days=*/0.25,
                   /*hours=*/120);
}

TEST(DecayedRetrain, HalvingBoundaryAloneRefreshesTheModel) {
  IncrementalFixture fixture;
  auto retrainer =
      fixture.MakeRetrainer(/*window_days=*/3, DecayPolicy(1.0));
  for (util::HourIndex h = 0; h < 49; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  // Catch up through the newest (partial) day, then verify idempotence:
  // same data, same decay generation, nothing to rebuild.
  ASSERT_TRUE(retrainer.TryRetrain().ok());
  const std::string before = ServiceBytes(retrainer.current());
  ASSERT_EQ(retrainer.TryRetrain().code(), util::StatusCode::kNoData);
  EXPECT_EQ(ServiceBytes(retrainer.current()), before);
  // Two days of heartbeat-only clock progress cross two half-life
  // boundaries: with no new data at all, a retrain must still publish -
  // the aggregate halves, which IS a model change.
  retrainer.AdvanceTo(97);
  ASSERT_TRUE(retrainer.TryRetrain().ok());
  EXPECT_NE(ServiceBytes(retrainer.current()), before);
}

// ---------------------------------------------------- drift detection

core::RetrainPolicy DriftPolicy(bool incremental) {
  core::RetrainPolicy policy;
  policy.incremental_retrain = incremental;
  policy.drift_detection = true;
  policy.drift_warmup_hours = 4;
  policy.drift_window_hours = 2;
  policy.drift_baseline_hours = 24;
  policy.drift_accuracy_drop = 0.2;
  policy.drift_distribution_threshold = 0.3;
  policy.drift_consecutive_hours = 2;
  policy.drift_cooldown_hours = 4;
  policy.drift_min_hour_flows = 1;
  return policy;
}

// A stationary regime: the same tuples on the same links with the same
// byte mix every hour, so a model trained on it scores top-1 accuracy 1
// and the hourly link shares never move.
std::vector<pipeline::AggRow> StableRows(util::HourIndex hour) {
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t f = 0; f < 5; ++f) {
    rows.push_back(MakeRow(f, f % 4, hour, 1000 + 100 * f));
  }
  return rows;
}

// The regime after a shift: the same tuples ingress entirely different
// links with a rebalanced byte mix, so both drift signals (top-1
// accuracy collapse, link-share TV distance) fire.
std::vector<pipeline::AggRow> ShiftedRows(const IncrementalFixture& fixture,
                                          util::HourIndex hour) {
  const auto links = static_cast<std::uint32_t>(fixture.wan.link_count());
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t f = 0; f < 5; ++f) {
    rows.push_back(MakeRow(f, (f % 4 + 4) % links, hour, 5000 - 700 * f));
  }
  return rows;
}

TEST(DriftDetection, CollectorOutageNeverFires) {
  IncrementalFixture fixture;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3,
                                         DriftPolicy(/*incremental=*/true));
  ASSERT_TRUE(retrainer.drift_enabled());
  // Three stationary days: the baseline forms, nothing arms.
  for (util::HourIndex h = 0; h < 72; ++h) {
    retrainer.Ingest(h, StableRows(h));
  }
  ASSERT_EQ(retrainer.drift_state(), core::DriftState::kStable);
  ASSERT_EQ(retrainer.drift_events(), 0u);
  // The first heartbeat completes (and scores) the final fed hour;
  // every silent hour after that must leave the scored count alone.
  retrainer.AdvanceTo(72);
  const std::uint64_t scored_before =
      retrainer.ExportState().drift.hours_scored;
  ASSERT_GT(scored_before, 0u);

  // Three days of total collector darkness: heartbeats advance the
  // clock (the model ages toward STALE honestly) but empty hours are
  // skipped entirely - an outage is not evidence the traffic shifted,
  // and a detector scoring silence as 0% accuracy would page on every
  // feed interruption.
  for (util::HourIndex h = 73; h < 144; ++h) {
    retrainer.AdvanceTo(h);
  }
  EXPECT_EQ(retrainer.drift_state(), core::DriftState::kStable);
  EXPECT_EQ(retrainer.drift_events(), 0u);
  EXPECT_EQ(retrainer.ExportState().drift.hours_scored, scored_before);

  // The feed returns with the same regime: still no drift.
  for (util::HourIndex h = 144; h < 168; ++h) {
    retrainer.Ingest(h, StableRows(h));
  }
  EXPECT_EQ(retrainer.drift_state(), core::DriftState::kStable);
  EXPECT_EQ(retrainer.drift_events(), 0u);
}

TEST(DriftDetection, RegimeShiftTriggersEarlyRetrainAndLockstepHolds) {
  IncrementalFixture fixture;
  // The incremental and full-rebuild retrainers run the same drift
  // policy through the same shift; serving and health (including the
  // drift dimension) must stay bit-identical through the trigger, the
  // shrink-window early retrain, and the cooldown.
  auto incremental = fixture.MakeRetrainer(/*window_days=*/6,
                                           DriftPolicy(true));
  auto full = fixture.MakeRetrainer(/*window_days=*/6, DriftPolicy(false));
  const auto step = [&](util::HourIndex hour,
                        const std::vector<pipeline::AggRow>& rows) {
    incremental.Ingest(hour, rows);
    full.Ingest(hour, rows);
    ASSERT_EQ(ServiceBytes(incremental.current()),
              ServiceBytes(full.current()))
        << "diverged at hour " << hour;
    ASSERT_EQ(incremental.health_snapshot(), full.health_snapshot())
        << "health diverged at hour " << hour;
  };
  for (util::HourIndex h = 0; h < 72; ++h) step(h, StableRows(h));
  ASSERT_EQ(incremental.drift_state(), core::DriftState::kStable);
  ASSERT_EQ(incremental.drift_events(), 0u);

  // Mid-day regime shift: every flow relocates. Accuracy collapses and
  // the link shares move, so the armed streak completes within hours.
  for (util::HourIndex h = 72; h < 96; ++h) {
    step(h, ShiftedRows(fixture, h));
  }
  EXPECT_GE(incremental.drift_events(), 1u);
  EXPECT_GE(incremental.drift_early_retrains(), 1u);
  EXPECT_EQ(incremental.drift_events(), full.drift_events());
  EXPECT_EQ(incremental.drift_early_retrains(),
            full.drift_early_retrains());
  // The health surface carries the dimension the CMS gate consumes.
  const auto health = incremental.health_snapshot();
  EXPECT_GE(health.drift_events, 1u);
}

// ------------------------------------- decay + drift snapshot round trip

TEST(DecayedSnapshot, V3RoundTripsDecayAndDriftExactly) {
  IncrementalFixture fixture;
  auto policy = DriftPolicy(/*incremental=*/true);
  policy.decay_half_life_days = 1.5;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, policy);
  ha::SnapshotState state;
  // 100 hours: mid-day handoff with a seeded drift detector and a
  // decayed aggregate mid-generation.
  state.retrainer = TrainedState(fixture, retrainer, 100);
  ASSERT_TRUE(state.retrainer.has_drift);
  ASSERT_GT(state.retrainer.drift.hours_scored, 0u);

  const std::string bytes = ha::EncodeSnapshot(state);
  auto decoded = ha::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  // The decayed aggregate and the detector's EWMAs survive exactly -
  // doubles travel as raw IEEE-754 bits, counts as exact integers - so
  // re-encoding the decoded state reproduces the snapshot byte for byte.
  EXPECT_EQ(decoded->retrainer.decay_generation,
            state.retrainer.decay_generation);
  EXPECT_EQ(decoded->retrainer.drift.hours_scored,
            state.retrainer.drift.hours_scored);
  EXPECT_EQ(ha::EncodeSnapshot(*decoded), bytes);
}

TEST(DecayedSnapshot, WarmStartContinuesBitIdentically) {
  IncrementalFixture fixture;
  auto policy = DriftPolicy(/*incremental=*/true);
  policy.decay_half_life_days = 1.5;
  auto original = fixture.MakeRetrainer(/*window_days=*/3, policy);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, original, 100);

  auto decoded = ha::DecodeSnapshot(ha::EncodeSnapshot(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto restored = fixture.MakeRetrainer(/*window_days=*/3, policy);
  ASSERT_TRUE(restored.RestoreState(decoded->retrainer).ok());
  ASSERT_EQ(ServiceBytes(restored.current()),
            ServiceBytes(original.current()));
  // Two more days, crossing half-life generations and day boundaries:
  // the replica restored from the v3 snapshot evolves bit-identically,
  // decayed counts, drift EWMAs and all.
  for (util::HourIndex h = 100; h < 148; ++h) {
    const auto rows = fixture.HourRows(h);
    original.Ingest(h, rows);
    restored.Ingest(h, rows);
    ASSERT_EQ(ServiceBytes(restored.current()),
              ServiceBytes(original.current()))
        << "diverged at hour " << h;
    ASSERT_EQ(restored.health_snapshot(), original.health_snapshot())
        << "health diverged at hour " << h;
  }
  EXPECT_GT(restored.incremental_retrains(), 0u);
  EXPECT_EQ(restored.incremental_rebuilds(), 0u);
}

}  // namespace
}  // namespace tipsy
