// Incremental per-day-shard retraining (core/day_shard.h + the
// DailyRetrainer's window aggregate).
//
// The load-bearing property throughout is *bit-identity*: a retrainer
// maintaining mergeable day shards and refreshing the window by
// merge-newest / subtract-expired must serve, at every day boundary and
// after every ingest imperfection (duplicate re-delivery, out-of-order
// hours, day gaps, snapshot warm-start), exactly the model a from-scratch
// window rebuild serves - compared as core::SaveService bytes - and
// report exactly the same ServiceHealth.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/day_shard.h"
#include "core/online.h"
#include "core/serialize.h"
#include "ha/snapshot.h"
#include "topo/generator.h"
#include "util/status.h"

namespace tipsy {
namespace {

// ---------------------------------------------------------------- fixtures

pipeline::AggRow MakeRow(std::uint32_t f, std::uint32_t link,
                         util::HourIndex hour, std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = util::AsId{100 + f};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(f << 8), 24);
  row.src_metro = util::MetroId{f % 2};
  row.dest_region = util::RegionId{f % 3};
  row.dest_service =
      f % 2 == 0 ? wan::ServiceType::kWeb : wan::ServiceType::kStorage;
  row.dest_prefix = util::PrefixId{1 + f % 3};
  row.bytes = bytes;
  row.hour = hour;
  return row;
}

std::string ServiceBytes(const core::TipsyService* service) {
  if (service == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*service, out);
  return out.str();
}

struct IncrementalFixture {
  IncrementalFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  // A small but non-trivial hour: several tuples, link choice rotating
  // with the hour so day shards genuinely differ from each other.
  [[nodiscard]] std::vector<pipeline::AggRow> HourRows(
      util::HourIndex hour) const {
    std::vector<pipeline::AggRow> rows;
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (std::uint32_t f = 0; f < 5; ++f) {
      rows.push_back(MakeRow(f, (f + static_cast<std::uint32_t>(hour)) % links,
                             hour, 500 + 13 * f + 7 * hour));
    }
    return rows;
  }

  [[nodiscard]] core::DailyRetrainer MakeRetrainer(
      int window_days, bool incremental,
      core::TipsyConfig config = {}) const {
    core::RetrainPolicy policy;
    policy.incremental_retrain = incremental;
    return core::DailyRetrainer(&wan, &topology.metros, window_days, config,
                                policy);
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

// Drives an incremental and a full-rebuild retrainer through the same
// event stream, asserting bit-identical serving + health after every
// event. Events: ingest of HourRows(hour), or a bare heartbeat.
struct Event {
  util::HourIndex hour = 0;
  bool heartbeat = false;
};

void RunLockstep(const IncrementalFixture& fixture, int window_days,
                 const std::vector<Event>& events) {
  auto incremental = fixture.MakeRetrainer(window_days, true);
  auto full = fixture.MakeRetrainer(window_days, false);
  ASSERT_TRUE(incremental.incremental_enabled());
  ASSERT_FALSE(full.incremental_enabled());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& event = events[i];
    if (event.heartbeat) {
      incremental.AdvanceTo(event.hour);
      full.AdvanceTo(event.hour);
    } else {
      const auto rows = fixture.HourRows(event.hour);
      incremental.Ingest(event.hour, rows);
      full.Ingest(event.hour, rows);
    }
    ASSERT_EQ(ServiceBytes(incremental.current()),
              ServiceBytes(full.current()))
        << "diverged after event " << i << " (hour " << event.hour << ")";
    ASSERT_EQ(incremental.health_snapshot(), full.health_snapshot())
        << "health diverged after event " << i;
  }
  // Every successful retrain of the incremental retrainer took the
  // incremental path, and the window aggregate never had to self-heal.
  EXPECT_EQ(incremental.incremental_retrains(), incremental.retrain_count());
  EXPECT_EQ(incremental.incremental_rebuilds(), 0u);
  EXPECT_GT(incremental.retrain_count(), 0u);
}

std::vector<Event> InOrderHours(util::HourIndex begin, util::HourIndex end) {
  std::vector<Event> events;
  for (util::HourIndex h = begin; h < end; ++h) events.push_back({h, false});
  return events;
}

// --------------------------------------------------- count table algebra

TEST(TupleCountTable, MergeMatchesSerialAdd) {
  IncrementalFixture fixture;
  core::TupleCountTable serial(core::FeatureSet::kAP);
  core::TupleCountTable first(core::FeatureSet::kAP);
  core::TupleCountTable second(core::FeatureSet::kAP);
  for (util::HourIndex h = 0; h < 48; ++h) {
    for (const auto& row : fixture.HourRows(h)) {
      serial.Add(row);
      (h < 24 ? first : second).Add(row);
    }
  }
  core::TupleCountTable merged = first;
  merged.Merge(second);
  EXPECT_TRUE(merged.SameCounts(serial));
  // Merge appends links in first-seen order, exactly like the serial
  // pass, so even the exported link order is identical.
  const auto a = merged.Export();
  const auto b = serial.Export();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
    ASSERT_EQ(a[i].links.size(), b[i].links.size());
    for (std::size_t j = 0; j < a[i].links.size(); ++j) {
      EXPECT_EQ(a[i].links[j].link, b[i].links[j].link);
      EXPECT_EQ(a[i].links[j].bytes, b[i].links[j].bytes);
    }
  }
}

TEST(TupleCountTable, SubtractInvertsMergeAndErasesZeros) {
  IncrementalFixture fixture;
  core::TupleCountTable day1(core::FeatureSet::kAL);
  core::TupleCountTable day2(core::FeatureSet::kAL);
  for (util::HourIndex h = 0; h < 24; ++h) {
    for (const auto& row : fixture.HourRows(h)) day1.Add(row);
  }
  for (util::HourIndex h = 24; h < 48; ++h) {
    for (const auto& row : fixture.HourRows(h)) day2.Add(row);
  }
  core::TupleCountTable window = day1;
  window.Merge(day2);
  ASSERT_TRUE(window.Subtract(day1).ok());
  // Exactly day2 remains: every day1-only link and tuple hit 0.0 and was
  // erased, none of day2's mass was touched.
  EXPECT_TRUE(window.SameCounts(day2));
  EXPECT_EQ(window.tuple_count(), day2.tuple_count());
}

TEST(TupleCountTable, SubtractingUnknownMassIsTypedAndNonDestructive) {
  IncrementalFixture fixture;
  core::TupleCountTable table(core::FeatureSet::kA);
  for (const auto& row : fixture.HourRows(3)) table.Add(row);
  const auto before = table.Export();

  // A tuple this table never saw.
  core::TupleCountTable foreign(core::FeatureSet::kA);
  foreign.Add(MakeRow(99, 0, 3, 1000));
  const auto unknown = table.Subtract(foreign);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.code(), util::StatusCode::kInvalidArgument);

  // A known tuple with more byte mass than the table holds (underflow).
  core::TupleCountTable doubled(core::FeatureSet::kA);
  for (const auto& row : fixture.HourRows(3)) {
    doubled.Add(row);
    doubled.Add(row);
  }
  const auto underflow = table.Subtract(doubled);
  ASSERT_FALSE(underflow.ok());
  EXPECT_EQ(underflow.code(), util::StatusCode::kInvalidArgument);

  // Both failures validated before mutating: the table is untouched.
  const auto after = table.Export();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].total_bytes, before[i].total_bytes);
  }
}

TEST(TupleCountTable, ExportRoundTrips) {
  IncrementalFixture fixture;
  core::TupleCountTable table(core::FeatureSet::kAP);
  for (util::HourIndex h = 0; h < 24; ++h) {
    for (const auto& row : fixture.HourRows(h)) table.Add(row);
  }
  const auto restored = core::TupleCountTable::FromExport(
      core::FeatureSet::kAP, true, table.Export());
  EXPECT_TRUE(restored.SameCounts(table));
  EXPECT_EQ(restored.tuple_count(), table.tuple_count());
}

TEST(DayShard, BuildMatchesIncrementalAddRows) {
  IncrementalFixture fixture;
  core::DayShard incremental;
  incremental.day = 0;
  std::vector<pipeline::AggRow> all;
  for (util::HourIndex h = 0; h < 24; ++h) {
    const auto rows = fixture.HourRows(h);
    incremental.AddRows(rows);
    all.insert(all.end(), rows.begin(), rows.end());
  }
  const auto built = core::DayShard::Build(0, all);
  EXPECT_EQ(built.row_count, incremental.row_count);
  EXPECT_TRUE(built.tables.a.SameCounts(incremental.tables.a));
  EXPECT_TRUE(built.tables.ap.SameCounts(incremental.tables.ap));
  EXPECT_TRUE(built.tables.al.SameCounts(incremental.tables.al));
}

// ------------------------------------------- retrainer window edge cases

TEST(IncrementalRetrain, BitIdenticalAtEveryBoundaryThroughWindowTurnover) {
  IncrementalFixture fixture;
  // 10 days through a 3-day window: the ring fills, then turns over seven
  // times, exercising merge-newest + subtract-expired on most boundaries.
  RunLockstep(fixture, /*window_days=*/3, InOrderHours(0, 240));
}

TEST(IncrementalRetrain, ColdStartWindowShorterThanHorizon) {
  IncrementalFixture fixture;
  // Only 4 days into a 21-day window: every boundary merges, nothing has
  // expired yet, and the early-window models must still match.
  RunLockstep(fixture, /*window_days=*/21, InOrderHours(0, 96));
}

TEST(IncrementalRetrain, DuplicateHourRedeliveryStaysIdentical) {
  IncrementalFixture fixture;
  // A journal replay that overlaps the live stream re-delivers hours at
  // the ingest clock; the retrainer accepts them (not behind the clock),
  // so both paths must double-count identically.
  std::vector<Event> events;
  for (util::HourIndex h = 0; h < 72; ++h) {
    events.push_back({h, false});
    if (h % 10 == 9) events.push_back({h, false});  // duplicate delivery
  }
  RunLockstep(fixture, /*window_days=*/3, events);
}

TEST(IncrementalRetrain, OutOfOrderAndGappedDaysStayIdentical) {
  IncrementalFixture fixture;
  std::vector<Event> events;
  for (util::HourIndex h = 0; h < 48; ++h) events.push_back({h, false});
  events.push_back({20, false});   // late replay from day 0: dropped
  for (util::HourIndex h = 96; h < 120; ++h) {
    events.push_back({h, false});  // days 2-3 never arrive (collector gap)
  }
  events.push_back({50, false});   // late replay from the gap: dropped
  events.push_back({130, true});   // heartbeat crosses a boundary, no data
  for (util::HourIndex h = 144; h < 192; ++h) events.push_back({h, false});
  RunLockstep(fixture, /*window_days=*/3, events);
}

TEST(IncrementalRetrain, NaiveBayesConfigFallsBackToFullRebuild) {
  IncrementalFixture fixture;
  core::TipsyConfig config;
  config.train_naive_bayes = true;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true, config);
  // Naive Bayes is trained from the buffered rows only; the policy flag
  // must not put a NB-configured retrainer on the incremental path.
  EXPECT_FALSE(retrainer.incremental_enabled());
  for (util::HourIndex h = 0; h < 72; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  EXPECT_NE(retrainer.current(), nullptr);
  EXPECT_GT(retrainer.retrain_count(), 0u);
  EXPECT_EQ(retrainer.incremental_retrains(), 0u);
}

// ------------------------------------------------- snapshot warm starts

// Runs `hours` of in-order ingest and returns the retrainer's state.
core::RetrainerState TrainedState(const IncrementalFixture& fixture,
                                  core::DailyRetrainer& retrainer,
                                  util::HourIndex hours) {
  for (util::HourIndex h = 0; h < hours; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  return retrainer.ExportState();
}

TEST(IncrementalSnapshot, V2RoundTripsDayShardsExactly) {
  IncrementalFixture fixture;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  // 100 hours: mid-day handoff, so the newest day's shard is unfolded.
  state.retrainer = TrainedState(fixture, retrainer, 100);
  state.applied_seq = 100;

  const std::string bytes = ha::EncodeSnapshot(state);
  auto decoded = ha::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->retrainer.days.size(), state.retrainer.days.size());
  for (std::size_t i = 0; i < state.retrainer.days.size(); ++i) {
    const auto& original = state.retrainer.days[i];
    const auto& restored = decoded->retrainer.days[i];
    EXPECT_EQ(restored.shard_row_count, original.rows.size());
    ASSERT_EQ(restored.shard_ap.size(), original.shard_ap.size());
    for (std::size_t t = 0; t < original.shard_ap.size(); ++t) {
      EXPECT_EQ(restored.shard_ap[t].key, original.shard_ap[t].key);
      EXPECT_EQ(restored.shard_ap[t].total_bytes,
                original.shard_ap[t].total_bytes);
      ASSERT_EQ(restored.shard_ap[t].links.size(),
                original.shard_ap[t].links.size());
      for (std::size_t l = 0; l < original.shard_ap[t].links.size(); ++l) {
        EXPECT_EQ(restored.shard_ap[t].links[l].link,
                  original.shard_ap[t].links[l].link);
        EXPECT_EQ(restored.shard_ap[t].links[l].bytes,
                  original.shard_ap[t].links[l].bytes);
      }
    }
  }
  // Re-encoding the decoded state reproduces the snapshot byte for byte.
  EXPECT_EQ(ha::EncodeSnapshot(*decoded), bytes);
}

// Warm-starts a fresh retrainer from `bytes` and runs it lockstep against
// the uninterrupted original for two more days of ingest.
void ContinueBitIdentically(const IncrementalFixture& fixture,
                            core::DailyRetrainer& original,
                            const std::string& bytes,
                            util::HourIndex resume_hour) {
  auto decoded = ha::DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto restored = fixture.MakeRetrainer(/*window_days=*/3, true);
  ASSERT_TRUE(restored.RestoreState(decoded->retrainer).ok());
  ASSERT_EQ(ServiceBytes(restored.current()),
            ServiceBytes(original.current()));
  for (util::HourIndex h = resume_hour; h < resume_hour + 48; ++h) {
    const auto rows = fixture.HourRows(h);
    original.Ingest(h, rows);
    restored.Ingest(h, rows);
    ASSERT_EQ(ServiceBytes(restored.current()),
              ServiceBytes(original.current()))
        << "diverged at hour " << h;
    ASSERT_EQ(restored.health_snapshot(), original.health_snapshot());
  }
  // The warm-started replica is on the incremental path, not silently
  // re-aggregating the window each boundary.
  EXPECT_TRUE(restored.incremental_enabled());
  EXPECT_GT(restored.incremental_retrains(), 0u);
  EXPECT_EQ(restored.incremental_rebuilds(), 0u);
}

TEST(IncrementalSnapshot, WarmStartContinuesIncrementally) {
  IncrementalFixture fixture;
  auto original = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, original, 100);
  ContinueBitIdentically(fixture, original, ha::EncodeSnapshot(state), 100);
}

TEST(IncrementalSnapshot, V1SnapshotRebuildsShardsBitIdentically) {
  IncrementalFixture fixture;
  auto original = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, original, 100);
  // A v1 snapshot (pre-shard format) carries rows only; restore rebuilds
  // every day shard from them and the replica continues incrementally,
  // bit-identical to the exporter.
  const std::string v1 = ha::EncodeSnapshot(state, /*format_version=*/1);
  auto decoded = ha::DecodeSnapshot(v1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  for (const auto& day : decoded->retrainer.days) {
    EXPECT_EQ(day.shard_row_count, 0u);
    EXPECT_TRUE(day.shard_a.empty());
    EXPECT_TRUE(day.shard_ap.empty());
    EXPECT_TRUE(day.shard_al.empty());
  }
  ContinueBitIdentically(fixture, original, v1, 100);
}

TEST(IncrementalSnapshot, HostileShardLengthsAreRejectedWithoutAllocating) {
  IncrementalFixture fixture;
  auto retrainer = fixture.MakeRetrainer(/*window_days=*/3, true);
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, retrainer, 30);
  const std::string bytes = ha::EncodeSnapshot(state);
  ASSERT_TRUE(ha::DecodeSnapshot(bytes).ok());
  // Truncating inside the shard section must be caught (the CRC no longer
  // matches the shortened payload) - typed, not a crash or a bad alloc.
  for (std::size_t cut = 1; cut <= 64; cut += 7) {
    auto truncated = ha::DecodeSnapshot(bytes.substr(0, bytes.size() - cut));
    ASSERT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.status().code(), util::StatusCode::kTruncated);
  }
}

}  // namespace
}  // namespace tipsy
