// Persistence: model serialization round-trips and the data-lake row file
// format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/serialize.h"
#include "pipeline/storage.h"
#include "scenario/scenario.h"
#include "topo/generator.h"

namespace tipsy {
namespace {

core::FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                            std::uint32_t metro) {
  core::FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{0};
  flow.dest_service = wan::ServiceType::kWeb;
  return flow;
}

pipeline::AggRow MakeRow(const core::FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.dest_prefix = util::PrefixId{1};
  row.bytes = bytes;
  return row;
}

// ------------------------------------------------------- model save/load

TEST(ModelSerialization, RoundTripPreservesPredictions) {
  core::HistoricalModel model(core::FeatureSet::kAP, 8);
  for (std::uint32_t f = 0; f < 50; ++f) {
    for (std::uint32_t l = 0; l < 1 + f % 4; ++l) {
      model.Add(MakeRow(MakeFlow(f % 7, f, 3), l, (f + 1) * 100 + l));
    }
  }
  model.Finalize();

  std::stringstream buffer;
  core::SaveModel(model, buffer);
  const auto restored = core::LoadModel(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->feature_set(), core::FeatureSet::kAP);
  EXPECT_EQ(restored->tuple_count(), model.tuple_count());
  EXPECT_EQ(restored->max_links_per_tuple(), 8u);
  for (std::uint32_t f = 0; f < 50; ++f) {
    const auto flow = MakeFlow(f % 7, f, 3);
    const auto original = model.Predict(flow, 3, nullptr);
    const auto loaded = restored->Predict(flow, 3, nullptr);
    ASSERT_EQ(original.size(), loaded.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(original[i].link, loaded[i].link);
      EXPECT_DOUBLE_EQ(original[i].probability, loaded[i].probability);
    }
  }
}

TEST(ModelSerialization, RejectsGarbageAndTruncation) {
  std::stringstream garbage("not a model at all");
  const auto garbage_result = core::LoadModel(garbage);
  EXPECT_FALSE(garbage_result.ok());
  EXPECT_EQ(garbage_result.status().code(), util::StatusCode::kCorrupt);

  core::HistoricalModel model(core::FeatureSet::kA);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  model.Finalize();
  std::stringstream buffer;
  core::SaveModel(model, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 4));
  const auto truncated_result = core::LoadModel(truncated);
  EXPECT_FALSE(truncated_result.ok());
  EXPECT_EQ(truncated_result.status().code(), util::StatusCode::kTruncated);
}

TEST(ModelSerialization, EmptyModelRoundTrips) {
  core::HistoricalModel model(core::FeatureSet::kAL);
  model.Finalize();
  std::stringstream buffer;
  core::SaveModel(model, buffer);
  const auto restored = core::LoadModel(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->tuple_count(), 0u);
  EXPECT_TRUE(restored->Predict(MakeFlow(1, 2, 3), 3, nullptr).empty());
}

TEST(ServiceSerialization, BundleRoundTripsThroughDisk) {
  const auto topology = topo::GenerateTinyTopology();
  const wan::Wan wan(topology.peering_links,
                     topology.graph.node(topology.wan).presence, 8, 1);
  core::TipsyService service(&wan, &topology.metros);
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t f = 0; f < 30; ++f) {
    rows.push_back(MakeRow(MakeFlow(f % 5, f, f % 4),
                           f % static_cast<std::uint32_t>(wan.link_count()),
                           1000 + f));
  }
  service.Train(rows);
  service.FinalizeTraining();

  std::stringstream buffer;
  core::SaveService(service, buffer);
  const auto restored =
      core::LoadService(buffer, &wan, &topology.metros);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE((*restored)->trained());
  // The full registry (minus NB) is reconstructed.
  for (const char* name : {"Hist_A", "Hist_AP", "Hist_AL", "Hist_AL+G",
                           "Hist_AP/AL/A", "Hist_AL/AP/A"}) {
    EXPECT_NE((*restored)->Find(name), nullptr) << name;
  }
  // Identical predictions, including through the ensembles.
  for (std::uint32_t f = 0; f < 30; ++f) {
    const auto flow = MakeFlow(f % 5, f, f % 4);
    for (const char* name : {"Hist_AP", "Hist_AL+G", "Hist_AP/AL/A"}) {
      const auto original = service.Find(name)->Predict(flow, 3, nullptr);
      const auto loaded = (*restored)->Find(name)->Predict(flow, 3, nullptr);
      ASSERT_EQ(original.size(), loaded.size()) << name;
      for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(original[i].link, loaded[i].link);
        EXPECT_DOUBLE_EQ(original[i].probability, loaded[i].probability);
      }
    }
  }
}

// ------------------------------------------------------------- varints

TEST(Varint, RoundTripsBoundaryValues) {
  for (std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        (1ULL << 32) - 1, 1ULL << 32, ~0ULL}) {
    std::stringstream buffer;
    pipeline::PutVarint(buffer, value);
    const auto back = pipeline::GetVarint(buffer);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, value);
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::stringstream buffer;
  pipeline::PutVarint(buffer, 42);
  EXPECT_EQ(buffer.str().size(), 1u);
}

TEST(Varint, TruncatedInputFails) {
  std::stringstream buffer;
  pipeline::PutVarint(buffer, 1ULL << 40);
  std::stringstream truncated(buffer.str().substr(0, 2));
  EXPECT_FALSE(pipeline::GetVarint(truncated).has_value());
}

// -------------------------------------------------------------- row file

TEST(RowFile, RoundTripsHourBlocks) {
  std::vector<pipeline::AggRow> hour_a;
  std::vector<pipeline::AggRow> hour_b;
  for (std::uint32_t f = 0; f < 40; ++f) {
    hour_a.push_back(MakeRow(MakeFlow(f % 6, f, f % 5), f % 9, 500 + f));
    hour_b.push_back(MakeRow(MakeFlow(f % 6, f, f % 5), f % 7, 900 + f));
  }
  hour_a[3].src_metro = util::MetroId{};  // geoip miss survives the trip

  std::stringstream buffer;
  pipeline::RowFileWriter writer(buffer);
  writer.WriteHour(5, hour_a);
  writer.WriteHour(6, hour_b);
  EXPECT_EQ(writer.rows_written(), 80u);

  pipeline::RowFileReader reader(buffer);
  ASSERT_TRUE(reader.ok());
  const auto block_a = reader.ReadHour();
  ASSERT_TRUE(block_a.has_value());
  EXPECT_EQ(block_a->hour, 5);
  ASSERT_EQ(block_a->rows.size(), hour_a.size());
  // Compare as multisets of key fields + bytes.
  auto key = [](const pipeline::AggRow& row) {
    return std::tuple(row.link.value(), row.src_asn.value(),
                      row.src_prefix24, row.src_metro.value(),
                      row.dest_region.value(),
                      static_cast<int>(row.dest_service),
                      row.dest_prefix.value(), row.bytes);
  };
  std::vector<decltype(key(hour_a[0]))> expected, actual;
  for (const auto& row : hour_a) expected.push_back(key(row));
  for (const auto& row : block_a->rows) actual.push_back(key(row));
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(expected, actual);

  const auto block_b = reader.ReadHour();
  ASSERT_TRUE(block_b.has_value());
  EXPECT_EQ(block_b->hour, 6);
  EXPECT_EQ(block_b->rows.size(), hour_b.size());
  EXPECT_FALSE(reader.ReadHour().has_value());  // clean EOF
  EXPECT_TRUE(reader.ok());
}

TEST(RowFile, RejectsBadMagic) {
  std::stringstream buffer("bogus header bytes");
  pipeline::RowFileReader reader(buffer);
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.ReadHour().has_value());
}

TEST(RowFile, DetectsTruncation) {
  std::stringstream buffer;
  pipeline::RowFileWriter writer(buffer);
  writer.WriteHour(0, std::vector<pipeline::AggRow>{
                          MakeRow(MakeFlow(1, 2, 3), 0, 100)});
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 3));
  pipeline::RowFileReader reader(truncated);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(reader.ReadHour().has_value());
  EXPECT_FALSE(reader.ok());
}

TEST(RowFile, CompacterThanRawStructs) {
  // The varint format should beat sizeof(AggRow) comfortably on
  // realistic data.
  std::vector<pipeline::AggRow> rows;
  for (std::uint32_t f = 0; f < 1000; ++f) {
    rows.push_back(MakeRow(MakeFlow(f % 50, f, f % 30), f % 200,
                           1'000'000 + f * 4096));
  }
  std::stringstream buffer;
  pipeline::RowFileWriter writer(buffer);
  writer.WriteHour(0, rows);
  EXPECT_LT(buffer.str().size(), rows.size() * sizeof(pipeline::AggRow) / 2);
}

TEST(RowFile, TrainServiceFromFileMatchesLive) {
  // Offline training: write a scenario's rows to a "lake file", read it
  // back, train, and get byte-identical predictions.
  auto cfg = scenario::TinyScenarioConfig();
  cfg.traffic.flow_target = 500;
  scenario::Scenario world(cfg);
  std::stringstream lake;
  pipeline::RowFileWriter writer(lake);
  core::TipsyService live(&world.wan(), &world.metros());
  world.SimulateHours(
      {0, 48}, [&](util::HourIndex hour,
                   std::span<const pipeline::AggRow> rows) {
        writer.WriteHour(hour, rows);
        live.Train(rows);
      });
  live.FinalizeTraining();

  core::TipsyService offline(&world.wan(), &world.metros());
  pipeline::RowFileReader reader(lake);
  ASSERT_TRUE(reader.ok());
  while (auto block = reader.ReadHour()) {
    offline.Train(block->rows);
  }
  ASSERT_TRUE(reader.ok());
  offline.FinalizeTraining();

  for (std::size_t f = 0; f < 40; ++f) {
    const auto flow = world.FlowFeaturesOf(f);
    const auto a = live.Find("Hist_AP")->Predict(flow, 3, nullptr);
    const auto b = offline.Find("Hist_AP")->Predict(flow, 3, nullptr);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].link, b[i].link);
      EXPECT_DOUBLE_EQ(a[i].probability, b[i].probability);
    }
  }
}

}  // namespace
}  // namespace tipsy
