#include <gtest/gtest.h>

#include "core/ensemble.h"
#include "core/evaluator.h"
#include "core/geo_model.h"
#include "core/historical.h"
#include "core/naive_bayes.h"
#include "core/tipsy_service.h"
#include "topo/generator.h"
#include "util/parallel.h"

namespace tipsy::core {
namespace {

FlowFeatures MakeFlow(std::uint32_t asn, std::uint32_t prefix_block,
                      std::uint32_t metro, std::uint32_t region = 0,
                      wan::ServiceType service = wan::ServiceType::kWeb) {
  FlowFeatures flow;
  flow.src_asn = util::AsId{asn};
  flow.src_prefix24 =
      util::Ipv4Prefix(util::Ipv4Addr(prefix_block << 8), 24);
  flow.src_metro = util::MetroId{metro};
  flow.dest_region = util::RegionId{region};
  flow.dest_service = service;
  return flow;
}

pipeline::AggRow MakeRow(const FlowFeatures& flow, std::uint32_t link,
                         std::uint64_t bytes) {
  pipeline::AggRow row;
  row.hour = 0;
  row.link = util::LinkId{link};
  row.src_asn = flow.src_asn;
  row.src_prefix24 = flow.src_prefix24;
  row.src_metro = flow.src_metro;
  row.dest_region = flow.dest_region;
  row.dest_service = flow.dest_service;
  row.bytes = bytes;
  return row;
}

// ------------------------------------------------------------- features

TEST(Features, TupleKeysSeparateFeatureSets) {
  const auto flow = MakeFlow(1, 2, 3);
  EXPECT_NE(MakeTupleKey(FeatureSet::kA, flow),
            MakeTupleKey(FeatureSet::kAP, flow));
  EXPECT_NE(MakeTupleKey(FeatureSet::kAP, flow),
            MakeTupleKey(FeatureSet::kAL, flow));
}

TEST(Features, ATupleIgnoresPrefixAndLocation) {
  const auto a = MakeFlow(1, 2, 3);
  const auto b = MakeFlow(1, 99, 7);
  EXPECT_EQ(MakeTupleKey(FeatureSet::kA, a), MakeTupleKey(FeatureSet::kA, b));
  EXPECT_NE(MakeTupleKey(FeatureSet::kAP, a),
            MakeTupleKey(FeatureSet::kAP, b));
  EXPECT_NE(MakeTupleKey(FeatureSet::kAL, a),
            MakeTupleKey(FeatureSet::kAL, b));
}

TEST(Features, DestinationAlwaysInKey) {
  const auto a = MakeFlow(1, 2, 3, 0, wan::ServiceType::kWeb);
  const auto b = MakeFlow(1, 2, 3, 1, wan::ServiceType::kWeb);
  const auto c = MakeFlow(1, 2, 3, 0, wan::ServiceType::kStorage);
  for (auto fs : {FeatureSet::kA, FeatureSet::kAP, FeatureSet::kAL}) {
    EXPECT_NE(MakeTupleKey(fs, a), MakeTupleKey(fs, b));
    EXPECT_NE(MakeTupleKey(fs, a), MakeTupleKey(fs, c));
  }
}

TEST(Features, HasFeaturesRequiresLocationForAL) {
  auto flow = MakeFlow(1, 2, 3);
  EXPECT_TRUE(HasFeatures(FeatureSet::kAL, flow));
  flow.src_metro = util::MetroId{};
  EXPECT_FALSE(HasFeatures(FeatureSet::kAL, flow));
  EXPECT_TRUE(HasFeatures(FeatureSet::kA, flow));
  EXPECT_TRUE(HasFeatures(FeatureSet::kAP, flow));
}

// ------------------------------------------------------------ historical

TEST(HistoricalModel, ProbabilitiesAreByteFractions) {
  HistoricalModel model(FeatureSet::kAP);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 700));
  model.Add(MakeRow(flow, 1, 200));
  model.Add(MakeRow(flow, 2, 100));
  model.Finalize();
  const auto predictions = model.Predict(flow, 3, nullptr);
  ASSERT_EQ(predictions.size(), 3u);
  EXPECT_EQ(predictions[0].link, util::LinkId{0});
  EXPECT_DOUBLE_EQ(predictions[0].probability, 0.7);
  EXPECT_DOUBLE_EQ(predictions[1].probability, 0.2);
  EXPECT_DOUBLE_EQ(predictions[2].probability, 0.1);
}

TEST(HistoricalModel, RepeatedObservationsAccumulate) {
  HistoricalModel model(FeatureSet::kAP);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 100));
  model.Add(MakeRow(flow, 1, 150));
  model.Add(MakeRow(flow, 0, 100));
  model.Finalize();
  const auto predictions = model.Predict(flow, 1, nullptr);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].link, util::LinkId{0});  // 200 > 150
}

TEST(HistoricalModel, UnseenTupleHasNoPrediction) {
  HistoricalModel model(FeatureSet::kAP);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  model.Finalize();
  EXPECT_TRUE(model.Predict(MakeFlow(1, 99, 3), 3, nullptr).empty());
  EXPECT_FALSE(model.Knows(MakeFlow(1, 99, 3)));
  EXPECT_TRUE(model.Knows(MakeFlow(1, 2, 3)));
}

TEST(HistoricalModel, NoTransferAcrossTuples) {
  // The documented limitation: a link seen only for tuple X cannot be
  // predicted for tuple Y.
  HistoricalModel model(FeatureSet::kAP);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  model.Add(MakeRow(MakeFlow(1, 5, 3), 1, 100));
  model.Finalize();
  const auto predictions = model.Predict(MakeFlow(1, 2, 3), 3, nullptr);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].link, util::LinkId{0});
}

TEST(HistoricalModel, ALevelAggregatesAcrossPrefixes) {
  HistoricalModel model(FeatureSet::kA);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  model.Add(MakeRow(MakeFlow(1, 5, 4), 1, 300));
  model.Finalize();
  const auto predictions = model.Predict(MakeFlow(1, 77, 9), 2, nullptr);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
  EXPECT_DOUBLE_EQ(predictions[0].probability, 0.75);
}

TEST(HistoricalModel, ExclusionRenormalizesOverRemaining) {
  HistoricalModel model(FeatureSet::kAP);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 600));
  model.Add(MakeRow(flow, 1, 300));
  model.Add(MakeRow(flow, 2, 100));
  model.Finalize();
  ExclusionMask excluded(3, false);
  excluded[0] = true;
  const auto predictions = model.Predict(flow, 3, &excluded);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
  EXPECT_DOUBLE_EQ(predictions[0].probability, 0.75);
  EXPECT_DOUBLE_EQ(predictions[1].probability, 0.25);
}

TEST(HistoricalModel, AllLinksExcludedGivesEmpty) {
  HistoricalModel model(FeatureSet::kAP);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 100));
  model.Finalize();
  ExclusionMask excluded(1, true);
  EXPECT_TRUE(model.Predict(flow, 3, &excluded).empty());
}

TEST(HistoricalModel, MaxLinksPerTupleTruncatesRanking) {
  HistoricalModel model(FeatureSet::kAP, /*max_links_per_tuple=*/2);
  const auto flow = MakeFlow(1, 2, 3);
  for (std::uint32_t l = 0; l < 6; ++l) {
    model.Add(MakeRow(flow, l, 100 * (l + 1)));
  }
  model.Finalize();
  const auto predictions = model.Predict(flow, 10, nullptr);
  ASSERT_EQ(predictions.size(), 2u);
  EXPECT_EQ(predictions[0].link, util::LinkId{5});
  EXPECT_EQ(predictions[1].link, util::LinkId{4});
}

TEST(HistoricalModel, UnweightedModeCountsObservations) {
  HistoricalModel model(FeatureSet::kAP, 16, /*weight_by_bytes=*/false);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 1'000'000));  // one huge observation
  model.Add(MakeRow(flow, 1, 1));          // three tiny ones
  model.Add(MakeRow(flow, 1, 1));
  model.Add(MakeRow(flow, 1, 1));
  model.Finalize();
  const auto predictions = model.Predict(flow, 1, nullptr);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
}

TEST(HistoricalModel, KZeroGivesEmpty) {
  HistoricalModel model(FeatureSet::kAP);
  const auto flow = MakeFlow(1, 2, 3);
  model.Add(MakeRow(flow, 0, 100));
  model.Finalize();
  EXPECT_TRUE(model.Predict(flow, 0, nullptr).empty());
}

TEST(HistoricalModel, MemoryGrowsWithTuples) {
  HistoricalModel model(FeatureSet::kAP);
  model.Add(MakeRow(MakeFlow(1, 1, 1), 0, 1));
  model.Finalize();
  const auto small = model.MemoryFootprintBytes();
  HistoricalModel big(FeatureSet::kAP);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    big.Add(MakeRow(MakeFlow(1, i, 1), 0, 1));
  }
  big.Finalize();
  EXPECT_GT(big.MemoryFootprintBytes(), small * 100);
}

// ----------------------------------------------------------- naive bayes

TEST(NaiveBayes, LearnsClassPriorsAndLikelihoods) {
  NaiveBayesModel model(FeatureSet::kA);
  // AS 1 goes to link 0; AS 2 goes to link 1.
  for (int i = 0; i < 10; ++i) {
    model.Add(MakeRow(MakeFlow(1, i, 3), 0, 1000));
    model.Add(MakeRow(MakeFlow(2, i, 3), 1, 1000));
  }
  model.Finalize();
  const auto p1 = model.Predict(MakeFlow(1, 99, 5), 1, nullptr);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].link, util::LinkId{0});
  const auto p2 = model.Predict(MakeFlow(2, 99, 5), 1, nullptr);
  EXPECT_EQ(p2[0].link, util::LinkId{1});
}

TEST(NaiveBayes, GeneralizesAcrossTuplesUnlikeHistorical) {
  // A flow whose exact tuple was never seen, but whose AS and destination
  // each were: NB predicts, Hist does not.
  NaiveBayesModel nb(FeatureSet::kAL);
  HistoricalModel hist(FeatureSet::kAL);
  nb.Add(MakeRow(MakeFlow(1, 2, 3, 0), 0, 1000));
  nb.Add(MakeRow(MakeFlow(1, 2, 4, 1), 0, 1000));
  hist.Add(MakeRow(MakeFlow(1, 2, 3, 0), 0, 1000));
  hist.Add(MakeRow(MakeFlow(1, 2, 4, 1), 0, 1000));
  nb.Finalize();
  hist.Finalize();
  const auto unseen_combo = MakeFlow(1, 2, 3, 1);  // metro 3 x region 1
  EXPECT_FALSE(nb.Predict(unseen_combo, 1, nullptr).empty());
  EXPECT_TRUE(hist.Predict(unseen_combo, 1, nullptr).empty());
}

TEST(NaiveBayes, UnseenFeatureValueGivesNoPrediction) {
  NaiveBayesModel model(FeatureSet::kA);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 1000));
  model.Finalize();
  EXPECT_TRUE(model.Predict(MakeFlow(42, 2, 3), 1, nullptr).empty());
}

TEST(NaiveBayes, RespectsExclusions) {
  NaiveBayesModel model(FeatureSet::kA);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 900));
  model.Add(MakeRow(MakeFlow(1, 2, 3), 1, 100));
  model.Finalize();
  ExclusionMask excluded(2, false);
  excluded[0] = true;
  const auto predictions = model.Predict(MakeFlow(1, 2, 3), 2, &excluded);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
}

TEST(NaiveBayes, ProbabilitiesNormalizedOverTopK) {
  NaiveBayesModel model(FeatureSet::kA);
  model.Add(MakeRow(MakeFlow(1, 2, 3), 0, 500));
  model.Add(MakeRow(MakeFlow(1, 2, 3), 1, 300));
  model.Add(MakeRow(MakeFlow(1, 2, 3), 2, 200));
  model.Finalize();
  const auto predictions = model.Predict(MakeFlow(1, 2, 3), 3, nullptr);
  ASSERT_EQ(predictions.size(), 3u);
  double total = 0.0;
  for (const auto& p : predictions) total += p.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GE(predictions[0].probability, predictions[1].probability);
}

// -------------------------------------------------------------- ensemble

TEST(Ensemble, FallsThroughInOrder) {
  HistoricalModel ap(FeatureSet::kAP);
  HistoricalModel a(FeatureSet::kA);
  const auto seen = MakeFlow(1, 2, 3);
  const auto same_as_only = MakeFlow(1, 9, 3);
  ap.Add(MakeRow(seen, 0, 100));
  a.Add(MakeRow(seen, 1, 100));  // A-tuple covers both flows
  ap.Finalize();
  a.Finalize();
  SequentialEnsemble ensemble({&ap, &a}, "Hist_AP/A");
  // Seen flow answered by the first stage.
  auto predictions = ensemble.Predict(seen, 1, nullptr);
  ASSERT_FALSE(predictions.empty());
  EXPECT_EQ(predictions[0].link, util::LinkId{0});
  EXPECT_EQ(ensemble.last_stage(), 0);
  // AP miss falls through to A.
  predictions = ensemble.Predict(same_as_only, 1, nullptr);
  ASSERT_FALSE(predictions.empty());
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
  EXPECT_EQ(ensemble.last_stage(), 1);
  // Complete miss.
  EXPECT_TRUE(ensemble.Predict(MakeFlow(5, 5, 5), 1, nullptr).empty());
  EXPECT_EQ(ensemble.last_stage(), -1);
}

TEST(Ensemble, ExclusionTriggersFallthrough) {
  // If the first stage's only links are excluded, the next stage answers.
  HistoricalModel ap(FeatureSet::kAP);
  HistoricalModel a(FeatureSet::kA);
  const auto flow = MakeFlow(1, 2, 3);
  ap.Add(MakeRow(flow, 0, 100));
  a.Add(MakeRow(flow, 0, 100));
  a.Add(MakeRow(MakeFlow(1, 7, 4), 1, 100));
  ap.Finalize();
  a.Finalize();
  SequentialEnsemble ensemble({&ap, &a}, "Hist_AP/A");
  ExclusionMask excluded(2, false);
  excluded[0] = true;
  const auto predictions = ensemble.Predict(flow, 2, &excluded);
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].link, util::LinkId{1});
}

TEST(Ensemble, MemoryIsSumOfStages) {
  HistoricalModel ap(FeatureSet::kAP);
  HistoricalModel a(FeatureSet::kA);
  ap.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  a.Add(MakeRow(MakeFlow(1, 2, 3), 0, 100));
  ap.Finalize();
  a.Finalize();
  SequentialEnsemble ensemble({&ap, &a}, "e");
  EXPECT_EQ(ensemble.MemoryFootprintBytes(),
            ap.MemoryFootprintBytes() + a.MemoryFootprintBytes());
}

// ------------------------------------------------------------- geo model

class GeoModelTest : public ::testing::Test {
 protected:
  GeoModelTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
    // Find a peer ASN with >= 3 links for the fallback to rank.
    for (const auto& link : wan_->links()) {
      std::size_t count = 0;
      for (const auto& other : wan_->links()) {
        if (other.peer_asn == link.peer_asn) ++count;
      }
      if (count >= 3) {
        anchor_ = &link;
        break;
      }
    }
  }
  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
  const wan::PeeringLink* anchor_ = nullptr;
};

TEST_F(GeoModelTest, AppendsSamePeerLinksByDistance) {
  ASSERT_NE(anchor_, nullptr);
  HistoricalModel base(FeatureSet::kAL);
  const auto flow = MakeFlow(7, 2, 3);
  base.Add(MakeRow(flow, anchor_->id.value(), 100));
  base.Finalize();
  GeoAugmentedModel geo(&base, wan_.get(), &topology_.metros);
  // Base knows one link; ask for three.
  const auto predictions = geo.Predict(flow, 3, nullptr);
  ASSERT_EQ(predictions.size(), 3u);
  EXPECT_EQ(predictions[0].link, anchor_->id);
  // Appended links all belong to the anchor's peer AS and come in
  // distance order from the anchor metro.
  const auto expected = wan_->LinksOfAsnByDistance(
      anchor_->peer_asn, anchor_->metro, topology_.metros, anchor_->id);
  EXPECT_EQ(predictions[1].link, expected[0]);
  EXPECT_EQ(predictions[2].link, expected[1]);
  EXPECT_GT(predictions[1].probability, predictions[2].probability);
}

TEST_F(GeoModelTest, AnchorsOnExcludedBestMatch) {
  ASSERT_NE(anchor_, nullptr);
  HistoricalModel base(FeatureSet::kAL);
  const auto flow = MakeFlow(7, 2, 3);
  base.Add(MakeRow(flow, anchor_->id.value(), 100));
  base.Finalize();
  GeoAugmentedModel geo(&base, wan_.get(), &topology_.metros);
  ExclusionMask excluded(wan_->link_count(), false);
  excluded[anchor_->id.value()] = true;
  const auto predictions = geo.Predict(flow, 2, &excluded);
  // The base model has nothing left, but geography fills in starting
  // from the (excluded) historical best match.
  ASSERT_EQ(predictions.size(), 2u);
  for (const auto& p : predictions) {
    EXPECT_NE(p.link, anchor_->id);
    EXPECT_EQ(wan_->link(p.link).peer_asn, anchor_->peer_asn);
  }
}

TEST_F(GeoModelTest, UnknownFlowStaysUnknown) {
  HistoricalModel base(FeatureSet::kAL);
  base.Finalize();
  GeoAugmentedModel geo(&base, wan_.get(), &topology_.metros);
  EXPECT_TRUE(geo.Predict(MakeFlow(1, 2, 3), 3, nullptr).empty());
}

// -------------------------------------------------------------- evaluator

TEST(Evaluator, HandComputedAccuracy) {
  EvalSet eval;
  const auto f1 = MakeFlow(1, 2, 3);
  const auto f2 = MakeFlow(1, 5, 3);
  eval.AddObservation(f1, util::LinkId{0}, 80.0);
  eval.AddObservation(f1, util::LinkId{1}, 20.0);
  eval.AddObservation(f2, util::LinkId{2}, 100.0);
  eval.Finalize();

  HistoricalModel model(FeatureSet::kAP);
  model.Add(MakeRow(f1, 0, 1));  // right about f1's top link
  model.Add(MakeRow(f2, 1, 1));  // wrong about f2
  model.Finalize();
  const auto accuracy = EvaluateModel(model, eval);
  // Top-1 credit: 80 of 200 bytes.
  EXPECT_NEAR(accuracy.top1(), 0.4, 1e-12);
  EXPECT_NEAR(accuracy.top3(), 0.4, 1e-12);
}

TEST(Evaluator, OracleIsPerfectWithEnoughK) {
  EvalSet eval;
  const auto f1 = MakeFlow(1, 2, 3);
  eval.AddObservation(f1, util::LinkId{0}, 50.0);
  eval.AddObservation(f1, util::LinkId{1}, 30.0);
  eval.AddObservation(f1, util::LinkId{2}, 20.0);
  eval.Finalize();
  const auto curve = OracleAccuracyByK(FeatureSet::kAP, eval, 4);
  EXPECT_NEAR(curve[0], 0.5, 1e-12);
  EXPECT_NEAR(curve[1], 0.8, 1e-12);
  EXPECT_NEAR(curve[2], 1.0, 1e-12);
  EXPECT_NEAR(curve[3], 1.0, 1e-12);
}

TEST(Evaluator, OracleMonotoneInK) {
  EvalSet eval;
  for (std::uint32_t f = 0; f < 20; ++f) {
    for (std::uint32_t l = 0; l < 5; ++l) {
      eval.AddObservation(MakeFlow(1, f, 3), util::LinkId{l},
                          (f * 7 + l * 13) % 50 + 1.0);
    }
  }
  eval.Finalize();
  const auto curve = OracleAccuracyByK(FeatureSet::kAP, eval, 6);
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_GE(curve[k], curve[k - 1] - 1e-12);
  }
  EXPECT_NEAR(curve.back(), 1.0, 1e-9);
}

TEST(Evaluator, MaskInterningDeduplicates) {
  EvalSet eval;
  ExclusionMask m1(4, false);
  m1[2] = true;
  ExclusionMask m2(4, false);
  m2[2] = true;
  ExclusionMask m3(4, false);
  m3[3] = true;
  EXPECT_EQ(eval.InternMask(m1), eval.InternMask(m2));
  EXPECT_NE(eval.InternMask(m1), eval.InternMask(m3));
  EXPECT_EQ(eval.InternMask(ExclusionMask(4, false)), 0u);
}

TEST(Evaluator, MaskedCasesExcludeLinksFromModels) {
  EvalSet eval;
  ExclusionMask down(2, false);
  down[0] = true;
  const auto mask_id = eval.InternMask(down);
  const auto flow = MakeFlow(1, 2, 3);
  eval.AddObservation(flow, util::LinkId{1}, 100.0, mask_id);
  eval.Finalize();

  HistoricalModel model(FeatureSet::kAP);
  model.Add(MakeRow(flow, 0, 900));  // preferred link, but excluded
  model.Add(MakeRow(flow, 1, 100));
  model.Finalize();
  // With the mask applied, the model's first valid answer is link 1.
  EXPECT_NEAR(EvaluateModel(model, eval).top1(), 1.0, 1e-12);
}

TEST(Evaluator, SeparateCasesPerMask) {
  EvalSet eval;
  ExclusionMask down(2, false);
  down[0] = true;
  const auto mask_id = eval.InternMask(down);
  const auto flow = MakeFlow(1, 2, 3);
  eval.AddObservation(flow, util::LinkId{0}, 60.0, 0);
  eval.AddObservation(flow, util::LinkId{1}, 40.0, mask_id);
  eval.Finalize();
  EXPECT_EQ(eval.cases().size(), 2u);
  EXPECT_DOUBLE_EQ(eval.total_bytes(), 100.0);
}

// ---------------------------------------------------------- tipsy service

class TipsyServiceTest : public ::testing::Test {
 protected:
  TipsyServiceTest() : topology_(topo::GenerateTinyTopology()) {
    wan_ = std::make_unique<wan::Wan>(
        topology_.peering_links,
        topology_.graph.node(topology_.wan).presence, 8, 1);
  }
  topo::GeneratedTopology topology_;
  std::unique_ptr<wan::Wan> wan_;
};

TEST_F(TipsyServiceTest, RegistryHasAllPaperModels) {
  TipsyService tipsy(wan_.get(), &topology_.metros);
  tipsy.Train({});
  tipsy.FinalizeTraining();
  for (const char* name :
       {"Hist_A", "Hist_AP", "Hist_AL", "Hist_AL+G", "Hist_AP/AL/A",
        "Hist_AL/AP/A"}) {
    EXPECT_NE(tipsy.Find(name), nullptr) << name;
  }
  EXPECT_EQ(tipsy.Find("NB_A"), nullptr);  // not trained by default
  EXPECT_EQ(tipsy.Find("nope"), nullptr);
  EXPECT_EQ(tipsy.Best().name(), "Hist_AL+G");
}

TEST_F(TipsyServiceTest, NaiveBayesOptIn) {
  TipsyConfig config;
  config.train_naive_bayes = true;
  TipsyService tipsy(wan_.get(), &topology_.metros, config);
  tipsy.Train({});
  tipsy.FinalizeTraining();
  EXPECT_NE(tipsy.Find("NB_A"), nullptr);
  EXPECT_NE(tipsy.Find("NB_AL"), nullptr);
  EXPECT_NE(tipsy.Find("Hist_AL/NB_AL"), nullptr);
}

TEST_F(TipsyServiceTest, PredictShiftConservesBytes) {
  TipsyService tipsy(wan_.get(), &topology_.metros);
  const auto flow = MakeFlow(1, 2, 3);
  std::vector<pipeline::AggRow> rows{MakeRow(flow, 0, 600),
                                     MakeRow(flow, 1, 400)};
  tipsy.Train(rows);
  tipsy.FinalizeTraining();

  ExclusionMask excluded(wan_->link_count(), false);
  excluded[0] = true;
  const std::vector<TipsyService::ShiftQueryFlow> queries{{flow, 1000.0}};
  const auto shift = tipsy.PredictShift(queries, excluded);
  double shifted_total = shift.unpredicted_bytes;
  for (const auto& [link, bytes] : shift.shifted) {
    EXPECT_NE(link, util::LinkId{0});
    shifted_total += bytes;
  }
  EXPECT_NEAR(shifted_total, 1000.0, 1e-9);
}

TEST_F(TipsyServiceTest, UnknownFlowsCountedAsUnpredicted) {
  TipsyService tipsy(wan_.get(), &topology_.metros);
  tipsy.Train({});
  tipsy.FinalizeTraining();
  const std::vector<TipsyService::ShiftQueryFlow> queries{
      {MakeFlow(9, 9, 9), 500.0}};
  const auto shift =
      tipsy.PredictShift(queries, ExclusionMask(wan_->link_count(), false));
  EXPECT_DOUBLE_EQ(shift.unpredicted_bytes, 500.0);
  EXPECT_TRUE(shift.shifted.empty());
}

// ------------------------------------------------- parallel determinism

// Rows varied enough to spread over many tuples and links; big enough to
// cross TipsyService's parallel-training threshold in a single batch.
std::vector<pipeline::AggRow> DeterminismRows(std::size_t count,
                                              std::uint32_t link_count) {
  std::vector<pipeline::AggRow> rows;
  rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto flow =
        MakeFlow(static_cast<std::uint32_t>(i % 7 + 1),
                 static_cast<std::uint32_t>(i % 13),
                 static_cast<std::uint32_t>(i % 5),
                 static_cast<std::uint32_t>(i % 3));
    rows.push_back(MakeRow(flow, static_cast<std::uint32_t>(i % link_count),
                           (i * 97 + 13) % 1000 + 1));
  }
  return rows;
}

void ExpectExportsEqual(const std::vector<HistoricalModel::TupleExport>& a,
                        const std::vector<HistoricalModel::TupleExport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);  // bit-identical
    ASSERT_EQ(a[i].ranked.size(), b[i].ranked.size());
    for (std::size_t j = 0; j < a[i].ranked.size(); ++j) {
      EXPECT_EQ(a[i].ranked[j].first, b[i].ranked[j].first);
      EXPECT_EQ(a[i].ranked[j].second, b[i].ranked[j].second);
    }
  }
}

TEST(HistoricalModel, ShardedAddMatchesSerialAddBitIdentically) {
  const auto rows = DeterminismRows(500, 4);
  HistoricalModel serial(FeatureSet::kAP);
  for (const auto& row : rows) serial.Add(row);
  serial.Finalize();

  HistoricalModel sharded(FeatureSet::kAP);
  sharded.EnsureShards(4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    sharded.AddToShard(i % 4, rows[i]);
  }
  sharded.Finalize();

  ExpectExportsEqual(serial.ExportTable(), sharded.ExportTable());
}

TEST_F(TipsyServiceTest, ParallelTrainingBitIdenticalToSerial) {
  const auto rows = DeterminismRows(
      1200, static_cast<std::uint32_t>(wan_->link_count()));

  const auto train = [&](std::size_t threads) {
    util::ScopedPool pool(threads);
    auto tipsy = std::make_unique<TipsyService>(wan_.get(),
                                                &topology_.metros);
    tipsy->Train(rows);
    tipsy->FinalizeTraining();
    return tipsy;
  };
  const auto serial = train(1);
  const auto parallel = train(4);

  for (const auto fs : {FeatureSet::kA, FeatureSet::kAP, FeatureSet::kAL}) {
    ExpectExportsEqual(serial->hist(fs).ExportTable(),
                       parallel->hist(fs).ExportTable());
  }

  // Evaluation must also be bit-identical across thread counts: same
  // model, same eval set, per-chunk accumulators folded in chunk order.
  EvalSet eval;
  for (const auto& row : rows) {
    const FlowFeatures flow{row.src_asn, row.src_prefix24, row.src_metro,
                            row.dest_region, row.dest_service};
    eval.AddObservation(flow, row.link, static_cast<double>(row.bytes), 0);
  }
  eval.Finalize();
  const Model* model = serial->Find("Hist_AL/AP/A");
  ASSERT_NE(model, nullptr);
  AccuracyResult serial_acc, parallel_acc;
  {
    util::ScopedPool pool(1);
    serial_acc = EvaluateModel(*model, eval);
  }
  {
    util::ScopedPool pool(4);
    parallel_acc = EvaluateModel(*model, eval);
  }
  for (std::size_t k = 0; k < AccuracyResult::kMaxK; ++k) {
    EXPECT_EQ(serial_acc.top[k], parallel_acc.top[k]);
  }
  EXPECT_GT(serial_acc.top3(), 0.0);  // the comparison is not vacuous
}

}  // namespace
}  // namespace tipsy::core
