// High-availability serving plane: hour journal, snapshot/restore,
// replica warm-start and supervised failover.
//
// The load-bearing property throughout is *bit-identical recovery*: after
// any injected crash, a reopened replica must serve exactly the model an
// uninterrupted run would serve (compared as core::SaveService bytes) and
// report exactly the same ServiceHealth counters.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <tuple>

#include "core/online.h"
#include "core/serialize.h"
#include "ha/journal.h"
#include "ha/replica.h"
#include "ha/snapshot.h"
#include "ha/supervisor.h"
#include "scenario/fault_injection.h"
#include "topo/generator.h"
#include "util/atomic_file.h"
#include "util/status.h"

namespace tipsy {
namespace {

// ---------------------------------------------------------------- fixtures

pipeline::AggRow MakeRow(std::uint32_t f, std::uint32_t link,
                         util::HourIndex hour, std::uint64_t bytes) {
  pipeline::AggRow row;
  row.link = util::LinkId{link};
  row.src_asn = util::AsId{100 + f};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(f << 8), 24);
  row.src_metro = util::MetroId{f % 2};
  row.dest_region = util::RegionId{0};
  row.dest_service = wan::ServiceType::kWeb;
  row.dest_prefix = util::PrefixId{1};
  row.bytes = bytes;
  row.hour = hour;
  return row;
}

auto RowKey(const pipeline::AggRow& row) {
  return std::tuple(row.hour, row.link.value(), row.src_asn.value(),
                    row.src_prefix24, row.src_metro.value(),
                    row.dest_region.value(),
                    static_cast<int>(row.dest_service),
                    row.dest_prefix.value(), row.bytes);
}

bool RecordsEqual(const ha::JournalRecord& a, const ha::JournalRecord& b) {
  if (a.seq != b.seq || a.kind != b.kind || a.hour != b.hour ||
      a.rows.size() != b.rows.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    if (RowKey(a.rows[i]) != RowKey(b.rows[i])) return false;
  }
  return true;
}

// Serialized bytes of the served model; "" when nothing is trained.
// SaveService(LoadService(b)) == b is fuzz-verified in robustness_test,
// so byte equality here is exactly model equality.
std::string ServiceBytes(const core::TipsyService* service) {
  if (service == nullptr) return {};
  std::ostringstream out;
  core::SaveService(*service, out);
  return out.str();
}

// A unique on-disk home for one test's journal + snapshot.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("tipsy_ha_" + name + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }

  [[nodiscard]] std::string File(const std::string& name) const {
    return (path / name).string();
  }

  std::filesystem::path path;
};

struct HaFixture {
  HaFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1) {}

  [[nodiscard]] std::vector<pipeline::AggRow> HourRows(
      util::HourIndex hour) const {
    std::vector<pipeline::AggRow> rows;
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (std::uint32_t f = 0; f < 4; ++f) {
      rows.push_back(MakeRow(f, (f + static_cast<std::uint32_t>(hour)) % links,
                             hour, 500 + 13 * f + 7 * hour));
    }
    return rows;
  }

  [[nodiscard]] core::DailyRetrainer MakeRetrainer() const {
    return core::DailyRetrainer(&wan, &topology.metros, /*window_days=*/3);
  }

  [[nodiscard]] ha::ReplicaConfig MakeReplicaConfig(
      const TempDir& dir, const std::string& prefix) const {
    ha::ReplicaConfig config;
    config.journal_path = dir.File(prefix + ".journal");
    config.snapshot_path = dir.File(prefix + ".snapshot");
    // Tests hammer hundreds of appends; per-append fsync latency is the
    // production trade, not the property under test.
    config.fsync_appends = false;
    return config;
  }

  [[nodiscard]] util::StatusOr<ha::Replica> OpenReplica(
      const ha::ReplicaConfig& config) const {
    return ha::Replica::Open(&wan, &topology.metros, /*window_days=*/3, {},
                             {}, config);
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
};

// The ingest stream for the crash matrix: in-order hours with a couple of
// out-of-order deliveries sprinkled in (the retrainer drops-and-counts
// them, and bit-identical recovery must reproduce those counters too).
struct StreamEvent {
  util::HourIndex hour = 0;
  bool heartbeat = false;
};

std::vector<StreamEvent> MakeStream(util::HourIndex hours) {
  std::vector<StreamEvent> events;
  for (util::HourIndex h = 0; h < hours; ++h) {
    events.push_back({h, false});
    if (h == 30 || h == 77) events.push_back({h - 25, false});  // late replay
    if (h % 6 == 5) events.push_back({h, true});  // idle heartbeat tick
  }
  return events;
}

void ApplyEvent(core::DailyRetrainer& retrainer, const HaFixture& fixture,
                const StreamEvent& event) {
  if (event.heartbeat) {
    retrainer.AdvanceTo(event.hour);
  } else {
    retrainer.Ingest(event.hour, fixture.HourRows(event.hour));
  }
}

util::Status ApplyEvent(ha::Replica& replica, const HaFixture& fixture,
                        const StreamEvent& event) {
  if (event.heartbeat) return replica.Heartbeat(event.hour);
  return replica.Ingest(event.hour, fixture.HourRows(event.hour));
}

// ----------------------------------------------------------------- journal

TEST(Journal, AppendRecoverRoundTripsVerbatim) {
  HaFixture fixture;
  TempDir dir("journal_roundtrip");
  const auto path = dir.File("hours.journal");

  std::vector<ha::JournalRecord> written;
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/true);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (util::HourIndex h = 0; h < 5; ++h) {
      ha::JournalRecord record;
      record.seq = static_cast<std::uint64_t>(h);
      record.kind = h == 3 ? ha::JournalRecordKind::kHeartbeat
                           : ha::JournalRecordKind::kIngest;
      record.hour = h;
      if (record.kind == ha::JournalRecordKind::kIngest) {
        record.rows = fixture.HourRows(h);
      }
      auto seq = journal->Append(record.kind, record.hour, record.rows);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      EXPECT_EQ(*seq, record.seq);
      written.push_back(std::move(record));
    }
    EXPECT_EQ(journal->next_seq(), 5u);
  }

  auto reopened = ha::Journal::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& recovery = reopened->recovered();
  EXPECT_TRUE(recovery.tail_status.ok()) << recovery.tail_status.ToString();
  EXPECT_EQ(recovery.torn_bytes, 0u);
  ASSERT_EQ(recovery.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(recovery.records[i], written[i])) << i;
  }
  EXPECT_EQ(reopened->next_seq(), 5u);
}

TEST(Journal, TornTailIsTruncatedAndAppendsContinue) {
  HaFixture fixture;
  TempDir dir("journal_torn");
  const auto path = dir.File("hours.journal");
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok());
    for (util::HourIndex h = 0; h < 4; ++h) {
      ASSERT_TRUE(journal
                      ->Append(ha::JournalRecordKind::kIngest, h,
                               fixture.HourRows(h))
                      .ok());
    }
  }
  // A crash mid-append leaves a torn half-record at the tail.
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ha::JournalRecord torn;
  torn.seq = 4;
  torn.hour = 4;
  torn.rows = fixture.HourRows(4);
  const std::string frame = ha::EncodeJournalRecord(torn);
  ASSERT_TRUE(util::WriteFileAtomic(
                  path, *bytes + frame.substr(0, frame.size() / 2))
                  .ok());

  auto reopened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->recovered().records.size(), 4u);
  EXPECT_EQ(reopened->recovered().tail_status.code(),
            util::StatusCode::kTruncated);
  EXPECT_GT(reopened->recovered().torn_bytes, 0u);
  // The torn record was never acknowledged; its retry lands on seq 4.
  auto seq = reopened->Append(ha::JournalRecordKind::kIngest, 4, torn.rows);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 4u);

  // After truncate + re-append the journal is clean again.
  auto final_bytes = util::ReadFileToString(path);
  ASSERT_TRUE(final_bytes.ok());
  auto recovery = ha::RecoverJournalBytes(*final_bytes);
  ASSERT_TRUE(recovery.ok());
  EXPECT_TRUE(recovery->tail_status.ok());
  EXPECT_EQ(recovery->records.size(), 5u);
}

TEST(Journal, WrongMagicAndVersionAreTypedErrors) {
  TempDir dir("journal_magic");
  const auto foreign = dir.File("not_a_journal");
  ASSERT_TRUE(util::WriteFileAtomic(foreign, "GIFDATA8 something").ok());
  auto open = ha::Journal::Open(foreign);
  ASSERT_FALSE(open.ok());
  // A wrong magic means "this is some other file": refuse to clobber it.
  EXPECT_EQ(open.status().code(), util::StatusCode::kCorrupt);
  auto untouched = util::ReadFileToString(foreign);
  ASSERT_TRUE(untouched.ok());
  EXPECT_EQ(*untouched, "GIFDATA8 something");

  const auto future = dir.File("future_journal");
  ASSERT_TRUE(util::WriteFileAtomic(future, "TIPSYHJ9").ok());
  auto version = ha::Journal::Open(future);
  ASSERT_FALSE(version.ok());
  EXPECT_EQ(version.status().code(), util::StatusCode::kVersionMismatch);

  // Shorter than the magic = torn initial create: safe to start over.
  const auto stub = dir.File("stub_journal");
  ASSERT_TRUE(util::WriteFileAtomic(stub, "TIP").ok());
  auto recovered = ha::Journal::Open(stub);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->next_seq(), 0u);
}

TEST(Journal, SequenceGapStopsRecoveryAtVerifiedPrefix) {
  HaFixture fixture;
  std::string bytes = "TIPSYHJ1";
  for (std::uint64_t seq : {0ull, 1ull, 3ull}) {  // 2 went missing
    ha::JournalRecord record;
    record.seq = seq;
    record.hour = static_cast<util::HourIndex>(seq);
    record.rows = fixture.HourRows(record.hour);
    bytes += ha::EncodeJournalRecord(record);
  }
  auto recovery = ha::RecoverJournalBytes(bytes);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records.size(), 2u);
  EXPECT_EQ(recovery->tail_status.code(), util::StatusCode::kCorrupt);
  EXPECT_GT(recovery->torn_bytes, 0u);
}

// Exhaustive single-byte-flip fuzz: whatever the damage, recovery yields
// a bit-honest prefix of the clean records (or a typed magic failure) and
// never crashes, hangs or over-allocates.
TEST(JournalByteFlipFuzz, EveryMutationRecoversAnHonestPrefix) {
  HaFixture fixture;
  std::string bytes = "TIPSYHJ1";
  std::vector<ha::JournalRecord> clean;
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    ha::JournalRecord record;
    record.seq = seq;
    record.kind = seq % 3 == 2 ? ha::JournalRecordKind::kHeartbeat
                               : ha::JournalRecordKind::kIngest;
    record.hour = static_cast<util::HourIndex>(seq);
    if (record.kind == ha::JournalRecordKind::kIngest) {
      record.rows = fixture.HourRows(record.hour);
    }
    bytes += ha::EncodeJournalRecord(record);
    clean.push_back(std::move(record));
  }
  {
    auto sanity = ha::RecoverJournalBytes(bytes);
    ASSERT_TRUE(sanity.ok());
    ASSERT_EQ(sanity->records.size(), clean.size());
    ASSERT_TRUE(sanity->tail_status.ok());
  }

  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto recovery =
          ha::RecoverJournalBytes(scenario::FlipBit(bytes, byte, bit));
      if (!recovery.ok()) {
        // Only damage to the magic itself refuses recovery outright.
        ASSERT_LT(byte, 8u);
        const auto code = recovery.status().code();
        EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                    code == util::StatusCode::kVersionMismatch)
            << "byte " << byte << " bit " << bit;
        continue;
      }
      // A flip past the magic damages exactly one frame: everything
      // before it must be recovered verbatim, nothing after it.
      ASSERT_LT(recovery->records.size(), clean.size())
          << "undetected corruption at byte " << byte << " bit " << bit;
      EXPECT_FALSE(recovery->tail_status.ok());
      for (std::size_t i = 0; i < recovery->records.size(); ++i) {
        EXPECT_TRUE(RecordsEqual(recovery->records[i], clean[i]))
            << "byte " << byte << " bit " << bit << " record " << i;
      }
    }
  }
}

// ------------------------------------------------------------- compaction
//
// Journal::Compact is manifest-before-truncate: the authenticated base
// seq is committed to the atomic `.manifest` sidecar first, then the
// journal is atomically rewritten as magic + surviving suffix. The tests
// below cover the clean path, the crash window between the two writes,
// and bit rot in either file. The invariant throughout: Open() either
// reconstructs exactly the authenticated state or refuses with a typed
// error — it never guesses a base or presents record loss as success.

std::uint64_t AppendHours(ha::Journal& journal, const HaFixture& fixture,
                          util::HourIndex first, util::HourIndex count) {
  std::uint64_t last = 0;
  for (util::HourIndex h = first; h < first + count; ++h) {
    auto seq = journal.Append(ha::JournalRecordKind::kIngest, h,
                              fixture.HourRows(h));
    EXPECT_TRUE(seq.ok()) << seq.status().ToString();
    last = *seq;
  }
  return last;
}

TEST(JournalCompaction, CompactDropsPrefixAndSurvivesReopen) {
  HaFixture fixture;
  TempDir dir("compact_roundtrip");
  const auto path = dir.File("hours.journal");
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    AppendHours(*journal, fixture, 0, 8);
    ASSERT_TRUE(journal->Compact(5).ok());
    EXPECT_EQ(journal->base_seq(), 5u);
    EXPECT_EQ(journal->next_seq(), 8u);
    EXPECT_EQ(journal->compactions(), 1u);
    EXPECT_EQ(journal->compacted_records(), 5u);
    // Appends keep landing on the rewritten file with contiguous seqs.
    EXPECT_EQ(AppendHours(*journal, fixture, 8, 1), 8u);
    // Compacting to a seq at or below the base is a no-op, not an error.
    ASSERT_TRUE(journal->Compact(3).ok());
    EXPECT_EQ(journal->base_seq(), 5u);
  }
  auto reopened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->compaction_resumed());
  EXPECT_EQ(reopened->base_seq(), 5u);
  EXPECT_EQ(reopened->next_seq(), 9u);
  const auto& records = reopened->recovered().records;
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    ha::JournalRecord expect;
    expect.seq = 5 + i;
    expect.hour = static_cast<util::HourIndex>(5 + i);
    expect.rows = fixture.HourRows(expect.hour);
    EXPECT_TRUE(RecordsEqual(records[i], expect)) << i;
  }
}

TEST(JournalCompaction, CompactPastNextSeqResetsToEmptyBase) {
  // A standby installing a remote snapshot compacts through a seq it
  // never journalled locally; the journal must reset to an empty file
  // based there so the snapshot is restorable on the next open.
  HaFixture fixture;
  TempDir dir("compact_reset");
  const auto path = dir.File("hours.journal");
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    AppendHours(*journal, fixture, 0, 3);
    ASSERT_TRUE(journal->Compact(20).ok());
    EXPECT_EQ(journal->base_seq(), 20u);
    EXPECT_EQ(journal->next_seq(), 20u);
    EXPECT_EQ(AppendHours(*journal, fixture, 20, 1), 20u);
  }
  auto reopened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->base_seq(), 20u);
  EXPECT_EQ(reopened->next_seq(), 21u);
  ASSERT_EQ(reopened->recovered().records.size(), 1u);
  EXPECT_EQ(reopened->recovered().records.front().seq, 20u);
}

TEST(JournalCompaction, CrashBetweenManifestAndTruncateIsCompletedOnOpen) {
  HaFixture fixture;
  TempDir dir("compact_torn");
  const auto path = dir.File("hours.journal");
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    AppendHours(*journal, fixture, 0, 8);
  }
  // Exactly the on-disk state a crash after Compact's first atomic write
  // leaves behind: the manifest advanced, the journal file did not.
  ASSERT_TRUE(util::WriteFileAtomic(ha::JournalManifestPath(path),
                                    ha::EncodeJournalManifest({.base_seq = 5}))
                  .ok());
  {
    auto repaired = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
    EXPECT_TRUE(repaired->compaction_resumed());
    EXPECT_EQ(repaired->base_seq(), 5u);
    EXPECT_EQ(repaired->next_seq(), 8u);
    ASSERT_EQ(repaired->recovered().records.size(), 3u);
    EXPECT_EQ(repaired->recovered().records.front().seq, 5u);
    EXPECT_EQ(AppendHours(*repaired, fixture, 8, 1), 8u);
  }
  // The repair is durable: a second open sees an ordinary compacted file.
  auto stable = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  EXPECT_FALSE(stable->compaction_resumed());
  EXPECT_EQ(stable->base_seq(), 5u);
  EXPECT_EQ(stable->next_seq(), 9u);
}

TEST(JournalCompaction, TornCompactionWithTornAppendTailRecovers) {
  // Worst case: a torn append tail from one crash AND a manifest ahead
  // of the file from a compaction crash. Open must drop the torn tail,
  // complete the truncation, and keep exactly [manifest base, verified
  // end).
  HaFixture fixture;
  TempDir dir("compact_torn_tail");
  const auto path = dir.File("hours.journal");
  std::string bytes(ha::JournalMagic());
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    ha::JournalRecord record;
    record.seq = seq;
    record.hour = static_cast<util::HourIndex>(seq);
    record.rows = fixture.HourRows(record.hour);
    bytes += ha::EncodeJournalRecord(record);
  }
  ASSERT_TRUE(
      util::WriteFileAtomic(path, scenario::TruncateTail(bytes, 7)).ok());
  ASSERT_TRUE(util::WriteFileAtomic(ha::JournalManifestPath(path),
                                    ha::EncodeJournalManifest({.base_seq = 5}))
                  .ok());
  auto repaired = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(repaired->compaction_resumed());
  EXPECT_EQ(repaired->base_seq(), 5u);
  EXPECT_EQ(repaired->next_seq(), 7u);  // record 7 was the torn append
  ASSERT_EQ(repaired->recovered().records.size(), 2u);
  EXPECT_EQ(repaired->recovered().records.front().seq, 5u);
}

TEST(JournalCompaction, CompactedFileWithoutManifestIsCorrupt) {
  // A nonzero first seq with no manifest means records went missing (or
  // someone deleted the sidecar); guessing a base would present that
  // loss as a successful open.
  HaFixture fixture;
  TempDir dir("compact_no_manifest");
  const auto path = dir.File("hours.journal");
  std::string bytes(ha::JournalMagic());
  for (std::uint64_t seq = 5; seq < 8; ++seq) {
    ha::JournalRecord record;
    record.seq = seq;
    record.hour = static_cast<util::HourIndex>(seq);
    record.rows = fixture.HourRows(record.hour);
    bytes += ha::EncodeJournalRecord(record);
  }
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());
  auto opened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kCorrupt);
}

TEST(JournalCompaction, FileAheadOfManifestIsCorrupt) {
  // The manifest authenticates base 3 but the file starts at 5: records
  // 3 and 4 are gone and no snapshot covers them. Typed refusal.
  HaFixture fixture;
  TempDir dir("compact_ahead");
  const auto path = dir.File("hours.journal");
  std::string bytes(ha::JournalMagic());
  for (std::uint64_t seq = 5; seq < 8; ++seq) {
    ha::JournalRecord record;
    record.seq = seq;
    record.hour = static_cast<util::HourIndex>(seq);
    record.rows = fixture.HourRows(record.hour);
    bytes += ha::EncodeJournalRecord(record);
  }
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes).ok());
  ASSERT_TRUE(util::WriteFileAtomic(ha::JournalManifestPath(path),
                                    ha::EncodeJournalManifest({.base_seq = 3}))
                  .ok());
  auto opened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kCorrupt);
}

TEST(JournalCompaction, DamagedManifestRefusesOpenWithTypedError) {
  HaFixture fixture;
  TempDir dir("compact_bad_manifest");
  const auto path = dir.File("hours.journal");
  {
    auto journal = ha::Journal::Open(path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    AppendHours(*journal, fixture, 0, 8);
    ASSERT_TRUE(journal->Compact(5).ok());
  }
  auto manifest = util::ReadFileToString(ha::JournalManifestPath(path));
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(util::WriteFileAtomic(
                  ha::JournalManifestPath(path),
                  scenario::FlipBit(*manifest, manifest->size() - 2, 3))
                  .ok());
  auto opened = ha::Journal::Open(path, /*fsync_appends=*/false);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), util::StatusCode::kCorrupt);
}

// Exhaustive single-bit-flip and truncation fuzz over the manifest: the
// CRC catches every mutation, so the decoder must always refuse with a
// typed code — a flipped base accepted as valid would silently orphan
// (or resurrect) compacted records.
TEST(JournalManifestByteFlipFuzz, EveryMutationIsATypedRefusal) {
  const std::string clean =
      ha::EncodeJournalManifest({.base_seq = 0x0123456789abcdefULL});
  {
    auto sanity = ha::DecodeJournalManifest(clean);
    ASSERT_TRUE(sanity.ok()) << sanity.status().ToString();
    ASSERT_EQ(sanity->base_seq, 0x0123456789abcdefULL);
  }
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto decoded =
          ha::DecodeJournalManifest(scenario::FlipBit(clean, byte, bit));
      ASSERT_FALSE(decoded.ok())
          << "undetected manifest corruption at byte " << byte << " bit "
          << bit;
      const auto code = decoded.status().code();
      EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                  code == util::StatusCode::kVersionMismatch ||
                  code == util::StatusCode::kTruncated)
          << "byte " << byte << " bit " << bit;
    }
  }
  for (std::size_t keep = 0; keep < clean.size(); ++keep) {
    auto decoded = ha::DecodeJournalManifest(clean.substr(0, keep));
    ASSERT_FALSE(decoded.ok()) << "accepted " << keep << "-byte prefix";
  }
  // Trailing garbage is not "close enough" either.
  EXPECT_FALSE(ha::DecodeJournalManifest(clean + '\0').ok());
}

TEST(ReplicaCompaction, CheckpointCompactionKeepsRecoveryBitIdentical) {
  // The full production loop: day-boundary checkpoints snapshot AND
  // compact, then the process dies and a cold Open must come back
  // bit-identical to an uninterrupted run — the compacted prefix now
  // lives only in the snapshot.
  HaFixture fixture;
  const auto events = MakeStream(3 * util::kHoursPerDay);

  auto reference = fixture.MakeRetrainer();
  for (const auto& event : events) ApplyEvent(reference, fixture, event);
  const std::string reference_bytes = ServiceBytes(reference.current());
  ASSERT_FALSE(reference_bytes.empty());

  TempDir dir("replica_compact");
  auto config = fixture.MakeReplicaConfig(dir, "node");
  config.compact_after_snapshot = true;
  {
    auto replica = fixture.OpenReplica(config);
    ASSERT_TRUE(replica.ok()) << replica.status().ToString();
    for (const auto& event : events) {
      ASSERT_TRUE(ApplyEvent(*replica, fixture, event).ok());
    }
    // The day crossings actually compacted: the journal no longer spans
    // back to genesis and the manifest authenticates the new base.
    EXPECT_GT(replica->journal().base_seq(), 0u);
    auto manifest = util::ReadFileToString(
        ha::JournalManifestPath(config.journal_path));
    ASSERT_TRUE(manifest.ok());
    auto decoded = ha::DecodeJournalManifest(*manifest);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->base_seq, replica->journal().base_seq());
  }
  auto reopened = fixture.OpenReplica(config);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->recovery().source,
            ha::RestoreSource::kSnapshotAndJournal);
  EXPECT_EQ(reopened->recovery().skipped_records, 0u);
  EXPECT_EQ(ServiceBytes(reopened->service()), reference_bytes);
}

TEST(ReplicaCompaction, CompactedJournalWithoutCoveringSnapshotIsCorrupt) {
  // A compacted journal spans only [base, next); with no snapshot
  // covering the base there is no path back to the dropped prefix, and
  // replaying just the suffix would serve a wrong model as a successful
  // open. Replica::Open must refuse, not improvise.
  HaFixture fixture;
  TempDir dir("replica_compact_orphan");
  const auto config = fixture.MakeReplicaConfig(dir, "node");
  {
    auto journal =
        ha::Journal::Open(config.journal_path, /*fsync_appends=*/false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    AppendHours(*journal, fixture, 0, 6);
    ASSERT_TRUE(journal->Compact(4).ok());
  }
  auto replica = fixture.OpenReplica(config);
  ASSERT_FALSE(replica.ok());
  EXPECT_EQ(replica.status().code(), util::StatusCode::kCorrupt);
}

// ---------------------------------------------------------------- snapshot

core::RetrainerState TrainedState(const HaFixture& fixture,
                                  util::HourIndex hours) {
  auto retrainer = fixture.MakeRetrainer();
  for (util::HourIndex h = 0; h < hours; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  return retrainer.ExportState();
}

TEST(Snapshot, EncodeDecodeRoundTrips) {
  HaFixture fixture;
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, 30);
  state.applied_seq = 42;
  ASSERT_FALSE(state.retrainer.model_bundle.empty());
  ASSERT_FALSE(state.retrainer.days.empty());

  auto decoded = ha::DecodeSnapshot(ha::EncodeSnapshot(state));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->applied_seq, 42u);
  EXPECT_EQ(decoded->retrainer.model_bundle, state.retrainer.model_bundle);
  EXPECT_EQ(decoded->retrainer.last_observed_hour,
            state.retrainer.last_observed_hour);
  EXPECT_EQ(decoded->retrainer.dropped_hours, state.retrainer.dropped_hours);
  ASSERT_EQ(decoded->retrainer.days.size(), state.retrainer.days.size());
  for (std::size_t d = 0; d < state.retrainer.days.size(); ++d) {
    const auto& a = state.retrainer.days[d];
    const auto& b = decoded->retrainer.days[d];
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.hours_seen, b.hours_seen);
    EXPECT_EQ(a.last_hour, b.last_hour);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t r = 0; r < a.rows.size(); ++r) {
      EXPECT_EQ(RowKey(a.rows[r]), RowKey(b.rows[r]));
    }
  }
  // Deterministic: encode(decode(bytes)) is byte-stable.
  EXPECT_EQ(ha::EncodeSnapshot(*decoded), ha::EncodeSnapshot(state));
}

TEST(Snapshot, HostileLengthsAreRejectedWithoutAllocating) {
  // A 1 TiB declared payload.
  std::ostringstream huge;
  huge.write("TIPSYSS1", 8);
  pipeline::PutVarint(huge, 1ull << 40);
  auto rejected = ha::DecodeSnapshot(huge.str());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kCorrupt);

  // A day count far beyond what the payload could hold, behind a valid
  // CRC so it reaches the count validation.
  HaFixture fixture;
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, 10);
  const std::string bytes = ha::EncodeSnapshot(state);
  EXPECT_EQ(ha::DecodeSnapshot(bytes).ok(), true);
  auto truncated = ha::DecodeSnapshot(bytes.substr(0, bytes.size() - 3));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), util::StatusCode::kTruncated);
}

TEST(SnapshotByteFlipFuzz, EveryMutationDecodesIdenticallyOrFailsTyped) {
  HaFixture fixture;
  ha::SnapshotState state;
  state.retrainer = TrainedState(fixture, 26);
  state.applied_seq = 26;
  const std::string original = ha::EncodeSnapshot(state);
  ASSERT_GT(original.size(), 32u);

  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto decoded =
          ha::DecodeSnapshot(scenario::FlipBit(original, byte, bit));
      if (!decoded.ok()) {
        const auto code = decoded.status().code();
        EXPECT_TRUE(code == util::StatusCode::kCorrupt ||
                    code == util::StatusCode::kTruncated ||
                    code == util::StatusCode::kVersionMismatch)
            << "byte " << byte << " bit " << bit << ": "
            << decoded.status().ToString();
        ++rejected;
        continue;
      }
      EXPECT_EQ(ha::EncodeSnapshot(*decoded), original)
          << "silently accepted corruption at byte " << byte << " bit "
          << bit;
    }
  }
  // The payload CRC makes every single-bit flip detectable.
  EXPECT_EQ(rejected, original.size() * 8);
}

// -------------------------------------------------- export/restore state

TEST(RestoreState, ContinuesBitIdenticallyAfterHandoff) {
  HaFixture fixture;
  auto original = fixture.MakeRetrainer();
  for (util::HourIndex h = 0; h < 40; ++h) {
    original.Ingest(h, fixture.HourRows(h));
  }

  auto restored = fixture.MakeRetrainer();
  ASSERT_TRUE(restored.RestoreState(original.ExportState()).ok());
  EXPECT_EQ(restored.health_snapshot(), original.health_snapshot());
  EXPECT_EQ(ServiceBytes(restored.current()),
            ServiceBytes(original.current()));

  // Both continue over the same stream (including retrains at the day
  // boundaries) and never diverge.
  for (util::HourIndex h = 40; h < 90; ++h) {
    original.Ingest(h, fixture.HourRows(h));
    restored.Ingest(h, fixture.HourRows(h));
    if (h % 24 == 0) {
      ASSERT_EQ(ServiceBytes(restored.current()),
                ServiceBytes(original.current()))
          << "diverged by hour " << h;
    }
  }
  EXPECT_EQ(restored.health_snapshot(), original.health_snapshot());
  EXPECT_EQ(ServiceBytes(restored.current()),
            ServiceBytes(original.current()));
}

TEST(RestoreState, DamagedBundleLeavesRetrainerUntouched) {
  HaFixture fixture;
  auto retrainer = fixture.MakeRetrainer();
  for (util::HourIndex h = 0; h < 30; ++h) {
    retrainer.Ingest(h, fixture.HourRows(h));
  }
  const auto before_health = retrainer.health_snapshot();
  const auto before_bytes = ServiceBytes(retrainer.current());

  auto state = retrainer.ExportState();
  state.model_bundle = scenario::FlipBit(state.model_bundle, 40, 3);
  const auto status = retrainer.RestoreState(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(retrainer.health_snapshot(), before_health);
  EXPECT_EQ(ServiceBytes(retrainer.current()), before_bytes);
}

// ------------------------------------------------- replica crash matrix

// How the kill-and-restore harness damages the on-disk pair at the crash
// point, mimicking where in the write path the process died.
enum class CrashDamage {
  kClean,            // plain kill between appends
  kTornJournalTail,  // died mid-append, before fsync acked the record
  kSnapshotBitFlip,  // checkpoint rotted on disk
  kSnapshotMissing,  // died before the first checkpoint ever landed
  kStaleTempFile,    // died between snapshot tmp write and rename
};

struct CrashCase {
  const char* name;
  std::size_t crash_at;  // stream event index where the process dies
  CrashDamage damage;
};

TEST(ReplicaCrashMatrix, RestoreIsBitIdenticalToUninterruptedRun) {
  HaFixture fixture;
  const auto events = MakeStream(5 * util::kHoursPerDay);

  // The uninterrupted reference run.
  auto reference = fixture.MakeRetrainer();
  for (const auto& event : events) ApplyEvent(reference, fixture, event);
  const auto reference_health = reference.health_snapshot();
  const std::string reference_bytes = ServiceBytes(reference.current());
  ASSERT_FALSE(reference_bytes.empty());

  const CrashCase cases[] = {
      {"clean_kill_mid_day", 40, CrashDamage::kClean},
      {"clean_kill_late", 100, CrashDamage::kClean},
      {"torn_journal_tail", 70, CrashDamage::kTornJournalTail},
      {"snapshot_bitflip", 60, CrashDamage::kSnapshotBitFlip},
      {"snapshot_missing", 55, CrashDamage::kSnapshotMissing},
      {"stale_temp_file", 52, CrashDamage::kStaleTempFile},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.name);
    TempDir dir(std::string("crash_") + test_case.name);
    const auto config = fixture.MakeReplicaConfig(dir, "replica");

    // Phase 1: serve until the crash point, then "die" (drop the object,
    // losing all in-memory state).
    std::size_t resume_at = test_case.crash_at;
    {
      auto replica = fixture.OpenReplica(config);
      ASSERT_TRUE(replica.ok()) << replica.status().ToString();
      EXPECT_EQ(replica->recovery().source, ha::RestoreSource::kColdStart);
      for (std::size_t i = 0; i < test_case.crash_at; ++i) {
        ASSERT_TRUE(ApplyEvent(*replica, fixture, events[i]).ok());
      }
    }

    // Phase 2: inflict the damage the crash left behind.
    switch (test_case.damage) {
      case CrashDamage::kClean:
        break;
      case CrashDamage::kTornJournalTail: {
        // Died mid-append of the next event: half a frame on disk, the
        // record unacknowledged - the upstream will retry it, so the
        // resume point does NOT advance.
        auto bytes = util::ReadFileToString(config.journal_path);
        ASSERT_TRUE(bytes.ok());
        ha::JournalRecord torn;
        torn.seq = ha::RecoverJournalBytes(*bytes)->records.size();
        torn.hour = events[test_case.crash_at].hour;
        torn.rows = fixture.HourRows(torn.hour);
        const auto frame = ha::EncodeJournalRecord(torn);
        ASSERT_TRUE(util::WriteFileAtomic(
                        config.journal_path,
                        *bytes + frame.substr(0, frame.size() - 5))
                        .ok());
        break;
      }
      case CrashDamage::kSnapshotBitFlip: {
        auto bytes = util::ReadFileToString(config.snapshot_path);
        ASSERT_TRUE(bytes.ok());
        ASSERT_TRUE(util::WriteFileAtomic(
                        config.snapshot_path,
                        scenario::FlipBit(*bytes, bytes->size() / 2, 4))
                        .ok());
        break;
      }
      case CrashDamage::kSnapshotMissing:
        std::filesystem::remove(config.snapshot_path);
        break;
      case CrashDamage::kStaleTempFile:
        // WriteFileAtomic died before rename: the real snapshot is the
        // older one, the temp sibling is garbage to be ignored.
        ASSERT_TRUE(util::WriteFileAtomic(config.snapshot_path + ".tmp",
                                          "half-written garbage")
                        .ok());
        break;
    }

    // Phase 3: restart, warm-start, finish the stream.
    auto replica = fixture.OpenReplica(config);
    ASSERT_TRUE(replica.ok()) << replica.status().ToString();
    switch (test_case.damage) {
      case CrashDamage::kSnapshotBitFlip:
        EXPECT_EQ(replica->recovery().source,
                  ha::RestoreSource::kJournalOnly);
        EXPECT_EQ(replica->recovery().snapshot_status.code(),
                  util::StatusCode::kCorrupt);
        break;
      case CrashDamage::kSnapshotMissing:
        EXPECT_EQ(replica->recovery().source,
                  ha::RestoreSource::kJournalOnly);
        break;
      case CrashDamage::kTornJournalTail:
        EXPECT_EQ(replica->recovery().journal_tail_status.code(),
                  util::StatusCode::kTruncated);
        break;
      default:
        EXPECT_EQ(replica->recovery().source,
                  ha::RestoreSource::kSnapshotAndJournal);
        break;
    }
    for (std::size_t i = resume_at; i < events.size(); ++i) {
      ASSERT_TRUE(ApplyEvent(*replica, fixture, events[i]).ok());
    }

    // The acceptance bar: bit-identical model and health counters.
    EXPECT_EQ(ServiceBytes(replica->service()), reference_bytes);
    EXPECT_EQ(replica->retrainer().health_snapshot(), reference_health);
  }
}

// ---------------------------------------------------- replay idempotence

TEST(ReplayIdempotence, SecondReplayIsSkippedEntirely) {
  HaFixture fixture;
  TempDir dir("replay_twice");

  // Source replica produces a journal.
  auto source = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "src"));
  ASSERT_TRUE(source.ok());
  const auto events = MakeStream(3 * util::kHoursPerDay);
  for (const auto& event : events) {
    ASSERT_TRUE(ApplyEvent(*source, fixture, event).ok());
  }
  auto journal_bytes = util::ReadFileToString(
      fixture.MakeReplicaConfig(dir, "src").journal_path);
  ASSERT_TRUE(journal_bytes.ok());
  auto recovery = ha::RecoverJournalBytes(*journal_bytes);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery->records.size(), events.size());

  // A fresh standby replays the shipped journal once...
  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "dst"));
  ASSERT_TRUE(standby.ok());
  ASSERT_TRUE(standby->Replay(recovery->records).ok());
  const auto once_health = standby->retrainer().health_snapshot();
  const auto once_bytes = ServiceBytes(standby->service());
  EXPECT_EQ(once_bytes, ServiceBytes(source->service()));
  EXPECT_EQ(once_health, source->retrainer().health_snapshot());

  // ...then the whole journal is shipped again: every record is a
  // duplicate, skipped-and-counted, and nothing changes.
  ASSERT_TRUE(standby->Replay(recovery->records).ok());
  EXPECT_EQ(standby->duplicate_records_skipped(), recovery->records.size());
  EXPECT_EQ(standby->retrainer().health_snapshot(), once_health);
  EXPECT_EQ(ServiceBytes(standby->service()), once_bytes);
}

TEST(ReplayIdempotence, DuplicatedAndReorderedBatchesCollapse) {
  HaFixture fixture;
  TempDir dir("replay_mangled");

  auto source = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "src"));
  ASSERT_TRUE(source.ok());
  const auto events = MakeStream(2 * util::kHoursPerDay);
  for (const auto& event : events) {
    ASSERT_TRUE(ApplyEvent(*source, fixture, event).ok());
  }
  auto journal_bytes = util::ReadFileToString(
      fixture.MakeReplicaConfig(dir, "src").journal_path);
  ASSERT_TRUE(journal_bytes.ok());
  const auto records =
      std::move(ha::RecoverJournalBytes(*journal_bytes)->records);

  // The transport duplicated every record and reversed the batch.
  std::vector<ha::JournalRecord> mangled(records.rbegin(), records.rend());
  mangled.insert(mangled.end(), records.begin(), records.end());

  auto standby = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "dst"));
  ASSERT_TRUE(standby.ok());
  ASSERT_TRUE(standby->Replay(mangled).ok());
  EXPECT_EQ(standby->duplicate_records_skipped(), records.size());
  EXPECT_EQ(ServiceBytes(standby->service()),
            ServiceBytes(source->service()));
  EXPECT_EQ(standby->retrainer().health_snapshot(),
            source->retrainer().health_snapshot());

  // A genuine gap is typed corruption, not silent divergence.
  auto gapped = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, "gap"));
  ASSERT_TRUE(gapped.ok());
  std::vector<ha::JournalRecord> with_gap(records.begin(),
                                          records.begin() + 3);
  with_gap.push_back(records[5]);
  const auto status = gapped->Replay(with_gap);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kCorrupt);
}

// -------------------------------------------------------------- supervisor

// Builds a FRESH replica that has served `days` full days.
ha::Replica ServedReplica(const HaFixture& fixture, const TempDir& dir,
                          const std::string& name, util::HourIndex days) {
  auto replica = fixture.OpenReplica(fixture.MakeReplicaConfig(dir, name));
  EXPECT_TRUE(replica.ok());
  for (util::HourIndex h = 0; h < days * util::kHoursPerDay + 1; ++h) {
    EXPECT_TRUE(replica->Ingest(h, fixture.HourRows(h)).ok());
  }
  EXPECT_EQ(replica->health(), core::ModelHealth::kFresh);
  return *std::move(replica);
}

TEST(Supervisor, FailoverFailbackStateMachine) {
  HaFixture fixture;
  TempDir dir("supervisor_fsm");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  auto standby = ServedReplica(fixture, dir, "standby", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;

  ha::SupervisorConfig config;
  config.heartbeat_timeout_hours = 2;
  ha::Supervisor supervisor(&primary, &standby, config);

  // Nothing heard yet: dark plane, the CMS gate must see EXPIRED.
  supervisor.Tick(t0);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kNone);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kExpired);
  EXPECT_EQ(supervisor.service(), nullptr);

  // Both heartbeating: the primary serves.
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kPrimary, t0);
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, t0);
  supervisor.Tick(t0);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kPrimary);
  EXPECT_EQ(supervisor.service(), primary.service());
  EXPECT_TRUE(supervisor.IsAlive(ha::ReplicaRole::kPrimary));

  // The primary goes quiet; within the timeout it keeps serving, past it
  // the standby is promoted - with zero accuracy loss, since the standby
  // ingested the same stream (bit-identical models).
  for (util::HourIndex h = t0 + 1; h <= t0 + 4; ++h) {
    supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, h);
    supervisor.Tick(h);
  }
  EXPECT_FALSE(supervisor.IsAlive(ha::ReplicaRole::kPrimary));
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kStandby);
  EXPECT_EQ(supervisor.stats().failovers, 1u);
  EXPECT_EQ(ServiceBytes(supervisor.service()),
            ServiceBytes(primary.service()));

  // The primary comes back FRESH: failback.
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kPrimary, t0 + 5);
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, t0 + 5);
  supervisor.Tick(t0 + 5);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kPrimary);
  EXPECT_EQ(supervisor.stats().failbacks, 1u);

  // Both go dark: degrade to NONE, count the unavailability window, and
  // retry promotion a bounded number of times with growing backoff.
  const auto before = supervisor.stats();
  for (util::HourIndex h = t0 + 6; h <= t0 + 30; ++h) {
    supervisor.Tick(h);
  }
  const auto after = supervisor.stats();
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kNone);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kExpired);
  EXPECT_GE(after.unavailable_hours - before.unavailable_hours, 20u);
  const auto attempts = after.promote_attempts - before.promote_attempts;
  EXPECT_GE(attempts, 1u);
  EXPECT_LE(attempts, static_cast<std::uint64_t>(
                          config.max_promote_attempts));
  EXPECT_EQ(after.promote_failures - before.promote_failures, attempts);

  // A heartbeat refills the retry budget and recovery is immediate.
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, t0 + 31);
  supervisor.Tick(t0 + 31);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kStandby);
}

TEST(Supervisor, SingleReplicaDeploymentDegradesToNone) {
  HaFixture fixture;
  TempDir dir("supervisor_single");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;

  ha::Supervisor supervisor(&primary, nullptr);
  supervisor.ObserveHeartbeat(ha::ReplicaRole::kPrimary, t0);
  supervisor.Tick(t0);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kPrimary);
  for (util::HourIndex h = t0 + 1; h <= t0 + 5; ++h) supervisor.Tick(h);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kNone);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kExpired);
}

// The TSan target: heartbeats land from replica threads while the query
// path reads routing and an operator thread polls stats. Run with
// TIPSY_SANITIZE=thread (tools/run_sanitized_fuzz.sh does).
TEST(Supervisor, ConcurrentHeartbeatsTicksAndReadsAreSafe) {
  HaFixture fixture;
  TempDir dir("supervisor_threads");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  auto standby = ServedReplica(fixture, dir, "standby", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;
  ha::Supervisor supervisor(&primary, &standby, {});

  constexpr int kHours = 200;
  std::thread primary_beats([&] {
    for (int h = 0; h < kHours; ++h) {
      supervisor.ObserveHeartbeat(ha::ReplicaRole::kPrimary, t0 + h);
    }
  });
  std::thread standby_beats([&] {
    for (int h = 0; h < kHours; ++h) {
      supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, t0 + h);
    }
  });
  std::thread ticker([&] {
    for (int h = 0; h < kHours; ++h) supervisor.Tick(t0 + h);
  });
  std::uint64_t reads = 0;
  std::thread reader([&] {
    for (int h = 0; h < kHours; ++h) {
      if (supervisor.service() != nullptr) ++reads;
      (void)supervisor.ServingHealth();
      (void)supervisor.stats();
      (void)supervisor.IsAlive(ha::ReplicaRole::kPrimary);
    }
  });
  primary_beats.join();
  standby_beats.join();
  ticker.join();
  reader.join();

  EXPECT_EQ(supervisor.stats().heartbeats_observed,
            static_cast<std::uint64_t>(2 * kHours));
  supervisor.Tick(t0 + kHours);
  EXPECT_NE(supervisor.serving(), ha::ServingSource::kNone);
}

// ------------------------------------------------- heartbeat fault channel

TEST(HeartbeatFaults, PartitionDropsEverythingAndIsDeterministic) {
  HaFixture fixture;
  TempDir dir("hb_partition");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  auto standby = ServedReplica(fixture, dir, "standby", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;

  ha::Supervisor supervisor(&primary, &standby, {});
  scenario::HeartbeatFaultConfig faults;
  // The primary's heartbeats are partitioned away for hours [t0+3, t0+9).
  faults.partitioned = {util::HourRange{t0 + 3, t0 + 9}};
  scenario::FaultyHeartbeatChannel channel(supervisor, faults);

  for (util::HourIndex h = t0; h < t0 + 12; ++h) {
    channel.Send(ha::ReplicaRole::kPrimary, h);
    supervisor.ObserveHeartbeat(ha::ReplicaRole::kStandby, h);
    channel.DeliverDueBy(h);
    supervisor.Tick(h);
  }
  // 6 partitioned hours dropped; the supervisor failed over and back.
  EXPECT_EQ(channel.dropped(), 6u);
  EXPECT_GE(supervisor.stats().failovers, 1u);
  EXPECT_GE(supervisor.stats().failbacks, 1u);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kPrimary);
}

TEST(HeartbeatFaults, DelayedHeartbeatsArriveLateDeterministically) {
  HaFixture fixture;
  TempDir dir("hb_delay");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;

  auto run = [&](std::uint64_t seed) {
    ha::Supervisor supervisor(&primary, nullptr);
    scenario::HeartbeatFaultConfig faults;
    faults.seed = seed;
    faults.delay_rate = 0.5;
    faults.max_delay_hours = 2;
    scenario::FaultyHeartbeatChannel channel(supervisor, faults);
    std::vector<int> serving_primary;
    for (util::HourIndex h = t0; h < t0 + 30; ++h) {
      channel.Send(ha::ReplicaRole::kPrimary, h);
      channel.DeliverDueBy(h);
      supervisor.Tick(h);
      serving_primary.push_back(
          supervisor.serving() == ha::ServingSource::kPrimary ? 1 : 0);
    }
    return std::tuple(channel.delivered(), channel.delayed(),
                      serving_primary);
  };
  const auto first = run(7);
  const auto second = run(7);
  EXPECT_EQ(first, second);  // same seed, same fates
  EXPECT_GT(std::get<1>(first), 0u);
  // A delay of at most 2h never exceeds the 2h liveness timeout budget
  // by itself, but the channel must actually have delivered something.
  EXPECT_GT(std::get<0>(first), 0u);
}

// ------------------------------------------------------ multi-standby quorum

// Remote members (nullptr replica) are known only through reported
// heartbeats; promotion ranks by health, then applied_seq, then the
// configured rank, then member index.
TEST(Quorum, RankedPromotionPrefersProgressThenConfiguredRank) {
  ha::SupervisorConfig config;
  config.heartbeat_timeout_hours = 2;
  ha::Supervisor supervisor(nullptr, nullptr, config);
  const int a = supervisor.AddStandby(nullptr, /*configured_rank=*/1);
  const int b = supervisor.AddStandby(nullptr, /*configured_rank=*/0);
  const int c = supervisor.AddStandby(nullptr, /*configured_rank=*/2);
  ASSERT_EQ(a, 2);
  ASSERT_EQ(b, 3);
  ASSERT_EQ(c, 4);
  EXPECT_EQ(supervisor.member_count(), 5u);

  // All FRESH; `a` has the most journal progress and wins despite the
  // worse configured rank — applied_seq outranks configuration.
  supervisor.ObserveMemberHeartbeat(2, 10, /*applied_seq=*/200,
                                    core::ModelHealth::kFresh);
  supervisor.ObserveMemberHeartbeat(3, 10, /*applied_seq=*/150,
                                    core::ModelHealth::kFresh);
  supervisor.ObserveMemberHeartbeat(4, 10, /*applied_seq=*/150,
                                    core::ModelHealth::kFresh);
  supervisor.Tick(10);
  EXPECT_EQ(supervisor.serving_member(), 2);
  // Remote member: the supervisor routes, it does not hold the model.
  EXPECT_EQ(supervisor.service(), nullptr);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kStandby);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kFresh);

  // `a` dies. `b` and `c` tie on applied_seq; the configured rank breaks
  // the tie (b's 0 beats c's 2).
  supervisor.ObserveMemberHeartbeat(3, 13, 150, core::ModelHealth::kFresh);
  supervisor.ObserveMemberHeartbeat(4, 13, 150, core::ModelHealth::kFresh);
  supervisor.Tick(13);
  EXPECT_FALSE(supervisor.IsMemberAlive(2));
  EXPECT_EQ(supervisor.serving_member(), 3);

  // A STALE member loses to a FRESH one regardless of progress.
  supervisor.ObserveMemberHeartbeat(3, 14, 500, core::ModelHealth::kStale);
  supervisor.ObserveMemberHeartbeat(4, 14, 150, core::ModelHealth::kFresh);
  supervisor.Tick(14);
  EXPECT_EQ(supervisor.serving_member(), 4);
}

TEST(Quorum, MinorityPartitionDegradesToNoneInsteadOfSplitBrain) {
  ha::SupervisorConfig config;
  config.heartbeat_timeout_hours = 2;
  config.require_quorum = true;
  ha::Supervisor supervisor(nullptr, nullptr, config);
  supervisor.AddStandby(nullptr, 0);  // member 2
  supervisor.AddStandby(nullptr, 1);  // member 3
  supervisor.AddStandby(nullptr, 2);  // member 4
  // 5 members total (the constructor pair never heartbeats here), so a
  // strict majority needs 3 alive.

  // Only member 2 is reachable: 1 alive of 5 — an otherwise-servable
  // FRESH standby must NOT be promoted from the minority side.
  supervisor.ObserveMemberHeartbeat(2, 10, 100, core::ModelHealth::kFresh);
  supervisor.Tick(10);
  EXPECT_EQ(supervisor.serving_member(), -1);
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kNone);
  EXPECT_EQ(supervisor.ServingHealth(), core::ModelHealth::kExpired);
  EXPECT_GE(supervisor.quorum_blocked(), 1u);

  // Two more members heard from: 3 of 5 alive — majority, promote.
  const auto blocked_before = supervisor.quorum_blocked();
  supervisor.ObserveMemberHeartbeat(3, 11, 90, core::ModelHealth::kFresh);
  supervisor.ObserveMemberHeartbeat(4, 11, 80, core::ModelHealth::kFresh);
  supervisor.ObserveMemberHeartbeat(2, 11, 100, core::ModelHealth::kFresh);
  supervisor.Tick(11);
  EXPECT_EQ(supervisor.serving_member(), 2);
  EXPECT_EQ(supervisor.quorum_blocked(), blocked_before);

  // The partition heals the other way: members 3+4 keep beating, 2 goes
  // quiet. 2 of 5 is not a majority once 2 times out — dark again.
  for (util::HourIndex h = 12; h <= 15; ++h) {
    supervisor.ObserveMemberHeartbeat(3, h, 90, core::ModelHealth::kFresh);
    supervisor.ObserveMemberHeartbeat(4, h, 80, core::ModelHealth::kFresh);
    supervisor.Tick(h);
  }
  EXPECT_FALSE(supervisor.IsMemberAlive(2));
  EXPECT_EQ(supervisor.serving_member(), -1);
  EXPECT_GT(supervisor.quorum_blocked(), blocked_before);
}

TEST(Quorum, LocalStandbysJoinTheRankingAndQuorumIsNotGatedOffPrimary) {
  HaFixture fixture;
  TempDir dir("quorum_local");
  auto primary = ServedReplica(fixture, dir, "primary", 2);
  auto standby = ServedReplica(fixture, dir, "standby", 2);
  auto extra = ServedReplica(fixture, dir, "extra", 2);
  const util::HourIndex t0 = 2 * util::kHoursPerDay + 1;

  ha::SupervisorConfig config;
  config.heartbeat_timeout_hours = 2;
  config.require_quorum = true;
  ha::Supervisor supervisor(&primary, &standby, config);
  const int extra_index = supervisor.AddStandby(&extra, /*rank=*/0);
  ASSERT_EQ(extra_index, 2);

  // All three beating: the primary serves; quorum never gates the
  // incumbent.
  supervisor.ObserveMemberHeartbeat(0, t0, primary.applied_seq(),
                                    primary.health());
  supervisor.ObserveMemberHeartbeat(1, t0, standby.applied_seq(),
                                    standby.health());
  supervisor.ObserveMemberHeartbeat(2, t0, extra.applied_seq(),
                                    extra.health());
  supervisor.Tick(t0);
  EXPECT_EQ(supervisor.serving_member(), 0);
  EXPECT_EQ(supervisor.service(), primary.service());

  // The added standby out-progresses member 1; when the primary dies the
  // ranking picks the local replica with the larger applied_seq and the
  // query path gets its in-process model.
  for (util::HourIndex h = 2 * util::kHoursPerDay + 1;
       h < 2 * util::kHoursPerDay + 4; ++h) {
    EXPECT_TRUE(extra.Ingest(h, fixture.HourRows(h)).ok());
  }
  ASSERT_GT(extra.applied_seq(), standby.applied_seq());
  for (util::HourIndex h = t0 + 1; h <= t0 + 4; ++h) {
    supervisor.ObserveMemberHeartbeat(1, h, standby.applied_seq(),
                                      standby.health());
    supervisor.ObserveMemberHeartbeat(2, h, extra.applied_seq(),
                                      extra.health());
    supervisor.Tick(h);
  }
  EXPECT_FALSE(supervisor.IsMemberAlive(0));
  EXPECT_EQ(supervisor.serving_member(), 2);
  EXPECT_EQ(supervisor.service(), extra.service());
  EXPECT_EQ(supervisor.serving(), ha::ServingSource::kStandby);
}

}  // namespace
}  // namespace tipsy
