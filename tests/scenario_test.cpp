#include <gtest/gtest.h>

#include "scenario/chaos_schedule.h"
#include "scenario/experiment.h"
#include "scenario/outage.h"
#include "scenario/row_cache.h"
#include "scenario/scenario.h"
#include "util/parallel.h"

namespace tipsy::scenario {
namespace {

// --------------------------------------------------------------- outages

TEST(OutageSchedule, NoneIsAlwaysUp) {
  const auto schedule = OutageSchedule::None(5);
  EXPECT_TRUE(schedule.events().empty());
  EXPECT_FALSE(schedule.IsDown(util::LinkId{3}, 100));
}

class OutageScheduleTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  OutageScheduleConfig Config() const {
    OutageScheduleConfig cfg;
    cfg.seed = GetParam();
    return cfg;
  }
};

TEST_P(OutageScheduleTest, EventsWithinWindowAndBounded) {
  const util::HourRange window{0, 365 * 24};
  const auto schedule = OutageSchedule::Generate(200, window, Config());
  EXPECT_FALSE(schedule.events().empty());
  for (const auto& event : schedule.events()) {
    EXPECT_GE(event.hours.begin, window.begin);
    EXPECT_LE(event.hours.end, window.end);
    EXPECT_GE(event.hours.length(), 1);
    EXPECT_LE(event.hours.length(), Config().max_duration_hours);
  }
}

TEST_P(OutageScheduleTest, IsDownConsistentWithEvents) {
  const util::HourRange window{0, 60 * 24};
  const auto schedule = OutageSchedule::Generate(100, window, Config());
  for (const auto& event : schedule.events()) {
    EXPECT_TRUE(schedule.IsDown(event.link, event.hours.begin));
    EXPECT_TRUE(schedule.IsDown(event.link, event.hours.end - 1));
    EXPECT_FALSE(schedule.IsDown(event.link, event.hours.end));
  }
  // The mask agrees with IsDown everywhere.
  const auto mask = schedule.DownMask(17);
  for (std::uint32_t l = 0; l < 100; ++l) {
    EXPECT_EQ(mask[l], schedule.IsDown(util::LinkId{l}, 17));
  }
}

TEST_P(OutageScheduleTest, MostLinksFailWithinAYear) {
  const util::HourRange window{0, 365 * 24};
  const auto schedule = OutageSchedule::Generate(300, window, Config());
  std::vector<bool> failed(300, false);
  for (const auto& event : schedule.events()) {
    failed[event.link.value()] = true;
  }
  const auto count = std::count(failed.begin(), failed.end(), true);
  // Figure 6's phenomenon: a substantial majority of links fail at least
  // once per year.
  EXPECT_GT(count, 150);
  EXPECT_LT(count, 300);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutageScheduleTest,
                         ::testing::Values(1, 7, 99));

TEST(OutageSchedule, ApplyToSyncsAdvertisementState) {
  OutageScheduleConfig cfg;
  cfg.seed = 3;
  cfg.flappy_fraction = 1.0;  // lots of events
  cfg.flappy_rate_per_year = 400.0;
  const auto schedule = OutageSchedule::Generate(20, {0, 500}, cfg);
  ASSERT_FALSE(schedule.events().empty());
  bgp::AdvertisementState state(20, 2);
  const auto& event = schedule.events().front();
  schedule.ApplyTo(state, event.hours.begin);
  EXPECT_FALSE(state.IsLinkUp(event.link));
  schedule.ApplyTo(state, event.hours.end);
  EXPECT_TRUE(state.IsLinkUp(event.link));
}

// -------------------------------------------------------------- scenario

class ScenarioTest : public ::testing::Test {
 protected:
  static ScenarioConfig Config() {
    auto cfg = TinyScenarioConfig();
    cfg.traffic.flow_target = 400;
    return cfg;
  }
};

TEST_F(ScenarioTest, SimulationIsDeterministic) {
  Scenario a(Config());
  Scenario b(Config());
  std::vector<pipeline::AggRow> rows_a, rows_b;
  a.SimulateHours({10, 12}, [&](util::HourIndex,
                                std::span<const pipeline::AggRow> rows) {
    rows_a.insert(rows_a.end(), rows.begin(), rows.end());
  });
  b.SimulateHours({10, 12}, [&](util::HourIndex,
                                std::span<const pipeline::AggRow> rows) {
    rows_b.insert(rows_b.end(), rows.begin(), rows.end());
  });
  ASSERT_EQ(rows_a.size(), rows_b.size());
  ASSERT_FALSE(rows_a.empty());
  // Rows within an hour come from one unordered map; compare as multisets
  // via sorted byte/link projections.
  auto key = [](const pipeline::AggRow& row) {
    return std::tuple(row.link.value(), row.src_asn.value(),
                      row.src_prefix24, row.bytes);
  };
  std::vector<decltype(key(rows_a[0]))> ka, kb;
  for (const auto& row : rows_a) ka.push_back(key(row));
  for (const auto& row : rows_b) kb.push_back(key(row));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST_F(ScenarioTest, NoRowsOnDownLinks) {
  Scenario world(Config());
  bool checked = false;
  world.SimulateHours(
      {0, 48}, [&](util::HourIndex hour,
                   std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          EXPECT_FALSE(world.outages().IsDown(row.link, hour));
          checked = true;
        }
      });
  EXPECT_TRUE(checked);
}

TEST_F(ScenarioTest, LoadsMatchRowsRoughly) {
  // Ground-truth loads and sampled rows agree within sampling noise at
  // the aggregate level.
  Scenario world(Config());
  double row_bytes = 0.0;
  double load_bytes = 0.0;
  world.SimulateHours(
      {5, 10},
      [&](util::HourIndex, std::span<const pipeline::AggRow> rows) {
        for (const auto& row : rows) {
          row_bytes += static_cast<double>(row.bytes);
        }
      },
      [&](util::HourIndex, std::span<const double> loads) {
        for (double b : loads) load_bytes += b;
      });
  ASSERT_GT(load_bytes, 0.0);
  EXPECT_NEAR(row_bytes / load_bytes, 1.0, 0.15);
}

TEST_F(ScenarioTest, CalibrationHitsTarget) {
  auto cfg = Config();
  cfg.target_p99_utilization = 0.5;
  Scenario world(cfg);
  // Measure p99 utilization at the probe hour: should be near target.
  std::vector<double> utilization;
  world.SimulateHours(
      {14, 15}, nullptr,
      [&](util::HourIndex, std::span<const double> loads) {
        for (std::uint32_t l = 0; l < loads.size(); ++l) {
          const double cap =
              world.wan().link(util::LinkId{l}).CapacityBytesPerHour();
          if (cap > 0.0 && loads[l] > 0.0) {
            utilization.push_back(loads[l] / cap);
          }
        }
      });
  ASSERT_FALSE(utilization.empty());
  std::sort(utilization.begin(), utilization.end());
  const double p99 = utilization[static_cast<std::size_t>(
      0.99 * static_cast<double>(utilization.size() - 1))];
  EXPECT_GT(p99, 0.15);
  EXPECT_LT(p99, 1.2);
}

TEST_F(ScenarioTest, WithdrawalMovesTraffic) {
  Scenario world(Config());
  // Find the flow's current dominant link, withdraw its prefix there,
  // and check the flow no longer lands on it.
  const std::size_t flow_idx = 0;
  const auto before = world.ResolveFlow(flow_idx, 30);
  ASSERT_FALSE(before.empty());
  const auto prefix =
      world.wan()
          .destination(world.workload().flows()[flow_idx].destination)
          .prefix;
  world.advertisement().Withdraw(prefix, before.front().link);
  const auto after = world.ResolveFlow(flow_idx, 30);
  for (const auto& share : after) {
    EXPECT_NE(share.link, before.front().link);
  }
}

TEST_F(ScenarioTest, ResetAdvertisementsRestores) {
  Scenario world(Config());
  const auto before = world.ResolveFlow(0, 30);
  ASSERT_FALSE(before.empty());
  const auto prefix =
      world.wan().destination(world.workload().flows()[0].destination)
          .prefix;
  world.advertisement().Withdraw(prefix, before.front().link);
  world.ResetAdvertisements();
  const auto after = world.ResolveFlow(0, 30);
  ASSERT_EQ(after.size(), before.size());
  EXPECT_EQ(after.front().link, before.front().link);
}

TEST_F(ScenarioTest, FlowFeaturesConsistentWithWorkload) {
  Scenario world(Config());
  for (std::size_t f = 0; f < 20; ++f) {
    const auto features = world.FlowFeaturesOf(f);
    const auto& flow = world.workload().flows()[f];
    const auto& endpoint = world.workload().endpoints()[flow.endpoint];
    EXPECT_EQ(features.src_prefix24, endpoint.prefix24);
    EXPECT_EQ(features.src_metro, endpoint.metro);  // noise-free geoip
    const auto& destination = world.wan().destination(flow.destination);
    EXPECT_EQ(features.dest_region, destination.region);
    EXPECT_EQ(features.dest_service, destination.service);
  }
}

TEST_F(ScenarioTest, BmpRecordsSessionEventsForOutages) {
  Scenario world(Config());
  world.SimulateHours({0, 5 * 24}, nullptr);
  std::size_t downs = 0;
  for (const auto& event : world.outages().events()) {
    if (event.hours.begin < 5 * 24) ++downs;
  }
  EXPECT_EQ(world.bmp().CountOf(telemetry::BmpEventType::kSessionDown),
            downs);
}

// -------------------------------------------------------------- row cache

TEST_F(ScenarioTest, RowCacheReplaysExactly) {
  Scenario live(Config());
  Scenario cached_world(Config());
  RowCache cache(cached_world, {0, 24});

  std::size_t live_rows = 0;
  double live_bytes = 0.0;
  live.SimulateHours({6, 10}, [&](util::HourIndex,
                                  std::span<const pipeline::AggRow> rows) {
    live_rows += rows.size();
    for (const auto& row : rows) {
      live_bytes += static_cast<double>(row.bytes);
    }
  });
  std::size_t cached_rows = 0;
  double cached_bytes = 0.0;
  cache.StreamHours({6, 10}, [&](util::HourIndex,
                                 std::span<const pipeline::AggRow> rows) {
    cached_rows += rows.size();
    for (const auto& row : rows) {
      cached_bytes += static_cast<double>(row.bytes);
    }
  });
  EXPECT_EQ(live_rows, cached_rows);
  EXPECT_DOUBLE_EQ(live_bytes, cached_bytes);
  EXPECT_GT(cache.total_rows(), 0u);
}

// ------------------------------------------------------------ experiment

TEST(Experiment, PaperWindowsAre21Plus7Days) {
  const auto cfg = PaperWindows(48);
  EXPECT_EQ(cfg.train.begin, 48);
  EXPECT_EQ(cfg.train.length(), 21 * 24);
  EXPECT_EQ(cfg.test.begin, cfg.train.end);
  EXPECT_EQ(cfg.test.length(), 7 * 24);
}

TEST(Experiment, ProducesPopulatedEvalSets) {
  auto cfg = TinyScenarioConfig();
  cfg.traffic.flow_target = 800;
  cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  Scenario world(cfg);
  const auto result = RunExperiment(world, PaperWindows());
  EXPECT_TRUE(result.tipsy->trained());
  EXPECT_FALSE(result.overall.empty());
  EXPECT_GT(result.overall.total_bytes(), 0.0);
  // Outage sets partition the outage-affected bytes.
  EXPECT_NEAR(result.outage_all.total_bytes(),
              result.outage_seen.total_bytes() +
                  result.outage_unseen.total_bytes(),
              1.0);
  EXPECT_NEAR(result.seen_outage_bytes, result.outage_seen.total_bytes(),
              1.0);
}

TEST(Experiment, SuiteOrderingInvariants) {
  auto cfg = TinyScenarioConfig();
  cfg.traffic.flow_target = 800;
  cfg.horizon = util::HourRange{0, 28 * util::kHoursPerDay};
  Scenario world(cfg);
  const auto result = RunExperiment(world, PaperWindows());
  const auto rows = EvaluateSuite(*result.tipsy, result.overall);
  ASSERT_FALSE(rows.empty());
  double oracle_ap_top3 = 0.0, hist_ap_top3 = 0.0;
  for (const auto& row : rows) {
    // top-k accuracy is monotone in k for every model.
    EXPECT_LE(row.accuracy.top1(), row.accuracy.top2() + 1e-12) << row.model;
    EXPECT_LE(row.accuracy.top2(), row.accuracy.top3() + 1e-12) << row.model;
    EXPECT_GE(row.accuracy.top1(), 0.0);
    EXPECT_LE(row.accuracy.top3(), 1.0 + 1e-12);
    if (row.model == "Oracle_AP") oracle_ap_top3 = row.accuracy.top3();
    if (row.model == "Hist_AP") hist_ap_top3 = row.accuracy.top3();
  }
  // No model beats its oracle.
  EXPECT_GE(oracle_ap_top3, hist_ap_top3 - 1e-9);
}

TEST(Experiment, ParallelRunMatchesSerialRunExactly) {
  auto cfg = TinyScenarioConfig();
  cfg.traffic.flow_target = 800;
  cfg.horizon = util::HourRange{0, 10 * util::kHoursPerDay};
  Scenario world(cfg);
  RowCache cache(world, cfg.horizon);
  ExperimentConfig exp;
  exp.train = util::HourRange{0, 7 * util::kHoursPerDay};
  exp.test = util::HourRange{exp.train.end, cfg.horizon.end};

  // The whole experiment - sharded training, chunked evaluation - must
  // produce exactly the same accuracy table at any thread count.
  const auto run = [&](std::size_t threads) {
    util::ScopedPool pool(threads);
    const auto result = RunExperiment(cache, exp);
    return EvaluateSuite(*result.tipsy, result.overall);
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].model, parallel[i].model);
    for (std::size_t k = 0; k < core::AccuracyResult::kMaxK; ++k) {
      EXPECT_EQ(serial[i].accuracy.top[k], parallel[i].accuracy.top[k])
          << serial[i].model << " k=" << k;
    }
  }
}

// ---------------------------------------------------------- chaos schedule
//
// The multi-process chaos harness replays these schedules across CI
// hosts; a schedule that varied by platform (or run) would make a chaos
// failure unreproducible, so determinism is pinned here as a contract.

bool SchedulesEqual(const std::vector<ChaosEvent>& a,
                    const std::vector<ChaosEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].action != b[i].action || a[i].index != b[i].index ||
        a[i].count != b[i].count) {
      return false;
    }
  }
  return true;
}

TEST(ChaosSchedule, SameSeedIsEventForEventIdentical) {
  ChaosScheduleConfig config;
  config.seed = 42;
  config.rounds = 60;
  config.standbys = 3;
  EXPECT_TRUE(SchedulesEqual(BuildChaosSchedule(config),
                             BuildChaosSchedule(config)));
  // And the seed actually matters: a different one diverges.
  auto other = config;
  other.seed = 43;
  EXPECT_FALSE(SchedulesEqual(BuildChaosSchedule(config),
                              BuildChaosSchedule(other)));
}

TEST(ChaosSchedule, StructuralGuaranteesHoldAcrossSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 7u, 99u, 12345u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosScheduleConfig config;
    config.seed = seed;
    const auto schedule = BuildChaosSchedule(config);
    ASSERT_GE(schedule.size(), 3u);

    // Warmup feed first: the primary must cross a day boundary (and
    // compact) before any fault, so cold standbys always exercise the
    // snapshot catch-up path.
    EXPECT_EQ(schedule.front().action, ChaosAction::kFeedHours);
    EXPECT_EQ(schedule.front().count, config.warmup_hours);
    // Converging suffix: heal everything, then fresh traffic.
    EXPECT_EQ(schedule[schedule.size() - 2].action, ChaosAction::kHealAll);
    EXPECT_EQ(schedule.back().action, ChaosAction::kFeedHours);

    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const auto& event = schedule[i];
      // Feed counts and standby indices stay in bounds.
      if (event.action == ChaosAction::kFeedHours) {
        EXPECT_GE(event.count, 1) << "event " << i;
        EXPECT_LE(event.count,
                  std::max(config.max_feed_hours, config.warmup_hours))
            << "event " << i;
      }
      if (event.action == ChaosAction::kKillStandby ||
          event.action == ChaosAction::kRestartStandby ||
          event.action == ChaosAction::kPartitionStandby ||
          event.action == ChaosAction::kSlowDripStandby ||
          event.action == ChaosAction::kPromoteStandby) {
        EXPECT_GE(event.index, 0) << "event " << i;
        EXPECT_LT(event.index, config.standbys) << "event " << i;
      }
      // Every lingering proxy fault is healed within 3 following events,
      // so no standby rots behind a partition for the rest of the run.
      if (event.action == ChaosAction::kPartitionStandby ||
          event.action == ChaosAction::kSlowDripStandby ||
          event.action == ChaosAction::kDripIngest) {
        bool healed = false;
        for (std::size_t j = i + 1; j < schedule.size() && j <= i + 3; ++j) {
          if (schedule[j].action == ChaosAction::kHealAll) {
            healed = true;
            break;
          }
        }
        EXPECT_TRUE(healed) << ChaosActionName(event.action) << " at event "
                            << i << " not healed within 3 events";
      }
    }
  }
}

TEST(ChaosSchedule, QuorumModeIsDeterministicAndDrillsEverySeed) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 7u, 99u, 12345u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ChaosScheduleConfig config;
    config.seed = seed;
    config.quorum = true;
    const auto schedule = BuildChaosSchedule(config);
    EXPECT_TRUE(SchedulesEqual(schedule, BuildChaosSchedule(config)));

    // Warmup feed first, converging heal+feed last — same frame as the
    // ship-fault schedules.
    EXPECT_EQ(schedule.front().action, ChaosAction::kFeedHours);
    EXPECT_EQ(schedule[schedule.size() - 2].action, ChaosAction::kHealAll);
    EXPECT_EQ(schedule.back().action, ChaosAction::kFeedHours);

    // The quorum drill runs on EVERY seed, in order: the primary's
    // heartbeats go dark, a ranked failover must follow, then a standby's
    // heartbeats go dark too and the majority gate must hold the plane
    // dark.
    std::size_t primary_dark = 0, failover = 0, standby_dark = 0, dark = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const auto& event = schedule[i];
      switch (event.action) {
        case ChaosAction::kPartitionHeartbeat:
          // Member indices: 0 the primary, 1..standbys the standbys.
          EXPECT_GE(event.index, 0) << "event " << i;
          EXPECT_LE(event.index, config.standbys) << "event " << i;
          if (event.index == 0) primary_dark = i;
          if (event.index > 0 && i > failover && failover > 0) {
            standby_dark = i;
          }
          break;
        case ChaosAction::kAwaitFailover: failover = i; break;
        case ChaosAction::kAwaitDark: dark = i; break;
        case ChaosAction::kPromoteStandby:
        case ChaosAction::kPartitionStandby:
        case ChaosAction::kSlowDripStandby:
        case ChaosAction::kDripIngest:
          ADD_FAILURE() << "ship-path fault " << ChaosActionName(event.action)
                        << " in a quorum schedule (event " << i << ")";
          break;
        default: break;
      }
    }
    EXPECT_GT(failover, primary_dark);
    EXPECT_GT(standby_dark, failover);
    EXPECT_GT(dark, standby_dark);

    // Heartbeat partitions outside the drill heal within 3 events, the
    // same no-rot guarantee the ship-path faults carry.
    for (std::size_t i = 0; i + 1 < primary_dark; ++i) {
      if (schedule[i].action != ChaosAction::kPartitionHeartbeat) continue;
      bool healed = false;
      for (std::size_t j = i + 1; j < schedule.size() && j <= i + 3; ++j) {
        if (schedule[j].action == ChaosAction::kHealAll) {
          healed = true;
          break;
        }
      }
      EXPECT_TRUE(healed) << "heartbeat partition at event " << i
                          << " not healed within 3 events";
    }
  }
}

}  // namespace
}  // namespace tipsy::scenario
