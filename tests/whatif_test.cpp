// cms::WhatIfSimulator - the planning-side withdrawal sweep.
//
// The contracts under test: candidate semantics (empty prefix list =
// drain the link, otherwise only the listed prefixes move), spill
// accounting against current loads and capacities, ranking (moved bytes
// descending, candidate index breaking ties), and the determinism
// contract the RPC and bench lean on - the ranked report list is
// bit-identical at any thread-pool size.
#include <gtest/gtest.h>

#include <vector>

#include "cms/whatif.h"
#include "core/tipsy_service.h"
#include "topo/generator.h"
#include "util/parallel.h"

namespace tipsy {
namespace {

pipeline::AggRow MakeRow(std::uint32_t f, std::uint32_t link,
                         std::uint32_t prefix, std::uint64_t bytes) {
  pipeline::AggRow row;
  row.hour = 0;
  row.link = util::LinkId{link};
  row.src_asn = util::AsId{100 + f};
  row.src_prefix24 = util::Ipv4Prefix(util::Ipv4Addr(f << 8), 24);
  row.src_metro = util::MetroId{f % 2};
  row.dest_region = util::RegionId{f % 3};
  row.dest_service =
      f % 2 == 0 ? wan::ServiceType::kWeb : wan::ServiceType::kStorage;
  row.dest_prefix = util::PrefixId{prefix};
  row.bytes = bytes;
  return row;
}

struct WhatIfFixture {
  WhatIfFixture()
      : topology(topo::GenerateTinyTopology()),
        wan(topology.peering_links,
            topology.graph.node(topology.wan).presence, 8, 1),
        service(&wan, &topology.metros, core::TipsyConfig{}) {
    // A week of traffic: each flow f prefers link f%4 but also appears
    // on (f+1)%4, so every flow has a credible second-choice link for
    // PredictShift to move it to when its primary is withdrawn.
    const auto links = static_cast<std::uint32_t>(wan.link_count());
    for (util::HourIndex h = 0; h < 7 * util::kHoursPerDay; ++h) {
      std::vector<pipeline::AggRow> rows;
      for (std::uint32_t f = 0; f < 6; ++f) {
        rows.push_back(
            MakeRow(f, f % 4 % links, 1 + f % 3, 900 + 100 * f));
        rows.push_back(
            MakeRow(f, (f + 1) % 4 % links, 1 + f % 3, 90 + 10 * f));
      }
      for (auto& row : rows) row.hour = h;
      service.Train(rows);
    }
    service.FinalizeTraining();
    // The sweep hour: the same mix, plus known loads per link.
    for (std::uint32_t f = 0; f < 6; ++f) {
      sweep_rows.push_back(
          MakeRow(f, f % 4 % links, 1 + f % 3, 900 + 100 * f));
    }
    link_loads.assign(wan.link_count(), 0.0);
    for (const auto& row : sweep_rows) {
      link_loads[row.link.value()] += static_cast<double>(row.bytes);
    }
  }

  topo::GeneratedTopology topology;
  wan::Wan wan;
  core::TipsyService service;
  std::vector<pipeline::AggRow> sweep_rows;
  std::vector<double> link_loads;
};

TEST(WhatIf, DrainCandidateMatchesEveryRowOnTheLink) {
  WhatIfFixture fixture;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       cms::WhatIfOptions{});
  const std::vector<cms::WhatIfCandidate> candidates{
      {util::LinkId{0}, {}}};  // drain: every prefix on link 0
  const auto reports = simulator.Sweep(fixture.sweep_rows,
                                       fixture.link_loads, candidates);
  ASSERT_EQ(reports.size(), 1u);
  const auto& report = reports[0];
  EXPECT_EQ(report.link, util::LinkId{0});
  double expected_matched = 0.0;
  for (const auto& row : fixture.sweep_rows) {
    if (row.link == util::LinkId{0}) {
      expected_matched += static_cast<double>(row.bytes);
    }
  }
  ASSERT_GT(expected_matched, 0.0);
  EXPECT_EQ(report.matched_bytes, expected_matched);
  // Everything accounted: moved to other links or unpredicted.
  EXPECT_GT(report.moved_bytes, 0.0);
  // The withdrawn link can never appear among its own spills, and the
  // spill list arrives sorted by destination link.
  for (std::size_t i = 0; i < report.spills.size(); ++i) {
    EXPECT_NE(report.spills[i].link, util::LinkId{0});
    if (i > 0) {
      EXPECT_LT(report.spills[i - 1].link.value(),
                report.spills[i].link.value());
    }
  }
}

TEST(WhatIf, PrefixListRestrictsTheWithdrawal) {
  WhatIfFixture fixture;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       cms::WhatIfOptions{});
  // Only prefix 1 leaves link 0; flows for other prefixes stay put.
  const std::vector<cms::WhatIfCandidate> candidates{
      {util::LinkId{0}, {util::PrefixId{1}}}};
  const auto reports = simulator.Sweep(fixture.sweep_rows,
                                       fixture.link_loads, candidates);
  ASSERT_EQ(reports.size(), 1u);
  double expected_matched = 0.0;
  for (const auto& row : fixture.sweep_rows) {
    if (row.link == util::LinkId{0} &&
        row.dest_prefix == util::PrefixId{1}) {
      expected_matched += static_cast<double>(row.bytes);
    }
  }
  EXPECT_EQ(reports[0].matched_bytes, expected_matched);

  // A prefix nothing on the link serves matches no flow at all.
  const std::vector<cms::WhatIfCandidate> misses{
      {util::LinkId{0}, {util::PrefixId{99}}}};
  const auto empty = simulator.Sweep(fixture.sweep_rows,
                                     fixture.link_loads, misses);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].matched_bytes, 0.0);
  EXPECT_EQ(empty[0].moved_bytes, 0.0);
  EXPECT_TRUE(empty[0].spills.empty());
  EXPECT_TRUE(empty[0].safe);
}

TEST(WhatIf, SpillAccountingUsesLoadsAndCapacity) {
  WhatIfFixture fixture;
  cms::WhatIfOptions options;
  options.safety_headroom = 0.80;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       options);
  const std::vector<cms::WhatIfCandidate> candidates{
      {util::LinkId{0}, {}}};
  const auto reports = simulator.Sweep(fixture.sweep_rows,
                                       fixture.link_loads, candidates);
  ASSERT_EQ(reports.size(), 1u);
  double moved = 0.0;
  bool any_over = false;
  for (const auto& spill : reports[0].spills) {
    moved += spill.bytes;
    const double cap =
        fixture.wan.link(spill.link).CapacityBytesPerHour();
    ASSERT_GT(cap, 0.0);
    EXPECT_EQ(spill.projected_utilization,
              (fixture.link_loads[spill.link.value()] + spill.bytes) / cap);
    EXPECT_EQ(spill.over_headroom,
              spill.projected_utilization > options.safety_headroom);
    any_over = any_over || spill.over_headroom;
  }
  EXPECT_EQ(reports[0].moved_bytes, moved);
  EXPECT_EQ(reports[0].safe, !any_over);
}

TEST(WhatIf, RanksByMovedBytesWithIndexBreakingTies) {
  WhatIfFixture fixture;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       cms::WhatIfOptions{});
  // Drains of every loaded link, plus a duplicate of candidate 0 (a
  // guaranteed moved_bytes tie) and a no-op candidate that ranks last.
  std::vector<cms::WhatIfCandidate> candidates;
  for (std::uint32_t link = 0; link < 4; ++link) {
    candidates.push_back({util::LinkId{link}, {}});
  }
  candidates.push_back({util::LinkId{0}, {}});
  candidates.push_back({util::LinkId{7}, {}});  // carries no sweep rows
  const auto reports = simulator.Sweep(fixture.sweep_rows,
                                       fixture.link_loads, candidates);
  ASSERT_EQ(reports.size(), candidates.size());
  for (std::size_t i = 1; i < reports.size(); ++i) {
    if (reports[i - 1].moved_bytes == reports[i].moved_bytes) {
      EXPECT_LT(reports[i - 1].candidate_index,
                reports[i].candidate_index);
    } else {
      EXPECT_GT(reports[i - 1].moved_bytes, reports[i].moved_bytes);
    }
  }
  // The duplicate pair (indexes 0 and 4) tie exactly and arrive in
  // index order; the empty candidate is last with nothing moved.
  EXPECT_EQ(reports.back().candidate_index, 5u);
  EXPECT_EQ(reports.back().moved_bytes, 0.0);
}

TEST(WhatIf, SweepIsBitIdenticalAtAnyThreadCount) {
  WhatIfFixture fixture;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       cms::WhatIfOptions{});
  // Enough candidates that every pool size genuinely splits the work.
  std::vector<cms::WhatIfCandidate> candidates;
  for (std::uint32_t link = 0; link < 8; ++link) {
    candidates.push_back({util::LinkId{link}, {}});
    for (std::uint32_t prefix = 1; prefix <= 3; ++prefix) {
      candidates.push_back({util::LinkId{link}, {util::PrefixId{prefix}}});
    }
  }
  std::vector<cms::WhatIfReport> reference;
  {
    util::ScopedPool pool(1);
    reference = simulator.Sweep(fixture.sweep_rows, fixture.link_loads,
                                candidates);
  }
  ASSERT_EQ(reference.size(), candidates.size());
  for (const std::size_t threads : {2u, 3u, 8u}) {
    util::ScopedPool pool(threads);
    const auto reports = simulator.Sweep(fixture.sweep_rows,
                                         fixture.link_loads, candidates);
    ASSERT_EQ(reports.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      EXPECT_EQ(reports[i].candidate_index, reference[i].candidate_index);
      EXPECT_EQ(reports[i].link, reference[i].link);
      // Exact double equality on purpose: same chunking-independent
      // arithmetic, so the bits must match, not just the values.
      EXPECT_EQ(reports[i].matched_bytes, reference[i].matched_bytes);
      EXPECT_EQ(reports[i].moved_bytes, reference[i].moved_bytes);
      EXPECT_EQ(reports[i].unpredicted_bytes,
                reference[i].unpredicted_bytes);
      EXPECT_EQ(reports[i].safe, reference[i].safe);
      ASSERT_EQ(reports[i].spills.size(), reference[i].spills.size());
      for (std::size_t s = 0; s < reports[i].spills.size(); ++s) {
        EXPECT_EQ(reports[i].spills[s].link, reference[i].spills[s].link);
        EXPECT_EQ(reports[i].spills[s].bytes,
                  reference[i].spills[s].bytes);
        EXPECT_EQ(reports[i].spills[s].projected_utilization,
                  reference[i].spills[s].projected_utilization);
        EXPECT_EQ(reports[i].spills[s].over_headroom,
                  reference[i].spills[s].over_headroom);
      }
    }
  }
}

TEST(WhatIf, EmptyCandidateListYieldsEmptyReportList) {
  WhatIfFixture fixture;
  const cms::WhatIfSimulator simulator(&fixture.wan, &fixture.service,
                                       cms::WhatIfOptions{});
  EXPECT_TRUE(
      simulator.Sweep(fixture.sweep_rows, fixture.link_loads, {}).empty());
}

}  // namespace
}  // namespace tipsy
